"""Churn-model study: exponential vs. Pareto lifetimes, and trace replay.

Run:  python examples/churn_study.py

The paper's Fig. 5 uses exponential node lifetimes; measurement studies
of deployed p2p systems favour heavy-tailed (Pareto) session times.
This script runs the same Verme ring under both distributions (equal
mean lifetime), plus a scripted burst-failure trace, and reports lookup
latency and failure rate for each regime.
"""


from repro.analysis import LookupStats
from repro.analysis.tables import format_table
from repro.chord import ChurnDriver, ChurnEvent, LookupStyle, LookupWorkload, ScriptedChurn
from repro.chord.config import OverlayConfig
from repro.experiments.builders import build_ring
from repro.ids import IdSpace, VermeIdLayout
from repro.net import ConstantLatency, Network
from repro.sim import RngRegistry, Simulator

NUM_NODES = 100
DURATION = 1200.0


def make_ring(seed):
    space = IdSpace(64)
    layout = VermeIdLayout.for_sections(space, 8)
    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=NUM_NODES, one_way=0.05))
    cfg = OverlayConfig(space=space, num_successors=8, num_predecessors=8)
    return build_ring(sim, net, cfg, NUM_NODES, RngRegistry(seed), layout)


def run_regime(label, churn_factory):
    ring = make_ring(seed=7)
    rngs = RngRegistry(11)
    churn = churn_factory(ring, rngs)
    churn.start()
    stats = LookupStats()
    workload = LookupWorkload(
        ring.sim, ring.population, rngs.stream("load"),
        style=LookupStyle.RECURSIVE, mean_interval_s=10.0, stats=stats,
    )
    workload.start()
    ring.sim.run(until=DURATION)
    lat = stats.latency_summary()
    return [label, stats.total, round(lat.mean, 3), round(lat.p90, 3),
            round(stats.failure_rate, 4), len(ring.population)]


def main():
    rows = []
    rows.append(run_regime(
        "exponential (5 min)",
        lambda ring, rngs: ChurnDriver(
            ring.sim, ring.population, ring.factory, rngs.stream("churn"),
            mean_lifetime_s=300.0,
        ),
    ))
    rows.append(run_regime(
        "pareto a=1.5 (5 min)",
        lambda ring, rngs: ChurnDriver(
            ring.sim, ring.population, ring.factory, rngs.stream("churn"),
            mean_lifetime_s=300.0, lifetime_distribution="pareto",
        ),
    ))

    # Scripted burst: a quarter of the hosts fail together mid-run and
    # rejoin a minute later — identical across any systems under test.
    burst = [ChurnEvent(600.0, slot, "leave") for slot in range(25)]
    burst += [ChurnEvent(660.0, slot, "join") for slot in range(25)]
    rows.append(run_regime(
        "scripted 25%-burst",
        lambda ring, rngs: ScriptedChurn(
            ring.sim, ring.population, ring.factory, rngs.stream("churn"), burst
        ),
    ))

    print(format_table(
        ["churn regime", "lookups", "mean_lat_s", "p90_lat_s",
         "fail_rate", "final_pop"],
        rows,
    ))
    print(
        "\nHeavy-tailed churn concentrates failures on a few short-lived "
        "hosts (many long-lived ones barely move), and even a correlated "
        "25% burst is absorbed by successor-list redundancy."
    )


if __name__ == "__main__":
    main()
