"""Worm containment on an *unstructured* overlay (paper §6.2).

Run:  python examples/tracker_containment.py

The paper argues its design principles generalise beyond DHTs: a
worm-immune BitTorrent-style tracker can assign neighbours so the
overlay graph forms the same type-islands as Verme's ring sections.
This script builds two swarms from the same peer population — one with
the containment-aware tracker, one with a conventional random-neighbour
tracker — releases the same worm in both, and prints the outcome.
"""

from repro.analysis.tables import format_table
from repro.unstructured import TrackerConfig, build_swarm, run_swarm_worm


def main():
    config = TrackerConfig(
        island_size=24, same_island_neighbors=6, cross_type_neighbors=6
    )
    rows = []
    for label, containment in (("containment tracker", True),
                               ("conventional tracker", False)):
        swarm = build_swarm(2000, config, seed=11, containment=containment)
        result = run_swarm_worm(swarm, until=300.0, seed=11)
        rows.append([
            label,
            len(swarm.peers),
            result.vulnerable_count,
            result.infected,
            f"{result.containment_fraction:.1%}",
        ])
    print(format_table(
        ["tracker policy", "peers", "vulnerable", "infected", "fraction"],
        rows,
    ))
    print(
        "\nThe same worm, the same peers: with island-aware neighbour "
        "assignment it dies inside one ~24-peer island; with conventional "
        "random assignment it sweeps the vulnerable population."
    )


if __name__ == "__main__":
    main()
