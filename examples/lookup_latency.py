"""Lookup-latency comparison under churn: the paper's Figure 5 at desk
scale.

Run:  python examples/lookup_latency.py [--nodes N] [--duration S]

Builds Chord (measured with transitive and recursive lookups) and Verme
rings over a synthetic King latency matrix (mean RTT 198 ms), churns
them with exponential node lifetimes, drives a Poisson lookup workload,
and prints mean latency, hop count, failure rate and maintenance
bandwidth per system — the quantities §7.1 reports.
"""

import argparse

from repro.analysis.tables import format_table
from repro.experiments import Fig5Config, run_cell
from repro.experiments.fig5_lookup_latency import SYSTEMS


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=150)
    parser.add_argument("--duration", type=float, default=1200.0)
    parser.add_argument("--lifetime", type=float, default=3600.0,
                        help="mean node lifetime in seconds")
    args = parser.parse_args()

    cfg = Fig5Config(
        num_nodes=args.nodes, duration_s=args.duration, warmup_s=60.0
    )
    print(
        f"{args.nodes} nodes on a synthetic King matrix (mean RTT "
        f"{cfg.mean_rtt_s * 1000:.0f} ms), churn with mean lifetime "
        f"{args.lifetime:.0f} s, lookups every {cfg.mean_lookup_interval_s:.0f} s "
        f"per node, {args.duration:.0f} s simulated.\n"
    )
    rows = []
    for system in SYSTEMS:
        row = run_cell(cfg, system, args.lifetime)
        rows.append(
            [
                system,
                round(row.mean_latency_s, 3),
                round(row.median_latency_s, 3),
                round(row.mean_hops, 2),
                round(row.failure_rate, 4),
                row.lookups,
                round(row.maintenance_bytes_per_node_s, 1),
            ]
        )
    print(format_table(
        ["system", "mean_lat_s", "median_lat_s", "hops", "fail_rate",
         "lookups", "maint_B/node/s"],
        rows,
    ))
    transitive = rows[0][1]
    verme = rows[2][1]
    print(
        f"\nTransitive Chord is {100 * (verme - transitive) / verme:.0f}% "
        f"below Verme (paper: ~35% at 1740 nodes); recursive Chord and "
        f"Verme should be within a few percent of each other."
    )


if __name__ == "__main__":
    main()
