"""Impersonation attack, played out at the protocol level.

Run:  python examples/impersonation_attack.py

An attacker controls a type-A machine but obtains a certificate (and so
an overlay identity) of type B — the impersonation attack of §5.3.  The
script shows, with real protocol messages on a live ring, exactly what
each VerDi design concedes:

* Fast-VerDi   — every lookup the impersonator issues hands it the
                 addresses of a type-A replica group (harvest works);
* Secure-VerDi — the same lookups are refused; the impersonator is left
                 with the O(log N) type-A entries in its own tables;
* and an honest node with a *foreign* certificate gets nothing at all
  (the CA check at the responsible node).
"""

import random

from repro.chord import LookupPurpose, LookupStyle, OverlayConfig, instant_bootstrap
from repro.crypto import CertificateAuthority
from repro.dht import DhtConfig, FastVerDiNode, SecureVerDiNode
from repro.ids import IdSpace, NodeType, VermeIdLayout
from repro.net import ConstantLatency, Network, NodeAddress
from repro.sim import Simulator
from repro.verme import VermeNode


def build(num_nodes, num_sections, dht_cls, seed=7):
    space = IdSpace(64)
    layout = VermeIdLayout.for_sections(space, num_sections)
    config = OverlayConfig(space=space, num_successors=6, num_predecessors=6)
    sim = Simulator()
    network = Network(sim, ConstantLatency(num_hosts=num_nodes + 1, one_way=0.02))
    ca = CertificateAuthority()
    rng = random.Random(seed)
    nodes, used = [], set()
    for i in range(num_nodes):
        node_type = NodeType(i % 2)
        nid = layout.random_id(rng, node_type)
        while nid in used:
            nid = layout.random_id(rng, node_type)
        used.add(nid)
        cert, keys = ca.issue(nid, node_type)
        nodes.append(VermeNode(sim, network, config, layout, cert, keys, ca,
                               NodeAddress(i), random.Random(i)))

    # The impersonator: truly type A, joins with a type-B identity.
    imp_id = layout.random_id(rng, NodeType.B)
    imp_cert, imp_keys = ca.issue_impersonated(
        imp_id, claimed_type=NodeType.B, true_type=NodeType.A
    )
    impersonator = VermeNode(
        sim, network, config, layout, imp_cert, imp_keys, ca,
        NodeAddress(num_nodes), random.Random(num_nodes),
    )
    nodes.append(impersonator)
    instant_bootstrap(nodes)
    dhts = [dht_cls(n, DhtConfig(num_replicas=6)) for n in nodes]
    return sim, layout, nodes, dhts, impersonator


def harvest_attempt(sim, layout, impersonator, lookups=30, seed=3):
    """Issue DHT lookups for random type-A positions; count addresses."""
    rng = random.Random(seed)
    harvested = set()
    refused = 0
    outcomes = []

    for _ in range(lookups):
        key = layout.random_key(rng)
        if NodeType(layout.type_of(key)) is not NodeType.A:
            key = layout.opposite_type_position(key)
        impersonator.lookup(
            key,
            on_done=outcomes.append,
            style=LookupStyle.RECURSIVE,
            purpose=LookupPurpose.DHT,
        )
    sim.run(until=sim.now + 300)
    for res in outcomes:
        if res.success:
            for entry in res.entries:
                if NodeType(layout.type_of(entry.node_id)) is NodeType.A:
                    harvested.add(entry.node_id)
        else:
            refused += 1
    return harvested, refused, len(outcomes)


def main():
    print(__doc__)
    for name, cls in (("Fast-VerDi", FastVerDiNode), ("Secure-VerDi", SecureVerDiNode)):
        sim, layout, nodes, dhts, imp = build(128, 8, cls)
        assert imp.cert.is_impersonation
        own_knowledge = {
            e.node_id
            for e in imp.fingers.entries()
            if NodeType(layout.type_of(e.node_id)) is NodeType.A
        }
        harvested, refused, total = harvest_attempt(sim, layout, imp)
        print(f"--- {name} ---")
        print(f"  impersonator cert: claims {imp.cert.claimed_type.name}, "
              f"truly {imp.cert.true_type.name}")
        print(f"  type-A addresses already in its routing tables: "
              f"{len(own_knowledge)}")
        print(f"  lookups issued: {total}, refused by responsible nodes: {refused}")
        print(f"  fresh type-A addresses harvested via lookups: {len(harvested)}")

    # A certificate from an unknown CA is rejected outright.
    sim, layout, nodes, dhts, imp = build(128, 8, FastVerDiNode)
    rogue = CertificateAuthority(issuer_id=666)
    imp.cert, imp.keys = rogue.issue(imp.node_id, NodeType.B)
    harvested, refused, total = harvest_attempt(sim, layout, imp, lookups=10)
    print("--- Fast-VerDi, certificate from a rogue CA ---")
    print(f"  lookups issued: {total}, refused: {refused}, harvested: {len(harvested)}")


if __name__ == "__main__":
    main()
