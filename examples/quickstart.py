"""Quickstart: build a Verme ring, store and fetch data through VerDi.

Run:  python examples/quickstart.py

Builds a 64-node Verme overlay (two platform types, 8 type-alternating
sections), attaches the Fast-VerDi DHT, performs a put and a get from
clients of *different* types, and prints what happened — including the
worm-containment invariant check on the live routing tables.
"""

import random

from repro.chord import OverlayConfig, instant_bootstrap
from repro.crypto import CertificateAuthority
from repro.dht import DhtConfig, FastVerDiNode
from repro.ids import IdSpace, NodeType, VermeIdLayout
from repro.net import ConstantLatency, Network, NodeAddress
from repro.sim import Simulator
from repro.verme import VermeNode, audit_overlay, min_safe_sections


def build_ring(num_nodes=128, num_sections=None, seed=1):
    # Pick a section count that keeps 6-entry successor lists inside
    # two sections (the paper's §4.3 sizing condition).
    if num_sections is None:
        num_sections = min_safe_sections(num_nodes, neighbor_list_length=6)
    space = IdSpace(64)
    layout = VermeIdLayout.for_sections(space, num_sections)
    config = OverlayConfig(space=space, num_successors=6, num_predecessors=6)
    sim = Simulator()
    network = Network(sim, ConstantLatency(num_hosts=num_nodes, one_way=0.025))
    ca = CertificateAuthority()
    rng = random.Random(seed)
    nodes, used = [], set()
    for i in range(num_nodes):
        node_type = NodeType(i % 2)
        node_id = layout.random_id(rng, node_type)
        while node_id in used:
            node_id = layout.random_id(rng, node_type)
        used.add(node_id)
        cert, keys = ca.issue(node_id, node_type)
        nodes.append(
            VermeNode(sim, network, config, layout, cert, keys, ca,
                      NodeAddress(i), random.Random(i))
        )
    instant_bootstrap(nodes)
    return sim, layout, nodes


def main():
    sim, layout, nodes = build_ring()
    print(f"Built a Verme ring: {len(nodes)} nodes, "
          f"{layout.num_sections} sections of length 2^{layout.section_bits}")

    # The containment invariant, checked live: no routing entry is a
    # same-type node from a different section.
    violations = audit_overlay(nodes)
    print(f"Containment invariant violations in routing state: {len(violations)}")

    # Attach the Fast-VerDi DHT and run a cross-type put/get.
    dhts = [FastVerDiNode(node, DhtConfig(num_replicas=6)) for node in nodes]
    writer = next(d for d in dhts if d.node.node_type is NodeType.A)
    reader = next(d for d in dhts if d.node.node_type is NodeType.B)

    value = b"verme quickstart block"
    outcome = {}
    key = writer.put(value, lambda res: outcome.update(put=res))
    sim.run(until=sim.now + 60)
    put = outcome["put"]
    print(f"put: ok={put.ok} key={key:#x} latency={put.latency_s * 1000:.0f} ms")

    reader.get(key, lambda res: outcome.update(get=res))
    sim.run(until=sim.now + 60)
    got = outcome["get"]
    print(f"get (opposite-type client): ok={got.ok} "
          f"latency={got.latency_s * 1000:.0f} ms "
          f"value matches: {got.value == value}")

    # Where did the replicas land?  Half in the key's section, half in
    # the next (opposite-type) section.
    holders = [(d.node.node_type.name,
                layout.section_index(d.node.node_id))
               for d in dhts if key in d.store]
    print(f"replica holders (type, section): {sorted(holders)}")


if __name__ == "__main__":
    main()
