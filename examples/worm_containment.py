"""Worm containment demo: the paper's Figure 8 at desk scale.

Run:  python examples/worm_containment.py [--nodes N] [--sections S]

Simulates the same topological worm on five configurations — plain
Chord, Verme, and Verme with an impersonating node under the three
VerDi designs — and prints the infection curves as a table plus an
ASCII plot on a logarithmic time axis, mirroring the paper's figure.
"""

import argparse

from repro.analysis.asciiplot import strip_chart
from repro.analysis.curves import log_time_grid, resample
from repro.analysis.tables import format_table
from repro.worm import SCENARIOS, WormScenarioConfig, run_scenario

HORIZONS = {
    "chord": 120.0,
    "verme": 120.0,
    "verme-secure": 120.0,
    "verme-fast": 2000.0,
    "verme-compromise": 20000.0,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=4000)
    parser.add_argument("--sections", type=int, default=256)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    cfg = WormScenarioConfig(
        num_nodes=args.nodes, num_sections=args.sections, seed=args.seed
    )
    print(
        f"Population {cfg.num_nodes}, {cfg.num_sections} sections, half the "
        f"machines (one whole type) vulnerable; worm: 100 scans/s, "
        f"100 ms infect, 1 s activation.\n"
    )

    results = {}
    for name in SCENARIOS:
        results[name] = run_scenario(name, cfg, until=HORIZONS[name])

    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r.vulnerable_count,
                r.final_infected,
                _fmt(r.time_to_fraction(0.10)),
                _fmt(r.time_to_fraction(0.50)),
                _fmt(r.time_to_fraction(0.95)),
            ]
        )
    print(
        format_table(
            ["scenario", "vulnerable", "infected", "t10%", "t50%", "t95%"], rows
        )
    )

    grid = log_time_grid(0.1, max(HORIZONS.values()), 72)
    print("\nInfected machines over time (log time axis, like the paper's "
          "Fig. 8):")
    series = {
        name: list(zip(grid, (float(v) for v in resample(r.curve, grid))))
        for name, r in results.items()
    }
    print(strip_chart(series))
    print(
        "\nReading: Chord saturates almost immediately; Verme stays flat "
        "(one island); Secure-VerDi barely rises (log-many islands); "
        "Fast-VerDi climbs ~10x faster than Compromise-VerDi."
    )


def _fmt(v):
    return None if v is None else round(v, 1)


if __name__ == "__main__":
    main()
