"""Paper-scale Fig. 6/7 check: 1740 nodes, 128 sections (paper §7.2)."""
import time

from repro.experiments import DhtExperimentConfig, run_dht_cell

cfg = DhtExperimentConfig(
    num_nodes=1740, num_sections=128, num_puts=60, num_gets=60, seed=5
)
print(f"{'system':18s} {'get lat':>8s} {'put lat':>8s} {'get KB':>8s} {'put KB':>8s} fails")
for system in ("dhash", "fast-verdi", "secure-verdi", "compromise-verdi"):
    t0 = time.time()
    res = run_dht_cell(cfg, system)
    g, p = res.get_stats, res.put_stats
    print(
        f"{system:18s} {g.latency_summary().mean:8.3f} {p.latency_summary().mean:8.3f} "
        f"{g.bytes_summary().mean/1024:8.1f} {p.bytes_summary().mean/1024:8.1f} "
        f"{g.failures}+{p.failures}  ({time.time()-t0:.1f}s)",
        flush=True,
    )
