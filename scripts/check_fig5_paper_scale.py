"""Paper-scale Fig. 5 check: 1740 nodes on the synthetic King matrix.

Simulated duration is shortened from the paper's 12 h to 40 min (the
latency means stabilise within minutes of simulated time); lifetimes
cover the ends and middle of the paper's range.
"""
import time

from repro.experiments import Fig5Config, run_cell

cfg = Fig5Config(num_nodes=1740, num_sections=128, duration_s=2400.0, warmup_s=300.0)
print("system             lifetime  mean_lat  med_lat  hops  fail    lookups  maintB/n/s")
for system in ("chord-transitive", "chord-recursive", "verme"):
    for lifetime in (900.0, 3600.0, 28800.0):
        t0 = time.time()
        r = run_cell(cfg, system, lifetime)
        print(
            f"{system:18s} {lifetime:8.0f} {r.mean_latency_s:9.3f} "
            f"{r.median_latency_s:8.3f} {r.mean_hops:5.2f} {r.failure_rate:6.4f} "
            f"{r.lookups:8d} {r.maintenance_bytes_per_node_s:10.1f}  "
            f"[wall {time.time() - t0:.0f}s]",
            flush=True,
        )
