#!/usr/bin/env python3
"""Diff two benchmark records and fail on regression.

Modes::

    # Gate: exit 1 if `current` regressed >15% vs `baseline`
    python scripts/compare_bench.py BENCH_kernel.baseline.json BENCH_kernel.json

    # Schema check only (CI smoke): exit 2 on malformed records
    python scripts/compare_bench.py --check BENCH_kernel.json BENCH_fig5.json

    # Engine-equivalence: exit 1 unless both records report identical
    # simulation results (events + metrics; wall clock may differ)
    python scripts/compare_bench.py --assert-equal \\
        BENCH_fig5_1k.json BENCH_fig5_1k_columnar.json

A regression is a drop in ``events_per_s`` or a rise in
``wall_clock_s`` beyond ``--threshold`` (default 0.15).  Records must
share ``name`` and ``parameters`` — timings from different workloads
are not comparable and are rejected.  Differing machine fingerprints
are reported as a warning (the comparison still runs; judge it
accordingly).

Exit codes: 0 ok, 1 regression, 2 invalid input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# perf_common owns the schema; import it from the suite directory.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks" / "perf"))
import perf_common  # noqa: E402


def load_record(path: str) -> dict:
    try:
        record = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: cannot read record: {exc}") from exc
    try:
        perf_common.validate_record(record)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return record


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Return a list of regression messages (empty = pass)."""
    if baseline["name"] != current["name"]:
        raise ValueError(
            f"records are different benchmarks: "
            f"{baseline['name']!r} vs {current['name']!r}"
        )
    if baseline["parameters"] != current["parameters"]:
        raise ValueError(
            f"records of {baseline['name']!r} ran with different parameters: "
            f"{baseline['parameters']} vs {current['parameters']}"
        )
    if baseline["machine"] != current["machine"]:
        print(
            "warning: machine fingerprints differ; timings may not be comparable",
            file=sys.stderr,
        )
    regressions = []
    base_eps, cur_eps = baseline["events_per_s"], current["events_per_s"]
    if base_eps > 0 and cur_eps < base_eps * (1.0 - threshold):
        regressions.append(
            f"events_per_s: {cur_eps:,.0f} vs baseline {base_eps:,.0f} "
            f"({cur_eps / base_eps - 1.0:+.1%}, limit -{threshold:.0%})"
        )
    base_wall, cur_wall = baseline["wall_clock_s"], current["wall_clock_s"]
    if cur_wall > base_wall * (1.0 + threshold):
        regressions.append(
            f"wall_clock_s: {cur_wall:.3f} vs baseline {base_wall:.3f} "
            f"({cur_wall / base_wall - 1.0:+.1%}, limit +{threshold:.0%})"
        )
    return regressions


def assert_equal(a: dict, b: dict) -> list[str]:
    """Return mismatch messages unless the records carry identical
    simulation outcomes (bit-identical metrics and event counts).

    This is the engine-equivalence gate: the same workload run on two
    engines (e.g. the object node graph and the columnar flat-array
    engine) must agree on everything but wall clock."""
    if a["name"] != b["name"]:
        raise ValueError(
            f"records are different benchmarks: {a['name']!r} vs {b['name']!r}"
        )
    mismatches = []
    if a["events"] != b["events"]:
        mismatches.append(f"events: {a['events']:,} vs {b['events']:,}")
    if a["seed"] != b["seed"]:
        mismatches.append(f"seed: {a['seed']} vs {b['seed']}")
    for key in sorted(set(a["metrics"]) | set(b["metrics"])):
        left, right = a["metrics"].get(key), b["metrics"].get(key)
        if left != right:
            mismatches.append(f"metrics[{key}]: {left!r} vs {right!r}")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("records", nargs="+",
                        help="baseline.json current.json, or files for --check")
    parser.add_argument("--check", action="store_true",
                        help="only validate record schemas, no comparison")
    parser.add_argument("--assert-equal", action="store_true",
                        help="require the two records to report identical "
                             "simulation results (events and metrics); "
                             "wall clock and parameters may differ")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative regression (default 0.15)")
    args = parser.parse_args(argv)

    try:
        records = [load_record(path) for path in args.records]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.check:
        for path, record in zip(args.records, records):
            print(f"ok: {path} ({record['name']}, "
                  f"{record['events_per_s']:,.0f} events/s)")
        return 0

    if len(records) != 2:
        print("error: comparison mode needs exactly two records "
              "(baseline, current)", file=sys.stderr)
        return 2
    if args.assert_equal:
        try:
            mismatches = assert_equal(records[0], records[1])
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        name = records[0]["name"]
        if mismatches:
            for message in mismatches:
                print(f"ENGINE MISMATCH [{name}] {message}")
            return 1
        print(f"ok: {name} records report identical simulation results "
              f"({records[0]['events']:,} events)")
        return 0
    try:
        regressions = compare(records[0], records[1], args.threshold)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    name = records[0]["name"]
    if regressions:
        for message in regressions:
            print(f"REGRESSION [{name}] {message}")
        return 1
    print(f"ok: {name} within {args.threshold:.0%} of baseline "
          f"({records[1]['events_per_s']:,.0f} vs "
          f"{records[0]['events_per_s']:,.0f} events/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
