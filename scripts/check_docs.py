#!/usr/bin/env python
"""Docs sanity checker: links resolve, documented commands exist.

Run from the repository root (CI's ``docs-check`` step does)::

    python scripts/check_docs.py

Two classes of drift are caught:

* **Broken relative links** — every ``[text](target)`` in ``README.md``
  and ``docs/*.md`` whose target is not an URL or a bare anchor must
  resolve to a file or directory in the repository (anchors on existing
  files are accepted; anchor contents are not verified).
* **Phantom CLI flags** — every ``--flag`` token on a documented
  command line that invokes ``repro.experiments.runner``,
  ``repro.obs.trace``, ``repro.invariants`` (the stress harness), or
  one of the ``benchmarks/perf`` scripts must
  appear in that tool's ``--help``, and every ``--preset NAME`` for the
  runner must name a real preset.  Docs describing removed or renamed
  flags fail CI instead of lying to the reader.

Exit status 0 when clean; 1 with one problem per line on stderr.
"""

from __future__ import annotations

import contextlib
import importlib.util
import io
import re
import sys
from pathlib import Path
from typing import Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks" / "perf"))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[a-zA-Z][a-zA-Z0-9-]*")
PRESET_RE = re.compile(r"--preset[= ]([A-Za-z0-9|]+)")


def _rel(path: Path) -> str:
    """``path`` relative to the repo root when possible (for messages)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def doc_files() -> List[Path]:
    """The markdown set the checker covers."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(path: Path) -> List[str]:
    """Relative links in ``path`` that do not resolve."""
    problems = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                problems.append(
                    f"{_rel(path)}:{lineno}: "
                    f"broken link {target!r}"
                )
    return problems


def _help_flags(main, prog: str) -> Set[str]:
    """The ``--flag`` vocabulary of one CLI entry point."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        try:
            main(["--help"])
        except SystemExit:
            pass
    flags = set(FLAG_RE.findall(buffer.getvalue()))
    if not flags:
        raise RuntimeError(f"could not capture --help for {prog}")
    return flags


def _load_bench(name: str):
    path = REPO_ROOT / "benchmarks" / "perf" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"bench_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def tool_vocabulary() -> Dict[str, Set[str]]:
    """Command-substring -> accepted ``--flag`` set, from live ``--help``."""
    from repro.experiments import runner
    from repro.invariants import harness
    from repro.obs import trace

    vocab = {
        "repro.experiments.runner": _help_flags(runner.main, "runner"),
        "repro.obs.trace": _help_flags(trace.main, "trace"),
        "repro.invariants": _help_flags(harness.main, "invariants"),
    }
    for bench in ("fig5_lookup", "worm_propagation", "dht_ops",
                  "kernel_throughput", "overload"):
        vocab[f"benchmarks/perf/{bench}.py"] = _help_flags(
            _load_bench(bench).main, bench
        )
    return vocab


def runner_presets() -> Set[str]:
    from repro.experiments import runner

    names: Set[str] = set()
    for table in runner.PRESETS.values():
        names.update(table)
    return names


def check_commands(path: Path, vocab: Dict[str, Set[str]],
                   presets: Set[str]) -> List[str]:
    """Documented command lines using flags their tool does not have."""
    problems = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for tool, flags in vocab.items():
            if tool not in line:
                continue
            for flag in FLAG_RE.findall(line):
                if flag not in flags:
                    problems.append(
                        f"{_rel(path)}:{lineno}: "
                        f"{tool} has no flag {flag!r}"
                    )
            if tool == "repro.experiments.runner":
                for match in PRESET_RE.finditer(line):
                    for name in match.group(1).split("|"):
                        if name not in presets:
                            problems.append(
                                f"{_rel(path)}:{lineno}: "
                                f"unknown runner preset {name!r}"
                            )
    return problems


def main() -> int:
    """Check every covered doc; print problems; 0 = clean."""
    vocab = tool_vocabulary()
    presets = runner_presets()
    problems: List[str] = []
    for path in doc_files():
        problems.extend(check_links(path))
        problems.extend(check_commands(path, vocab, presets))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"docs ok: {len(doc_files())} files checked")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
