"""Paper-scale Fig. 8 check: 100k nodes, 4096 sections (paper §7.3)."""
import time

from repro.worm import WormScenarioConfig, run_scenario

cfg = WormScenarioConfig(seed=11).with_paper_scale()
for name, until in [
    ("chord", 600),
    ("verme", 600),
    ("verme-secure", 600),
    ("verme-fast", 4000),
    ("verme-compromise", 40000),
]:
    t0 = time.time()
    r = run_scenario(name, cfg, until=until)
    t50 = r.time_to_fraction(0.5)
    t95 = r.time_to_fraction(0.95)
    print(
        f"{name:18s} infected={r.final_infected:6d}/{r.vulnerable_count}"
        f" t50={None if t50 is None else round(t50, 1)}"
        f" t95={None if t95 is None else round(t95, 1)}"
        f" wall={time.time() - t0:.1f}s",
        flush=True,
    )
