#!/usr/bin/env python3
"""Record the fig5/fig6/fig7 golden metrics for the seed workloads.

The live-protocol fast path must not change a single reported number:
latency distributions, bandwidth counters and failure rates of the
figure experiments are required to stay **bit-identical** on these
fixed seed workloads.  This script records them once (it was first run
before the fast path landed) and ``tests/test_fig567_golden.py``
compares every subsequent run against the recorded file.

Regenerating the file is only legitimate when an *intentional*
semantics change lands (a protocol fix, a new default); rerun::

    PYTHONPATH=src python scripts/capture_fig567_golden.py

and commit the diff together with the change that explains it.
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.dht_ops import DhtExperimentConfig, run_dht_cell  # noqa: E402
from repro.experiments.fig5_lookup_latency import (  # noqa: E402
    SYSTEMS,
    Fig5Config,
    run_cell,
)

GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "fig567_golden.json"

#: The pinned seed workloads.  Small enough for the test suite, large
#: enough to exercise churn, retries, every lookup style and all four
#: DHT designs.
FIG5_CONFIG = dict(num_nodes=64, duration_s=600.0, warmup_s=60.0, seed=3)
FIG5_LIFETIME_S = 1800.0
DHT_CONFIG = dict(
    num_nodes=64, num_sections=8, num_puts=12, num_gets=12, seed=3
)
DHT_SYSTEMS = ("dhash", "fast-verdi", "secure-verdi", "compromise-verdi")


def capture() -> dict:
    fig5_cfg = Fig5Config(**FIG5_CONFIG)
    fig5 = {
        system: asdict(run_cell(fig5_cfg, system, FIG5_LIFETIME_S))
        for system in SYSTEMS
    }
    dht_cfg = DhtExperimentConfig(**DHT_CONFIG)
    fig67 = {}
    for system in DHT_SYSTEMS:
        result = run_dht_cell(dht_cfg, system)
        fig67[system] = [asdict(row) for row in result.rows()]
    return {
        "fig5_config": FIG5_CONFIG,
        "fig5_lifetime_s": FIG5_LIFETIME_S,
        "dht_config": DHT_CONFIG,
        "fig5": fig5,
        "fig67": fig67,
    }


def main() -> int:
    golden = capture()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
