"""Tests for worm knowledge extraction and harvesters."""

import random

import pytest

from repro.chord.state import NodeInfo
from repro.ids import IdSpace, NodeType, VermeIdLayout
from repro.net import NodeAddress
from repro.overlay import StaticOverlay, VermeStaticOverlay
from repro.sim import Simulator
from repro.worm import (
    CompromiseVerDiHarvester,
    FastVerDiHarvester,
    ImpersonatorKnowledge,
    RoutingKnowledge,
    WormSimulation,
    chord_knowledge,
    verme_knowledge,
)

SPACE = IdSpace(32)
LAYOUT = VermeIdLayout.for_sections(SPACE, 32)


def verme_overlay(n=600, seed=1, extra=None):
    rng = random.Random(seed)
    used = set()
    infos = []
    for i in range(n):
        nid = LAYOUT.random_id(rng, i % 2)
        while nid in used:
            nid = LAYOUT.random_id(rng, i % 2)
        used.add(nid)
        infos.append(NodeInfo(nid, NodeAddress(i)))
    if extra is not None:
        infos.append(extra)
    return VermeStaticOverlay(LAYOUT, infos)


def test_chord_knowledge_unfiltered():
    rng = random.Random(2)
    ids = sorted(rng.sample(range(SPACE.size), 200))
    overlay = StaticOverlay(SPACE, [NodeInfo(i, NodeAddress(n)) for n, i in enumerate(ids)])
    knowledge = chord_knowledge(overlay, num_successors=5)
    targets = knowledge.targets_of(0)
    assert len(targets) >= 5
    assert 0 not in targets


def test_verme_knowledge_same_type_only():
    overlay = verme_overlay()
    knowledge = verme_knowledge(overlay, 5, 5)
    for idx in range(0, len(overlay), 41):
        own_type = LAYOUT.type_of(overlay.ids[idx])
        for t in knowledge.targets_of(idx):
            assert LAYOUT.type_of(overlay.ids[t]) == own_type


def test_same_type_filter_requires_layout():
    overlay = verme_overlay()
    with pytest.raises(ValueError):
        RoutingKnowledge(overlay, same_type_only=True)


def test_chord_knowledge_with_node_types_filter():
    rng = random.Random(3)
    ids = sorted(rng.sample(range(SPACE.size), 100))
    overlay = StaticOverlay(SPACE, [NodeInfo(i, NodeAddress(n)) for n, i in enumerate(ids)])
    types = [n % 2 for n in range(100)]
    knowledge = RoutingKnowledge(
        overlay, num_successors=5, same_type_only=True,
        layout=LAYOUT, node_types=types,
    )
    # layout given but node types explicit: layout wins per implementation;
    # here we just verify filtering returns a subset of all entries.
    unfiltered = RoutingKnowledge(overlay, num_successors=5)
    for idx in (0, 10, 50):
        assert set(knowledge.targets_of(idx)) <= set(unfiltered.targets_of(idx))


def test_impersonator_knowledge_targets_victim_type():
    imp_id = LAYOUT.random_id(random.Random(9), NodeType.B)
    imp = NodeInfo(imp_id, NodeAddress(10_000))
    overlay = verme_overlay(extra=imp)
    base = verme_knowledge(overlay, 10, 10)
    imp_idx = overlay.index_of(imp_id)
    knowledge = ImpersonatorKnowledge(overlay=overlay, base=base,
                                      impersonator_index=imp_idx,
                                      victim_type=NodeType.A)
    targets = knowledge.targets_of(imp_idx)
    assert targets, "impersonator fingers must reach victim-type nodes"
    for t in targets:
        assert LAYOUT.type_of(overlay.ids[t]) == int(NodeType.A)
    # Everyone else keeps the normal (same-type) knowledge.
    other = (imp_idx + 1) % len(overlay)
    assert knowledge.targets_of(other) == base.targets_of(other)


def make_worm(overlay, seed_idx, victim=NodeType.A):
    sim = Simulator()
    vulnerable = [LAYOUT.type_of(i) == int(victim) for i in overlay.ids]
    vulnerable[seed_idx] = False
    worm = WormSimulation(
        sim, len(overlay), vulnerable, verme_knowledge(overlay, 5, 5)
    )
    worm.seed(seed_idx)
    return sim, worm, sum(vulnerable)


def test_fast_harvester_feeds_victim_sections():
    imp_id = LAYOUT.random_id(random.Random(11), NodeType.B)
    overlay = verme_overlay(extra=NodeInfo(imp_id, NodeAddress(10_001)))
    imp_idx = overlay.index_of(imp_id)
    sim, worm, vuln_total = make_worm(overlay, imp_idx)
    harvester = FastVerDiHarvester(
        sim, worm, overlay, imp_idx, NodeType.A, random.Random(1),
        rate_per_s=10.0, replicas_per_lookup=1, vulnerable_total=vuln_total,
    )
    harvester.start()
    sim.run(until=30.0)
    harvester.stop()
    # The harvester stops once everything vulnerable is infected, so
    # the exact count depends on coverage speed; it must have run and
    # the worm must have escaped the impersonator's own fingers.
    assert harvester.harvest_events > 20
    assert worm.infected_count > 50


def test_fast_harvester_stops_when_everything_infected():
    imp_id = LAYOUT.random_id(random.Random(13), NodeType.B)
    overlay = verme_overlay(n=60, extra=NodeInfo(imp_id, NodeAddress(10_002)))
    imp_idx = overlay.index_of(imp_id)
    sim, worm, vuln_total = make_worm(overlay, imp_idx)
    harvester = FastVerDiHarvester(
        sim, worm, overlay, imp_idx, NodeType.A, random.Random(2),
        rate_per_s=50.0, replicas_per_lookup=3, vulnerable_total=vuln_total,
    )
    harvester.start()
    sim.run(until=600.0)
    events_at_completion = harvester.harvest_events
    sim.run(until=1200.0)
    assert harvester.harvest_events == events_at_completion
    assert worm.infected_count >= vuln_total


def test_harvester_positions_always_victim_type():
    imp_id = LAYOUT.random_id(random.Random(17), NodeType.B)
    overlay = verme_overlay(extra=NodeInfo(imp_id, NodeAddress(10_003)))
    imp_idx = overlay.index_of(imp_id)
    sim, worm, vuln_total = make_worm(overlay, imp_idx)
    h = FastVerDiHarvester(
        sim, worm, overlay, imp_idx, NodeType.A, random.Random(3),
        rate_per_s=1.0, replicas_per_lookup=2, vulnerable_total=vuln_total,
    )
    for _ in range(200):
        assert LAYOUT.type_of(h._victim_position()) == int(NodeType.A)


def test_compromise_expected_rate():
    assert CompromiseVerDiHarvester.expected_rate(1.0, 50_000, 50_000) == pytest.approx(1.0)
    assert CompromiseVerDiHarvester.expected_rate(2.0, 100, 400) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        CompromiseVerDiHarvester.expected_rate(1.0, 10, 0)


def test_compromise_harvester_uses_initiator_pool():
    imp_id = LAYOUT.random_id(random.Random(19), NodeType.B)
    overlay = verme_overlay(extra=NodeInfo(imp_id, NodeAddress(10_004)))
    imp_idx = overlay.index_of(imp_id)
    sim, worm, vuln_total = make_worm(overlay, imp_idx)
    pool = [i for i in range(len(overlay)) if LAYOUT.type_of(overlay.ids[i]) == 0][:5]
    h = CompromiseVerDiHarvester(
        sim, worm, overlay, imp_idx, NodeType.A, random.Random(4),
        rate_per_s=5.0, replicas_per_lookup=1, vulnerable_total=vuln_total,
        initiator_pool=pool,
    )
    extras = {h._extra_targets()[0] for _ in range(100)}
    assert extras <= set(pool)


def test_harvester_rejects_bad_rate():
    imp_id = LAYOUT.random_id(random.Random(23), NodeType.B)
    overlay = verme_overlay(n=40, extra=NodeInfo(imp_id, NodeAddress(10_005)))
    imp_idx = overlay.index_of(imp_id)
    sim, worm, vuln_total = make_worm(overlay, imp_idx)
    with pytest.raises(ValueError):
        FastVerDiHarvester(
            sim, worm, overlay, imp_idx, NodeType.A, random.Random(5),
            rate_per_s=0.0, replicas_per_lookup=1, vulnerable_total=vuln_total,
        )
