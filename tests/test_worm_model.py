"""Unit tests for the worm model primitives."""

import pytest

from repro.worm import InfectionCurve, WormParams, WormState


def test_default_parameters_match_paper():
    p = WormParams()
    assert p.scan_rate_per_s == 100.0
    assert p.infect_time_s == 0.1
    assert p.activation_delay_s == 1.0
    assert p.scan_interval_s == pytest.approx(0.01)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        WormParams(scan_rate_per_s=0)
    with pytest.raises(ValueError):
        WormParams(infect_time_s=-1)


def test_four_states_exist():
    assert {s.value for s in WormState} == {
        "not_infected", "scanning", "infecting", "inactive",
    }


def test_curve_records_and_reports():
    c = InfectionCurve()
    c.record(1.0, 1)
    c.record(2.0, 5)
    c.record(4.0, 10)
    assert c.final_count == 10
    assert c.final_time == 4.0
    assert c.count_at(0.5) == 0
    assert c.count_at(2.0) == 5
    assert c.count_at(3.0) == 5
    assert c.count_at(100.0) == 10


def test_time_to_count():
    c = InfectionCurve()
    c.record(1.0, 1)
    c.record(3.0, 7)
    assert c.time_to_count(1) == 1.0
    assert c.time_to_count(5) == 3.0
    assert c.time_to_count(8) is None


def test_time_to_fraction():
    c = InfectionCurve()
    c.record(2.0, 50)
    assert c.time_to_fraction(100, 0.5) == 2.0
    assert c.time_to_fraction(100, 0.51) is None


def test_empty_curve():
    c = InfectionCurve()
    assert c.final_count == 0
    assert c.final_time == 0.0
    assert c.time_to_count(1) is None
