"""Columnar live-protocol engine vs the object node graph: fig5/6/7.

The columnar engine (:mod:`repro.chord.columnar`) promises *bit-for-
bit* identical figure metrics, not approximate ones: same RNG draws,
same kernel sequence numbers, same float association order on every
latency sum.  These tests hold it to that on seeded scaled-down
workloads of every cell family:

* fig5 — all three systems (recursive/transitive Chord, Verme), under
  churn, on both latency models (the dense King matrix and the O(n)
  coordinate model);
* fig6/fig7 — all four DHT systems over the adapter bridge
  (:mod:`repro.chord.columnar_dht`), where the data plane runs the
  *real* RPC/network stack and only the overlay is columnar;
* the kernel-event identity: ``logical_events`` must reproduce the
  object engine's ``Simulator.events_processed`` exactly, elided
  deliveries and all.

The committed-golden counterpart (``tests/test_fig567_golden.py``)
pins the object engine to historical records; together they pin the
columnar engine to those same records by transitivity.
"""

from dataclasses import asdict, replace

import pytest

from repro.experiments.dht_ops import DhtExperimentConfig, run_dht_cell_instrumented
from repro.experiments.fig5_lookup_latency import Fig5Config, run_cell_instrumented

#: Small enough to keep the whole module in tens of seconds, large
#: enough that every code path (retries, rejoins, finger repair,
#: replica-group corner rules) actually fires.
FIG5_CFG = Fig5Config(num_nodes=64, duration_s=300.0, warmup_s=60.0, seed=3)
FIG5_LIFETIME_S = 600.0

DHT_CFG = DhtExperimentConfig(num_nodes=60, num_puts=12, num_gets=12, seed=0)


def _fig5_both(cfg, system):
    obj_row, obj_events = run_cell_instrumented(
        replace(cfg, engine="object"), system, FIG5_LIFETIME_S
    )
    col_row, col_events = run_cell_instrumented(
        replace(cfg, engine="columnar"), system, FIG5_LIFETIME_S
    )
    return (asdict(obj_row), obj_events), (asdict(col_row), col_events)


@pytest.mark.parametrize(
    "system", ["chord-recursive", "chord-transitive", "verme"]
)
def test_fig5_bit_identical(system):
    (obj_row, obj_events), (col_row, col_events) = _fig5_both(FIG5_CFG, system)
    assert col_row == obj_row
    assert col_events == obj_events


def test_fig5_bit_identical_king_coords():
    cfg = replace(FIG5_CFG, latency_model="king-coords")
    (obj_row, obj_events), (col_row, col_events) = _fig5_both(cfg, "verme")
    assert col_row == obj_row
    assert col_events == obj_events


@pytest.mark.parametrize(
    "system", ["dhash", "fast-verdi", "secure-verdi", "compromise-verdi"]
)
def test_fig67_bit_identical(system):
    obj_res, obj_events = run_dht_cell_instrumented(
        replace(DHT_CFG, engine="object"), system
    )
    col_res, col_events = run_dht_cell_instrumented(
        replace(DHT_CFG, engine="columnar"), system
    )
    assert [asdict(r) for r in col_res.rows()] == [
        asdict(r) for r in obj_res.rows()
    ]
    assert col_events == obj_events


def test_fig5_bit_identical_zipf_spike():
    """The serving-layer workload path (generator-driven keys and
    rates) keeps the engines bit-identical too."""
    cfg = replace(FIG5_CFG, workload="zipf", overload="spike")
    (obj_row, obj_events), (col_row, col_events) = _fig5_both(
        cfg, "chord-recursive"
    )
    assert col_row == obj_row
    assert col_events == obj_events


@pytest.mark.parametrize("policy", ["shed", "noshed"])
def test_overload_bit_identical(policy):
    """The admission path (virtual service queue, shed fail-fast)
    burns the same seqs and draws in both engines."""
    from repro.experiments.overload import OverloadConfig, run_overload_cell

    cfg = OverloadConfig(
        num_nodes=48, duration_s=240.0, warmup_s=30.0,
        mean_lookup_interval_s=4.0,
    )
    obj_row, obj_events = run_overload_cell(
        replace(cfg, engine="object"), policy
    )
    col_row, col_events = run_overload_cell(
        replace(cfg, engine="columnar"), policy
    )
    assert asdict(col_row) == asdict(obj_row)
    assert col_events == obj_events
    # The cell actually exercised the serving layer.
    if policy == "shed":
        assert obj_row.shed_rate + obj_row.shed_queue > 0


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        run_cell_instrumented(
            replace(FIG5_CFG, engine="vectorised"), "verme", FIG5_LIFETIME_S
        )
    with pytest.raises(ValueError, match="unknown engine"):
        run_dht_cell_instrumented(replace(DHT_CFG, engine="vectorised"), "dhash")
