"""Protocol-level impersonation: what each VerDi design actually leaks
to an attacker holding a wrong-type certificate (paper §5.3, the
mechanism behind Fig. 8's harvest rates)."""

import random

import pytest

from repro.chord import LookupPurpose, LookupStyle, OverlayConfig, instant_bootstrap
from repro.crypto import CertificateAuthority
from repro.dht import CompromiseVerDiNode, DhtConfig, FastVerDiNode, SecureVerDiNode
from repro.ids import IdSpace, NodeType, VermeIdLayout
from repro.net import ConstantLatency, Network, NodeAddress
from repro.sim import Simulator
from repro.verme import VermeNode


def build_with_impersonator(dht_cls, num_nodes=128, num_sections=8, seed=17):
    space = IdSpace(64)
    layout = VermeIdLayout.for_sections(space, num_sections)
    config = OverlayConfig(space=space, num_successors=6, num_predecessors=6)
    sim = Simulator()
    network = Network(sim, ConstantLatency(num_hosts=num_nodes + 1, one_way=0.02))
    ca = CertificateAuthority()
    rng = random.Random(seed)
    nodes, used = [], set()
    for i in range(num_nodes):
        node_type = NodeType(i % 2)
        nid = layout.random_id(rng, node_type)
        while nid in used:
            nid = layout.random_id(rng, node_type)
        used.add(nid)
        cert, keys = ca.issue(nid, node_type)
        nodes.append(VermeNode(sim, network, config, layout, cert, keys, ca,
                               NodeAddress(i), random.Random(i)))
    imp_id = layout.random_id(rng, NodeType.B)
    cert, keys = ca.issue_impersonated(imp_id, NodeType.B, true_type=NodeType.A)
    imp = VermeNode(sim, network, config, layout, cert, keys, ca,
                    NodeAddress(num_nodes), random.Random(num_nodes))
    nodes.append(imp)
    instant_bootstrap(nodes)
    dhts = [dht_cls(n, DhtConfig(num_replicas=6)) for n in nodes]
    return sim, layout, nodes, dhts, imp


def issue_harvest_lookups(sim, layout, imp, count=20, seed=23):
    rng = random.Random(seed)
    outcomes = []
    for _ in range(count):
        key = layout.random_key(rng)
        if NodeType(layout.type_of(key)) is not NodeType.A:
            key = layout.opposite_type_position(key)
        imp.lookup(key, on_done=outcomes.append,
                   style=LookupStyle.RECURSIVE, purpose=LookupPurpose.DHT)
    sim.run(until=sim.now + 300)
    harvested = set()
    for res in outcomes:
        if res.success:
            harvested.update(
                e.node_id for e in res.entries
                if NodeType(layout.type_of(e.node_id)) is NodeType.A
            )
    return outcomes, harvested


def test_fast_verdi_leaks_victim_addresses():
    sim, layout, _n, _d, imp = build_with_impersonator(FastVerDiNode)
    outcomes, harvested = issue_harvest_lookups(sim, layout, imp)
    assert all(r.success for r in outcomes)
    assert len(harvested) >= 15  # fresh victim addresses per lookup


def test_secure_verdi_refuses_harvest_lookups():
    sim, layout, _n, _d, imp = build_with_impersonator(SecureVerDiNode)
    outcomes, harvested = issue_harvest_lookups(sim, layout, imp)
    assert all(not r.success for r in outcomes)
    assert harvested == set()


def test_secure_verdi_piggybacked_ops_leak_nothing():
    """Even legitimate piggybacked operations return no addresses."""
    sim, layout, _nodes, dhts, imp = build_with_impersonator(SecureVerDiNode)
    writer = next(d for d in dhts if d.node is not imp)
    done = []
    writer.put(b"secure-bait", done.append)
    sim.run(until=sim.now + 120)
    assert done and done[0].ok
    imp_dht = next(d for d in dhts if d.node is imp)
    got = []
    imp_dht.get(done[0].key, got.append)
    sim.run(until=sim.now + 120)
    assert got and got[0].ok  # data is served...
    # ...but the impersonator's lookup result carried no entries; the
    # only victim-type addresses it knows are its original fingers.
    raw = []
    imp.lookup(
        done[0].key, on_done=raw.append, purpose=LookupPurpose.DHT,
        request_meta={"op": "get", "suppress_entries": True, "op_tag": 0},
    )
    sim.run(until=sim.now + 120)
    assert raw[0].success
    assert raw[0].entries == []


def test_compromise_verdi_blocks_direct_harvest_via_relay_requirement():
    """In Compromise-VerDi the client-side engine always relays, so the
    impersonator acting as a *client* reveals itself to its relay and
    receives data, not addresses."""
    sim, layout, _nodes, dhts, imp = build_with_impersonator(CompromiseVerDiNode)
    writer = next(d for d in dhts if d.node is not imp)
    done = []
    writer.put(b"compromise-bait", done.append)
    sim.run(until=sim.now + 180)
    assert done and done[0].ok
    imp_dht = next(d for d in dhts if d.node is imp)
    got = []
    imp_dht.get(done[0].key, got.append)
    sim.run(until=sim.now + 180)
    assert got and got[0].ok
    assert got[0].value == b"compromise-bait"


def test_compromise_verdi_relay_passively_observes_initiators():
    """The §5.3.3 residual leak: an impersonating relay sees the
    initiators (and, executing the relayed Fast-get, the replica
    addresses) of operations routed through it."""
    sim, layout, nodes, dhts, imp = build_with_impersonator(CompromiseVerDiNode)
    imp_dht = next(d for d in dhts if d.node is imp)
    # Find a type-A client whose relay choice for some key is the
    # impersonator, then have it perform a get.
    writer = next(d for d in dhts if d.node.node_type is NodeType.A)
    done = []
    writer.put(b"relayed-bait", done.append)
    sim.run(until=sim.now + 180)
    assert done and done[0].ok
    relayed_before = imp_dht.relayed_operations
    clients = [d for d in dhts if d.node.node_type is NodeType.A]
    for client in clients:
        relay = client._pick_relay(done[0].key)
        if relay is not None and relay.node_id == imp.node_id:
            got = []
            client.get(done[0].key, got.append)
            sim.run(until=sim.now + 180)
            assert got and got[0].ok
            assert imp_dht.relayed_operations == relayed_before + 1
            return
    pytest.skip("no client picked the impersonator as relay in this ring")
