"""Unit tests for id assignment and content hashing."""

import random

from repro.ids import (
    IdSpace,
    NodeType,
    chord_id_for_address,
    key_for_value,
    random_chord_id,
    sha1_id,
)


def test_node_type_opposites():
    assert NodeType.A.opposite is NodeType.B
    assert NodeType.B.opposite is NodeType.A
    assert NodeType.A.opposite.opposite is NodeType.A


def test_node_type_integer_values():
    assert int(NodeType.A) == 0
    assert int(NodeType.B) == 1


def test_sha1_id_deterministic():
    space = IdSpace(160)
    assert sha1_id(space, b"x") == sha1_id(space, b"x")
    assert sha1_id(space, b"x") != sha1_id(space, b"y")


def test_sha1_id_fits_space():
    for bits in (8, 32, 160, 200):
        space = IdSpace(bits)
        for data in (b"", b"a", b"hello world"):
            assert 0 <= sha1_id(space, data) < space.size


def test_sha1_id_wide_spaces_not_truncated_to_zero_high_bits():
    space = IdSpace(320)  # wider than one SHA-1 digest
    values = [sha1_id(space, bytes([i])) for i in range(32)]
    assert any(v >> 160 for v in values), "high bits never populated"


def test_chord_id_for_address_depends_on_port():
    space = IdSpace(160)
    assert chord_id_for_address(space, "10.0.0.1", 80) != chord_id_for_address(
        space, "10.0.0.1", 81
    )


def test_random_chord_id_in_range():
    space = IdSpace(24)
    rng = random.Random(1)
    for _ in range(100):
        assert 0 <= random_chord_id(space, rng) < space.size


def test_key_for_value_matches_sha1():
    space = IdSpace(160)
    assert key_for_value(space, b"block") == sha1_id(space, b"block")
