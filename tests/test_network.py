"""Unit tests for the message fabric: delivery, drops, loss, accounting."""

import random

import pytest

from repro.net import (
    ByteAccounting,
    ConstantBandwidth,
    ConstantLatency,
    HEADER_BYTES,
    Network,
    NodeAddress,
)
from repro.sim import Simulator


def make_net(loss_rate=0.0, bandwidth=None, one_way=0.05, hosts=4):
    sim = Simulator()
    net = Network(
        sim,
        ConstantLatency(num_hosts=hosts, one_way=one_way),
        bandwidth_model=bandwidth,
        loss_rate=loss_rate,
        loss_rng=random.Random(0) if loss_rate else None,
    )
    return sim, net


def test_delivery_after_latency():
    sim, net = make_net()
    a, b = NodeAddress(0), NodeAddress(1)
    got = []
    net.register(b, lambda m: got.append((sim.now, m.payload)))
    net.send(a, b, "hello", size=100)
    sim.run()
    assert got == [(0.05, "hello")]


def test_bandwidth_adds_serialization_delay():
    sim, net = make_net(bandwidth=ConstantBandwidth(bytes_per_second=1000))
    a, b = NodeAddress(0), NodeAddress(1)
    got = []
    net.register(b, lambda m: got.append(sim.now))
    net.send(a, b, "x", size=500)
    sim.run()
    assert got[0] == pytest.approx(0.05 + 0.5)


def test_message_to_unregistered_endpoint_dropped():
    sim, net = make_net()
    net.send(NodeAddress(0), NodeAddress(1), "x", size=64)
    sim.run()
    assert net.dropped_messages == 1


def test_message_to_dead_incarnation_dropped():
    sim, net = make_net()
    addr = NodeAddress(1)
    got = []
    net.register(addr, got.append)
    net.send(NodeAddress(0), addr, "one", size=64)
    sim.run()
    net.unregister(addr)
    net.send(NodeAddress(0), addr, "two", size=64)
    sim.run()
    assert len(got) == 1
    assert net.dropped_messages == 1


def test_new_incarnation_is_distinct_endpoint():
    sim, net = make_net()
    old = NodeAddress(1, 0)
    new = old.next_incarnation()
    got = []
    net.register(new, got.append)
    net.send(NodeAddress(0), old, "stale", size=64)
    sim.run()
    assert got == []


def test_double_registration_rejected():
    _sim, net = make_net()
    addr = NodeAddress(0)
    net.register(addr, lambda m: None)
    with pytest.raises(ValueError):
        net.register(addr, lambda m: None)


def test_host_slot_outside_model_rejected():
    _sim, net = make_net(hosts=2)
    with pytest.raises(ValueError):
        net.register(NodeAddress(5), lambda m: None)


def test_loss_rate_drops_messages():
    sim, net = make_net(loss_rate=0.5)
    a, b = NodeAddress(0), NodeAddress(1)
    got = []
    net.register(b, got.append)
    for _ in range(200):
        net.send(a, b, "x", size=64)
    sim.run()
    assert 40 < len(got) < 160
    assert net.dropped_messages == 200 - len(got)


def test_loss_needs_rng():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, ConstantLatency(2), loss_rate=0.1)


def test_bytes_accounted_even_for_lost_messages():
    sim, net = make_net(loss_rate=1.0)
    net.register(NodeAddress(1), lambda m: None)
    net.send(NodeAddress(0), NodeAddress(1), "x", size=100, category="lookup")
    sim.run()
    assert net.accounting.category_bytes("lookup") == 100


def test_minimum_size_is_header():
    sim, net = make_net()
    got = []
    net.register(NodeAddress(1), got.append)
    net.send(NodeAddress(0), NodeAddress(1), "x", size=1)
    sim.run()
    assert got[0].size == HEADER_BYTES


def test_accounting_by_category_and_op():
    acct = ByteAccounting()
    acct.record("lookup", 100, op_tag=7)
    acct.record("lookup", 50)
    acct.record("data", 200, op_tag=7)
    assert acct.category_bytes("lookup") == 150
    assert acct.category_bytes("data") == 200
    assert acct.bytes_for_op(7) == 300
    assert acct.bytes_for_op(99) == 0
    assert acct.total_bytes == 350
    assert acct.total_messages == 3
    assert acct.messages_by_category["lookup"] == 2


def test_accounting_reset():
    acct = ByteAccounting()
    acct.record("x", 10, op_tag=1)
    acct.reset()
    assert acct.total_bytes == 0
    assert acct.bytes_for_op(1) == 0


# -- cause-tagged drop counters ----------------------------------------------


def test_loss_drops_tagged_with_cause():
    sim, net = make_net(loss_rate=1.0)
    net.register(NodeAddress(1), lambda m: None)
    net.send(NodeAddress(0), NodeAddress(1), "x", size=64)
    sim.run()
    assert net.dropped("loss") == 1
    assert net.dropped("dead-destination") == 0
    assert net.fault_drops == 0
    assert net.dropped_messages == 1


def test_dead_destination_drops_tagged_with_cause():
    sim, net = make_net()
    net.send(NodeAddress(0), NodeAddress(1), "x", size=64)
    sim.run()
    assert net.dropped("dead-destination") == 1
    assert net.dropped("loss") == 0


def test_causes_accumulate_independently():
    sim, net = make_net(loss_rate=0.5)
    addr = NodeAddress(1)
    got = []
    net.register(addr, got.append)
    for _ in range(100):
        net.send(NodeAddress(0), addr, "x", size=64)
    sim.run()
    net.unregister(addr)
    net.send(NodeAddress(0), addr, "x", size=64)
    sim.run()
    lost = net.dropped("loss")
    assert 20 < lost < 80
    assert net.dropped("dead-destination") >= 1
    assert net.dropped_messages == lost + net.dropped("dead-destination")
    assert len(got) == 100 - lost


def test_accounting_mirrors_drop_causes():
    sim, net = make_net()
    net.send(NodeAddress(0), NodeAddress(1), "x", size=64)
    sim.run()
    assert net.accounting.dropped("dead-destination") == 1
    assert net.accounting.total_dropped == 1
    assert net.accounting.dropped_by_cause == {"dead-destination": 1}


def test_accounting_reset_clears_drop_causes():
    acct = ByteAccounting()
    acct.record_drop("loss")
    acct.reset()
    assert acct.total_dropped == 0
    assert acct.dropped("loss") == 0
