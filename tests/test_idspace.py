"""Unit and property tests for ring arithmetic — the foundation of all
routing decisions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ids import IdSpace

SPACE = IdSpace(16)
ids = st.integers(min_value=0, max_value=SPACE.size - 1)


def test_size():
    assert IdSpace(8).size == 256


def test_validate_accepts_range():
    assert SPACE.validate(0) == 0
    assert SPACE.validate(SPACE.size - 1) == SPACE.size - 1


@pytest.mark.parametrize("bad", [-1, 2**16, 2**20])
def test_validate_rejects_out_of_range(bad):
    with pytest.raises(ValueError):
        SPACE.validate(bad)


def test_needs_at_least_one_bit():
    with pytest.raises(ValueError):
        IdSpace(0)


def test_wrap():
    assert SPACE.wrap(SPACE.size) == 0
    assert SPACE.wrap(SPACE.size + 5) == 5
    assert SPACE.wrap(-1) == SPACE.size - 1


def test_distance_simple():
    assert SPACE.distance(10, 20) == 10
    assert SPACE.distance(20, 10) == SPACE.size - 10
    assert SPACE.distance(7, 7) == 0


def test_in_open_basic():
    assert SPACE.in_open(5, 1, 10)
    assert not SPACE.in_open(1, 1, 10)
    assert not SPACE.in_open(10, 1, 10)


def test_in_open_wrapping():
    near_end = SPACE.size - 2
    assert SPACE.in_open(near_end, SPACE.size - 5, 3)
    assert SPACE.in_open(1, SPACE.size - 5, 3)
    assert not SPACE.in_open(100, SPACE.size - 5, 3)


def test_in_open_degenerate_full_ring():
    # (a, a) is the whole ring minus a — the Chord convention.
    assert SPACE.in_open(5, 9, 9)
    assert not SPACE.in_open(9, 9, 9)


def test_in_half_open_includes_right_end():
    assert SPACE.in_half_open(10, 1, 10)
    assert not SPACE.in_half_open(1, 1, 10)


def test_in_closed_open_includes_left_end():
    assert SPACE.in_closed_open(1, 1, 10)
    assert not SPACE.in_closed_open(10, 1, 10)


def test_power_of_two_target():
    assert SPACE.power_of_two_target(0, 3) == 8
    assert SPACE.power_of_two_target(SPACE.size - 1, 0) == 0


def test_power_of_two_target_bounds():
    with pytest.raises(ValueError):
        SPACE.power_of_two_target(0, SPACE.bits)
    with pytest.raises(ValueError):
        SPACE.power_of_two_target(0, -1)


# -- properties ---------------------------------------------------------------


@given(ids, ids)
def test_distance_antisymmetric_unless_equal(a, b):
    if a == b:
        assert SPACE.distance(a, b) == 0
    else:
        assert SPACE.distance(a, b) + SPACE.distance(b, a) == SPACE.size


@given(ids, ids, ids)
def test_distance_triangle_on_ring(a, b, c):
    # Going a->b->c clockwise covers a->c plus possibly whole laps.
    total = SPACE.distance(a, b) + SPACE.distance(b, c)
    assert total % SPACE.size == SPACE.distance(a, c) % SPACE.size


@given(ids, ids, ids)
def test_open_interval_partition(x, a, b):
    """Any x != a,b is in exactly one of (a,b) and (b,a)."""
    if x in (a, b) or a == b:
        return
    assert SPACE.in_open(x, a, b) != SPACE.in_open(x, b, a)


@given(ids, ids, ids)
def test_half_open_consistency(x, a, b):
    if a == b:
        assert SPACE.in_half_open(x, a, b)
        return
    expected = SPACE.in_open(x, a, b) or x == b
    assert SPACE.in_half_open(x, a, b) == expected


@given(ids, ids, ids)
def test_closed_open_consistency(x, a, b):
    if a == b:
        assert SPACE.in_closed_open(x, a, b)
        return
    expected = SPACE.in_open(x, a, b) or x == a
    assert SPACE.in_closed_open(x, a, b) == expected


@given(ids, ids)
def test_rotation_invariance(a, shift):
    b = SPACE.wrap(a + shift)
    assert SPACE.distance(a, b) == SPACE.distance(0, SPACE.wrap(shift))
