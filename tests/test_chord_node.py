"""Behavioural tests for the Chord protocol node."""

import random

import pytest

from repro.chord import LookupStyle, OverlayConfig
from repro.chord.node import ChordNode
from repro.ids import IdSpace
from repro.net import ConstantLatency, Network, NodeAddress
from repro.sim import Simulator

from conftest import build_chord_ring, run_lookup


@pytest.mark.parametrize(
    "style", [LookupStyle.ITERATIVE, LookupStyle.RECURSIVE, LookupStyle.TRANSITIVE]
)
def test_lookup_finds_correct_owner_all_styles(style):
    ring = build_chord_ring(num_nodes=32, seed=11)
    rng = random.Random(99)
    for _ in range(20):
        key = rng.getrandbits(32)
        node = rng.choice(ring.nodes)
        expected = ring.overlay.at(ring.overlay.owner(key).index)
        res = run_lookup(ring, node, key, style=style)
        assert res.success
        assert res.entries[0].node_id == expected.node_id


def test_lookup_returns_successor_list_of_key(chord_ring):
    key = 12345
    owner_idx = chord_ring.overlay.owner(key).index
    expected = [chord_ring.overlay.at(owner_idx)] + chord_ring.overlay.successor_list(
        owner_idx, chord_ring.config.num_successors - 1
    )
    node = chord_ring.nodes[0]
    res = run_lookup(chord_ring, node, key, style=LookupStyle.RECURSIVE)
    got_ids = [e.node_id for e in res.entries]
    assert got_ids == [e.node_id for e in expected][: len(got_ids)]


def test_lookup_for_own_key_resolves_locally(chord_ring):
    node = chord_ring.nodes[0]
    pred = node.predecessor
    key = node.node_id  # owned by node itself
    res = run_lookup(chord_ring, node, key, style=LookupStyle.RECURSIVE)
    assert res.success
    assert res.entries[0].node_id == node.node_id
    assert res.hops == 0
    assert pred is not None  # sanity: ring is converged


def test_transitive_faster_than_recursive():
    """The crux of Fig. 5: the reply shortcut saves latency."""
    latencies = {}
    for style in (LookupStyle.RECURSIVE, LookupStyle.TRANSITIVE):
        ring = build_chord_ring(num_nodes=64, seed=21)
        rng = random.Random(5)
        total = 0.0
        count = 0
        for _ in range(25):
            key = rng.getrandbits(32)
            node = rng.choice(ring.nodes)
            res = run_lookup(ring, node, key, style=style)
            if res.success and res.hops >= 1:
                total += res.latency_s
                count += 1
        latencies[style] = total / count
    assert latencies[LookupStyle.TRANSITIVE] < latencies[LookupStyle.RECURSIVE]


def test_lookup_hops_logarithmic():
    ring = build_chord_ring(num_nodes=128, seed=31)
    rng = random.Random(7)
    hops = []
    for _ in range(30):
        res = run_lookup(
            ring, rng.choice(ring.nodes), rng.getrandbits(32),
            style=LookupStyle.RECURSIVE,
        )
        assert res.success
        hops.append(res.hops)
    assert sum(hops) / len(hops) <= 10  # ~0.5*log2(128) expected, generous bound


def test_single_node_ring_owns_everything():
    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=1))
    cfg = OverlayConfig(space=IdSpace(16), num_successors=4)
    node = ChordNode(sim, net, cfg, 100, NodeAddress(0), random.Random(0))
    node.create_ring()
    results = []
    node.lookup(5, on_done=results.append, style=LookupStyle.RECURSIVE)
    sim.run(until=10)
    assert results[0].success
    assert results[0].entries[0].node_id == 100


def test_join_through_bootstrap():
    ring = build_chord_ring(num_nodes=16, seed=41)
    sim, net, cfg = ring.sim, ring.network, ring.config
    new_id = 0xDEADBEEF
    assert all(n.node_id != new_id for n in ring.nodes)
    newcomer = ChordNode(sim, net, cfg, new_id, NodeAddress(16 - 1, 7), random.Random(1))
    net.latency_model = ConstantLatency(num_hosts=16, one_way=0.02)
    outcome = []
    newcomer.join(ring.nodes[0].address, on_done=outcome.append)
    sim.run(until=200)
    assert outcome == [True]
    assert newcomer.alive
    # The newcomer's first successor must be the true successor of its id.
    expected = ring.overlay.at(ring.overlay.successor_index(new_id))
    assert newcomer.successors.first.node_id == expected.node_id


def test_join_fails_when_bootstrap_dead():
    ring = build_chord_ring(num_nodes=8, seed=43)
    dead = ring.nodes[3]
    dead_addr = dead.address
    dead.crash()
    newcomer = ChordNode(
        ring.sim, ring.network, ring.config, 0xABCD, NodeAddress(5, 9), random.Random(2)
    )
    outcome = []
    newcomer.join(dead_addr, on_done=outcome.append)
    ring.sim.run(until=300)
    assert outcome == [False]
    assert not newcomer.alive


def test_crash_unregisters_from_network(chord_ring):
    node = chord_ring.nodes[0]
    assert chord_ring.network.is_registered(node.address)
    node.crash()
    assert not chord_ring.network.is_registered(node.address)
    assert not node.alive


def test_lookup_routes_around_dead_node():
    ring = build_chord_ring(num_nodes=48, seed=47)
    rng = random.Random(3)
    key = rng.getrandbits(32)
    owner_idx = ring.overlay.owner(key).index
    # Kill the owner's predecessor — the natural last hop.
    pred = ring.overlay.at(owner_idx - 1)
    ring.node_for(pred.node_id).crash()
    initiator = ring.node_for(ring.overlay.at(owner_idx - 20).node_id)
    res = run_lookup(ring, initiator, key, style=LookupStyle.RECURSIVE)
    assert res.success
    # With the predecessor dead, the owner (or a live neighbour) answers.
    assert res.entries


def test_stabilization_repairs_successor_after_crash():
    ring = build_chord_ring(num_nodes=24, seed=53)
    node = ring.nodes[0]
    victim_info = node.successors.first
    ring.node_for(victim_info.node_id).crash()
    ring.sim.run(until=ring.sim.now + 120.0)  # several stabilize rounds
    assert node.successors.first is not None
    assert node.successors.first.node_id != victim_info.node_id
    # The repaired successor is the live ring successor.
    live = sorted(n.node_id for n in ring.nodes if n.alive)
    import bisect

    idx = bisect.bisect_right(live, node.node_id) % len(live)
    assert node.successors.first.node_id == live[idx]


def test_notify_updates_predecessor(chord_ring):
    chord_ring.sim.run(until=120)
    for node in chord_ring.nodes:
        expected = chord_ring.overlay.at(
            chord_ring.overlay.index_of(node.node_id) - 1
        )
        assert node.predecessor is not None
        assert node.predecessor.node_id == expected.node_id


def test_fix_fingers_restores_entries():
    ring = build_chord_ring(num_nodes=32, seed=59)
    node = ring.nodes[0]
    before = dict(node.fingers.items())
    assert before, "expected maintained fingers"
    for k, _ in before.items():
        node.fingers.set(k, None)
    ring.sim.run(until=200)  # finger timer fires at 60s intervals
    after = dict(node.fingers.items())
    assert after
    overlay_fingers = ring.overlay.finger_table(ring.overlay.index_of(node.node_id))
    for k, entry in after.items():
        assert entry.node_id == overlay_fingers[k].node_id


def test_lookup_counts_tracked(chord_ring):
    node = chord_ring.nodes[0]
    run_lookup(chord_ring, node, 42, style=LookupStyle.RECURSIVE)
    assert node.lookups_started >= 1


def test_disallowed_style_raises(chord_ring):
    node = chord_ring.nodes[0]

    class Strict(ChordNode):
        allowed_styles = frozenset({LookupStyle.RECURSIVE})

    node.__class__ = Strict
    with pytest.raises(ValueError):
        node.lookup(1, on_done=lambda r: None, style=LookupStyle.ITERATIVE)
    node.__class__ = ChordNode


def test_crash_then_rejoin_next_incarnation_registers_cleanly():
    """A crashed host's replacement must re-register on the network
    without tripping the double-registration guard, and stale messages
    to the dead incarnation must not reach it."""
    ring = build_chord_ring(num_nodes=16, seed=53)
    sim, net, cfg = ring.sim, ring.network, ring.config
    victim = ring.nodes[4]
    old_addr = victim.address
    victim.crash()
    assert not net.is_registered(old_addr)

    replacement = ChordNode(
        sim, net, cfg, 0xC0FFEE,
        old_addr.next_incarnation(), random.Random(3),
    )
    outcome = []
    replacement.join(ring.nodes[0].address, on_done=outcome.append)
    sim.run(until=sim.now + 200.0)
    assert outcome == [True]
    assert replacement.alive
    assert net.is_registered(replacement.address)
    assert not net.is_registered(old_addr)

    # A stale message addressed to the dead incarnation is dropped, not
    # delivered to the replacement.
    before = net.dropped("dead-destination")
    net.send(ring.nodes[0].address, old_addr, "stale", size=64)
    sim.run(until=sim.now + 1.0)
    assert net.dropped("dead-destination") == before + 1


def test_stranded_node_rejoins_through_bootstrap_cache():
    """A node that lost every successor, predecessor and finger (a long
    partition can do this) re-enters the ring via its bootstrap cache
    instead of staying isolated forever."""
    ring = build_chord_ring(num_nodes=16, seed=59)
    sim = ring.sim
    sim.run(until=100.0)  # a few stabilize rounds populate the cache
    node = ring.nodes[0]
    assert node._rejoin_contacts  # refreshed while healthy
    node.successors.replace([])
    node.predecessors.replace([])
    for entry in node.fingers.entries():
        node.fingers.remove_address(entry.address)
    assert node.successors.first is None

    sim.run(until=400.0)
    others = sorted(
        (n for n in ring.nodes if n is not node), key=lambda n: n.node_id
    )
    expected = next(
        (n for n in others if n.node_id > node.node_id), others[0]
    )
    succ = node.successors.first
    assert succ is not None
    assert succ.node_id == expected.node_id
