"""Unit tests for the RPC layer: matching, timeouts, one-way, deferral."""

import pytest

from repro.chord.rpc import MIN_RPC_BYTES, RpcLayer
from repro.net import ConstantLatency, Network, NodeAddress
from repro.sim import Simulator


@pytest.fixture
def pair():
    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=4, one_way=0.05))
    a = RpcLayer(sim, net, NodeAddress(0), default_timeout_s=1.0)
    b = RpcLayer(sim, net, NodeAddress(1), default_timeout_s=1.0)
    a.start()
    b.start()
    return sim, net, a, b


def test_call_reply_roundtrip(pair):
    sim, _net, a, b = pair
    b.register("echo", lambda params, ctx: ctx.respond(params["x"] * 2))
    got = []
    a.call(b.address, "echo", {"x": 21}, on_reply=got.append)
    sim.run()
    assert got == [42]


def test_reply_latency_is_round_trip(pair):
    sim, _net, a, b = pair
    b.register("echo", lambda params, ctx: ctx.respond("ok"))
    times = []
    a.call(b.address, "echo", {}, on_reply=lambda r: times.append(sim.now))
    sim.run()
    assert times[0] == pytest.approx(0.10)


def test_timeout_fires_when_peer_gone(pair):
    sim, _net, a, _b = pair
    errors = []
    a.call(NodeAddress(2), "echo", {}, on_error=errors.append)
    sim.run()
    assert errors == ["timeout"]
    assert sim.now == pytest.approx(1.0)


def test_late_reply_after_timeout_ignored(pair):
    sim, _net, a, b = pair

    def slow(params, ctx):
        sim.schedule(5.0, ctx.respond, "too late")

    b.register("slow", slow)
    replies, errors = [], []
    a.call(b.address, "slow", {}, on_reply=replies.append, on_error=errors.append)
    sim.run()
    assert errors == ["timeout"]
    assert replies == []


def test_handler_fail_reaches_on_error(pair):
    sim, _net, a, b = pair
    b.register("boom", lambda params, ctx: ctx.fail("kaput"))
    errors = []
    a.call(b.address, "boom", {}, on_error=errors.append)
    sim.run()
    assert errors == ["kaput"]


def test_unknown_method_fails(pair):
    sim, _net, a, b = pair
    errors = []
    a.call(b.address, "nope", {}, on_error=errors.append)
    sim.run()
    assert errors and "no handler" in errors[0]


def test_deferred_reply(pair):
    sim, _net, a, b = pair

    def deferred(params, ctx):
        sim.schedule(0.2, ctx.respond, "later")

    b.register("deferred", deferred)
    got = []
    a.call(b.address, "deferred", {}, on_reply=got.append)
    sim.run()
    assert got == ["later"]


def test_double_respond_ignored(pair):
    sim, _net, a, b = pair

    def double(params, ctx):
        ctx.respond("first")
        ctx.respond("second")

    b.register("double", double)
    got = []
    a.call(b.address, "double", {}, on_reply=got.append)
    sim.run()
    assert got == ["first"]


def test_one_way_dispatches_without_reply(pair):
    sim, _net, a, b = pair
    seen = []
    b.register("note", lambda params, ctx: seen.append((params, ctx.one_way)))
    a.send_one_way(b.address, "note", {"v": 1})
    sim.run()
    assert seen == [({"v": 1}, True)]


def test_one_way_respond_is_noop(pair):
    sim, _net, a, b = pair
    b.register("note", lambda params, ctx: ctx.respond("pointless"))
    a.send_one_way(b.address, "note", {})
    sim.run()  # must not raise or deliver anything to a


def test_shutdown_cancels_pending_timers(pair):
    sim, _net, a, _b = pair
    errors = []
    a.call(NodeAddress(2), "x", {}, on_error=errors.append)
    a.shutdown()
    sim.run()
    assert errors == []  # no timeout callback after shutdown
    assert not a.alive


def test_cancel_suppresses_reply(pair):
    sim, _net, a, b = pair
    b.register("echo", lambda params, ctx: ctx.respond("ok"))
    got = []
    req = a.call(b.address, "echo", {}, on_reply=got.append)
    a.cancel(req)
    sim.run()
    assert got == []


def test_call_requires_started_layer():
    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=2))
    rpc = RpcLayer(sim, net, NodeAddress(0), 1.0)
    with pytest.raises(RuntimeError):
        rpc.call(NodeAddress(1), "x", {})


def test_duplicate_handler_rejected(pair):
    _sim, _net, a, _b = pair
    a.register("m", lambda p, c: None)
    with pytest.raises(ValueError):
        a.register("m", lambda p, c: None)


def test_min_rpc_bytes_accounted(pair):
    sim, net, a, b = pair
    b.register("echo", lambda params, ctx: ctx.respond("ok"))
    a.call(b.address, "echo", {}, category="lookup")
    sim.run()
    assert net.accounting.category_bytes("lookup") >= 2 * MIN_RPC_BYTES


# -- retransmission with exponential backoff ---------------------------------


def test_no_retransmit_by_default(pair):
    sim, _net, a, _b = pair
    a.call(NodeAddress(2), "x", {})
    sim.run()
    assert a.detector.retransmits == 0
    assert a.detector.timeouts == 1


def test_backoff_timeout_sequence():
    """Attempts time out at 1, 1+2, 1+2+4 with base 1.0 and factor 2."""
    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=4, one_way=0.05))
    a = RpcLayer(
        sim, net, NodeAddress(0), default_timeout_s=1.0,
        max_retransmits=2, backoff_factor=2.0,
    )
    a.start()
    errors = []
    a.call(NodeAddress(2), "x", {}, on_error=errors.append)
    sim.run()
    assert errors == ["timeout"]
    assert sim.now == pytest.approx(7.0)
    assert a.detector.retransmits == 2
    assert a.detector.timeouts == 1  # only the final expiry counts


def test_retransmit_rescues_a_dropped_request():
    """A loss burst eats the first send; the retransmission gets through.

    The same scenario without retransmits fails outright.
    """
    from repro.faults import FaultPlan, LinkFault

    def attempt(max_retransmits):
        sim = Simulator()
        plan = FaultPlan(seed=1).add_link_fault(
            LinkFault.burst(0.0, 0.5)
        )
        net = Network(
            sim, ConstantLatency(num_hosts=4, one_way=0.05), fault_plan=plan
        )
        a = RpcLayer(
            sim, net, NodeAddress(0), default_timeout_s=1.0,
            max_retransmits=max_retransmits,
        )
        b = RpcLayer(sim, net, NodeAddress(1), default_timeout_s=1.0)
        a.start()
        b.start()
        b.register("echo", lambda params, ctx: ctx.respond("ok"))
        replies, errors = [], []
        a.call(
            b.address, "echo", {},
            on_reply=replies.append, on_error=errors.append,
        )
        sim.run()
        return replies, errors

    replies, errors = attempt(max_retransmits=2)
    assert replies == ["ok"] and errors == []
    replies, errors = attempt(max_retransmits=0)
    assert replies == [] and errors == ["timeout"]


def test_duplicate_reply_after_retransmit_ignored(pair):
    sim, _net, a, b = pair
    a.max_retransmits = 2
    calls = []

    def slow(params, ctx):
        calls.append(sim.now)
        sim.schedule(1.5, ctx.respond, "ok")  # longer than the timeout

    b.register("slow", slow)
    replies = []
    a.call(b.address, "slow", {}, on_reply=replies.append)
    sim.run()
    assert len(calls) == 2  # original + one retransmission arrived
    assert replies == ["ok"]  # the second reply was dropped on the floor


def test_backoff_jitter_is_deterministic():
    import random as _random

    def final_time(seed):
        sim = Simulator()
        net = Network(sim, ConstantLatency(num_hosts=4, one_way=0.05))
        a = RpcLayer(
            sim, net, NodeAddress(0), default_timeout_s=1.0,
            max_retransmits=2, backoff_factor=2.0, backoff_jitter=0.2,
            jitter_rng=_random.Random(seed),
        )
        a.start()
        a.call(NodeAddress(2), "x", {})
        sim.run()
        return sim.now

    assert final_time(5) == final_time(5)
    assert final_time(5) != final_time(6)
    assert 0.8 * 7.0 < final_time(5) < 1.2 * 7.0


def test_exponential_backoff_retransmits_less_than_fixed_interval():
    """Under 15% loss with a slow responder, exponential backoff issues
    measurably fewer duplicate retransmissions than fixed-interval retry
    while still completing the calls."""
    import random as _random

    def scenario(backoff_factor):
        sim = Simulator()
        net = Network(
            sim,
            ConstantLatency(num_hosts=4, one_way=0.05),
            loss_rate=0.15,
            loss_rng=_random.Random(11),
        )
        a = RpcLayer(
            sim, net, NodeAddress(0), default_timeout_s=1.0,
            max_retransmits=4, backoff_factor=backoff_factor,
        )
        b = RpcLayer(sim, net, NodeAddress(1), default_timeout_s=1.0)
        a.start()
        b.start()
        # Responds well after the base timeout: a fixed-interval caller
        # keeps hammering while waiting, backoff holds off.
        b.register("slow", lambda params, ctx: sim.schedule(2.4, ctx.respond, "ok"))
        replies = []

        def issue():
            a.call(b.address, "slow", {}, on_reply=replies.append)

        for i in range(40):
            sim.schedule(i * 20.0, issue)
        sim.run()
        return a.detector, len(replies)

    fixed, fixed_ok = scenario(backoff_factor=1.0)
    exponential, exp_ok = scenario(backoff_factor=2.0)
    assert exp_ok >= 38 and fixed_ok >= 38  # retries mask the loss
    assert exponential.retransmits < fixed.retransmits
    assert exponential.calls == fixed.calls == 40


# -- shutdown notification ---------------------------------------------------


def test_shutdown_silent_by_default_matches_crash_semantics(pair):
    sim, _net, a, _b = pair
    errors = []
    a.call(NodeAddress(2), "x", {}, on_error=errors.append)
    a.shutdown()
    sim.run()
    assert errors == []


def test_shutdown_notify_local_errors_fires_shutdown(pair):
    sim, _net, a, _b = pair
    errors = []
    a.call(NodeAddress(2), "x", {}, on_error=errors.append)
    a.call(NodeAddress(3), "y", {}, on_error=errors.append)
    a.shutdown(notify_local_errors=True)
    assert errors == ["shutdown", "shutdown"]  # synchronous
    assert not a.alive
    sim.run()
    assert errors == ["shutdown", "shutdown"]  # and no late timeouts


def test_shutdown_notify_callbacks_see_dead_layer(pair):
    sim, _net, a, _b = pair
    observed = []
    a.call(
        NodeAddress(2), "x", {},
        on_error=lambda err: observed.append((err, a.alive)),
    )
    a.shutdown(notify_local_errors=True)
    assert observed == [("shutdown", False)]


# -- failure-detector statistics ---------------------------------------------


def test_detector_suspects_after_timeout_and_records_recovery(pair):
    sim, _net, a, b = pair
    dead = NodeAddress(2)
    a.call(dead, "x", {})
    sim.run()
    assert a.detector.suspected == [dead]
    assert a.detector.peers[dead].timeouts == 1

    # The peer comes back: the next reply clears the suspicion and
    # records how long it lasted.
    c = RpcLayer(sim, _net, dead, default_timeout_s=1.0)
    c.start()
    c.register("x", lambda params, ctx: ctx.respond("back"))
    replies = []
    a.call(dead, "x", {}, on_reply=replies.append)
    sim.run()
    assert replies == ["back"]
    assert a.detector.suspected == []
    assert len(a.detector.recovery_times_s) == 1
    assert a.detector.recovery_times_s[0] == pytest.approx(
        sim.now - 1.0
    )
    assert a.detector.peers[dead].last_recovery_s == pytest.approx(
        sim.now - 1.0
    )


def test_detector_suspect_after_threshold(pair):
    sim, _net, a, _b = pair
    a.detector.suspect_after = 2
    dead = NodeAddress(2)
    a.call(dead, "x", {})
    sim.run()
    assert a.detector.suspected == []  # one timeout is not enough
    a.call(dead, "x", {})
    sim.run()
    assert a.detector.suspected == [dead]
