"""Unit tests for the RPC layer: matching, timeouts, one-way, deferral."""

import pytest

from repro.chord.rpc import MIN_RPC_BYTES, RpcLayer
from repro.net import ConstantLatency, Network, NodeAddress
from repro.sim import Simulator


@pytest.fixture
def pair():
    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=4, one_way=0.05))
    a = RpcLayer(sim, net, NodeAddress(0), default_timeout_s=1.0)
    b = RpcLayer(sim, net, NodeAddress(1), default_timeout_s=1.0)
    a.start()
    b.start()
    return sim, net, a, b


def test_call_reply_roundtrip(pair):
    sim, _net, a, b = pair
    b.register("echo", lambda params, ctx: ctx.respond(params["x"] * 2))
    got = []
    a.call(b.address, "echo", {"x": 21}, on_reply=got.append)
    sim.run()
    assert got == [42]


def test_reply_latency_is_round_trip(pair):
    sim, _net, a, b = pair
    b.register("echo", lambda params, ctx: ctx.respond("ok"))
    times = []
    a.call(b.address, "echo", {}, on_reply=lambda r: times.append(sim.now))
    sim.run()
    assert times[0] == pytest.approx(0.10)


def test_timeout_fires_when_peer_gone(pair):
    sim, _net, a, _b = pair
    errors = []
    a.call(NodeAddress(2), "echo", {}, on_error=errors.append)
    sim.run()
    assert errors == ["timeout"]
    assert sim.now == pytest.approx(1.0)


def test_late_reply_after_timeout_ignored(pair):
    sim, _net, a, b = pair

    def slow(params, ctx):
        sim.schedule(5.0, ctx.respond, "too late")

    b.register("slow", slow)
    replies, errors = [], []
    a.call(b.address, "slow", {}, on_reply=replies.append, on_error=errors.append)
    sim.run()
    assert errors == ["timeout"]
    assert replies == []


def test_handler_fail_reaches_on_error(pair):
    sim, _net, a, b = pair
    b.register("boom", lambda params, ctx: ctx.fail("kaput"))
    errors = []
    a.call(b.address, "boom", {}, on_error=errors.append)
    sim.run()
    assert errors == ["kaput"]


def test_unknown_method_fails(pair):
    sim, _net, a, b = pair
    errors = []
    a.call(b.address, "nope", {}, on_error=errors.append)
    sim.run()
    assert errors and "no handler" in errors[0]


def test_deferred_reply(pair):
    sim, _net, a, b = pair

    def deferred(params, ctx):
        sim.schedule(0.2, ctx.respond, "later")

    b.register("deferred", deferred)
    got = []
    a.call(b.address, "deferred", {}, on_reply=got.append)
    sim.run()
    assert got == ["later"]


def test_double_respond_ignored(pair):
    sim, _net, a, b = pair

    def double(params, ctx):
        ctx.respond("first")
        ctx.respond("second")

    b.register("double", double)
    got = []
    a.call(b.address, "double", {}, on_reply=got.append)
    sim.run()
    assert got == ["first"]


def test_one_way_dispatches_without_reply(pair):
    sim, _net, a, b = pair
    seen = []
    b.register("note", lambda params, ctx: seen.append((params, ctx.one_way)))
    a.send_one_way(b.address, "note", {"v": 1})
    sim.run()
    assert seen == [({"v": 1}, True)]


def test_one_way_respond_is_noop(pair):
    sim, _net, a, b = pair
    b.register("note", lambda params, ctx: ctx.respond("pointless"))
    a.send_one_way(b.address, "note", {})
    sim.run()  # must not raise or deliver anything to a


def test_shutdown_cancels_pending_timers(pair):
    sim, _net, a, _b = pair
    errors = []
    a.call(NodeAddress(2), "x", {}, on_error=errors.append)
    a.shutdown()
    sim.run()
    assert errors == []  # no timeout callback after shutdown
    assert not a.alive


def test_cancel_suppresses_reply(pair):
    sim, _net, a, b = pair
    b.register("echo", lambda params, ctx: ctx.respond("ok"))
    got = []
    req = a.call(b.address, "echo", {}, on_reply=got.append)
    a.cancel(req)
    sim.run()
    assert got == []


def test_call_requires_started_layer():
    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=2))
    rpc = RpcLayer(sim, net, NodeAddress(0), 1.0)
    with pytest.raises(RuntimeError):
        rpc.call(NodeAddress(1), "x", {})


def test_duplicate_handler_rejected(pair):
    _sim, _net, a, _b = pair
    a.register("m", lambda p, c: None)
    with pytest.raises(ValueError):
        a.register("m", lambda p, c: None)


def test_min_rpc_bytes_accounted(pair):
    sim, net, a, b = pair
    b.register("echo", lambda params, ctx: ctx.respond("ok"))
    a.call(b.address, "echo", {}, category="lookup")
    sim.run()
    assert net.accounting.category_bytes("lookup") >= 2 * MIN_RPC_BYTES
