"""Tests for the terminal plotting helpers."""

import pytest

from repro.analysis.asciiplot import LEVELS, sparkline, strip_chart


def test_sparkline_scales_to_peak():
    out = sparkline([0, 5, 10], peak=10)
    assert len(out) == 3
    assert out[0] == LEVELS[0]
    assert out[-1] == LEVELS[-1]


def test_sparkline_zero_peak_all_blank():
    assert sparkline([0, 0, 0], peak=0) == "   "


def test_sparkline_clamps_out_of_range():
    out = sparkline([-5, 100], peak=10)
    assert out[0] == LEVELS[0]
    assert out[1] == LEVELS[-1]


def test_sparkline_negative_peak_rejected():
    with pytest.raises(ValueError):
        sparkline([1], peak=-1)


def test_strip_chart_layout():
    series = {
        "chord": [(0.1, 0.0), (1.0, 10.0), (10.0, 100.0)],
        "verme": [(0.1, 0.0), (1.0, 1.0), (10.0, 2.0)],
    }
    out = strip_chart(series, label_width=10)
    lines = out.splitlines()
    assert len(lines) == 3
    assert lines[1].startswith("chord")
    assert lines[2].startswith("verme")
    # Shared scale: verme's tiny values stay near-blank while chord
    # saturates.
    assert LEVELS[-1] in lines[1]
    assert LEVELS[-1] not in lines[2]


def test_strip_chart_empty_rejected():
    with pytest.raises(ValueError):
        strip_chart({})
