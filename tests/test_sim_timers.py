"""Unit tests for periodic timers."""

import random

import pytest

from repro.sim import PeriodicTimer, Simulator


def test_fires_every_period():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 10.0, lambda: fired.append(sim.now))
    timer.start()
    sim.run(until=35.0)
    assert fired == [10.0, 20.0, 30.0]


def test_stop_cancels_future_firings():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 10.0, lambda: fired.append(sim.now))
    timer.start()
    sim.run(until=15.0)
    timer.stop()
    sim.run(until=100.0)
    assert fired == [10.0]
    assert not timer.running


def test_start_is_idempotent():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 10.0, lambda: fired.append(sim.now))
    timer.start()
    timer.start()
    sim.run(until=25.0)
    assert fired == [10.0, 20.0]


def test_jitter_shifts_first_firing_only():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(
        sim, 10.0, lambda: fired.append(sim.now), jitter_rng=random.Random(3)
    )
    timer.start()
    sim.run(until=50.0)
    assert 0.0 <= fired[0] < 10.0
    for a, b in zip(fired, fired[1:]):
        assert b - a == pytest.approx(10.0)


def test_callback_can_stop_timer():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 5.0, lambda: (fired.append(sim.now), timer.stop()))
    timer.start()
    sim.run(until=100.0)
    assert fired == [5.0]


def test_interval_fn_drives_spacing():
    sim = Simulator()
    fired = []
    intervals = iter([1.0, 2.0, 4.0, 100.0])
    timer = PeriodicTimer(
        sim, 1.0, lambda: fired.append(sim.now), interval_fn=lambda: next(intervals)
    )
    timer.start()
    sim.run(until=50.0)
    assert fired == [1.0, 3.0, 7.0]


def test_restart_after_stop():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 10.0, lambda: fired.append(sim.now))
    timer.start()
    sim.run(until=10.0)
    timer.stop()
    timer.start()
    sim.run(until=25.0)
    assert fired == [10.0, 20.0]


def test_nonpositive_period_rejected():
    with pytest.raises(ValueError):
        PeriodicTimer(Simulator(), 0.0, lambda: None)
