"""Columnar-vs-legacy worm engine equivalence.

The columnar engine promises bit-for-bit identical
:class:`~repro.worm.model.InfectionCurve` results, not approximate
ones — these tests hold it to that on seeded 1k and 10k populations of
every Fig. 8 scenario, plus hand-built graphs that exercise the
batch-tick boundaries (mid-run harvester-style injections, idle wake).

Also here: the adversarial re-injection suite for both engines' target
dedup — repeatedly feeding a scanner addresses it has already scanned
must not grow its queue, wake it, or cost any scan slots.
"""

from dataclasses import replace

import pytest

from repro.sim import Simulator
from repro.worm import (
    ENGINES,
    SCENARIOS,
    WormParams,
    WormScenarioConfig,
    run_scenario,
)

#: Sim-time horizons long enough for every scenario to go quiescent at
#: these scales (the slow verme-* curves are harvester-rate-bound).
HORIZONS = {
    "chord": 200.0,
    "verme": 200.0,
    "verme-secure": 200.0,
    "verme-fast": 1500.0,
    "verme-compromise": 15000.0,
}


def _run_both(scenario, config):
    until = HORIZONS[scenario]
    legacy = run_scenario(scenario, replace(config, engine="legacy"), until=until)
    columnar = run_scenario(
        scenario, replace(config, engine="columnar"), until=until
    )
    return legacy, columnar


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_curves_identical_1k(scenario):
    config = WormScenarioConfig(num_nodes=1000, num_sections=64, seed=3)
    legacy, columnar = _run_both(scenario, config)
    assert legacy.curve.points == columnar.curve.points
    assert legacy.scans_performed == columnar.scans_performed
    assert legacy.final_infected == columnar.final_infected


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_curves_identical_10k(scenario):
    config = WormScenarioConfig(num_nodes=10_000, num_sections=256, seed=11)
    legacy, columnar = _run_both(scenario, config)
    assert legacy.curve.points == columnar.curve.points
    assert legacy.scans_performed == columnar.scans_performed
    assert legacy.final_infected == columnar.final_infected


def test_different_seed_still_identical():
    config = WormScenarioConfig(num_nodes=1000, num_sections=64, seed=42)
    legacy, columnar = _run_both("chord", config)
    assert legacy.curve.points == columnar.curve.points


# -- hand-built graphs: batch-tick boundaries ---------------------------------


class FixedKnowledge:
    """A hand-written knowledge graph for precise assertions."""

    def __init__(self, graph):
        self.graph = graph

    def targets_of(self, index):
        return list(self.graph.get(index, []))


def _build(engine, graph, vulnerable, params=None):
    sim = Simulator()
    worm = ENGINES[engine](
        sim,
        num_nodes=len(vulnerable),
        vulnerable=vulnerable,
        knowledge=FixedKnowledge(graph),
        params=params or WormParams(),
    )
    return sim, worm


def _final_states(worm):
    return [worm.state_of(i) for i in range(worm.num_nodes)] if hasattr(
        worm, "state_of"
    ) else list(worm.state)


@pytest.mark.parametrize(
    "graph,vulnerable",
    [
        ({0: [1], 1: [2], 2: []}, [True] * 3),
        ({0: [1, 2], 1: [], 2: []}, [True, False, True]),
        ({0: list(range(1, 11))}, [True] * 11),
        ({0: [1], 1: [0, 2], 2: []}, [True] * 3),
    ],
)
def test_fixed_graph_equivalence(graph, vulnerable):
    results = {}
    for engine in ENGINES:
        sim, worm = _build(engine, graph, vulnerable)
        worm.seed(0)
        worm.run(until=1000.0)
        results[engine] = (worm.curve.points, worm.scans_performed,
                          _final_states(worm))
    assert results["columnar"] == results["legacy"]


def test_midrun_injection_equivalence():
    """A foreign event injecting targets mid-window must interleave with
    batch ticks exactly as it does with per-event scheduling."""
    graph = {0: [1], 1: [], 5: []}
    vulnerable = [True] * 6
    results = {}
    for engine in ENGINES:
        sim, worm = _build(engine, graph, vulnerable)
        worm.seed(0)
        # Node 1 has no knowledge of its own: it activates, goes idle,
        # and is woken by this injection landing between scan slots.
        sim.call_after(2.505, lambda w=worm: w.add_targets(1, [5, 0]))
        worm.run(until=100.0)
        results[engine] = (worm.curve.points, worm.scans_performed,
                          _final_states(worm))
    assert results["columnar"] == results["legacy"]


# -- adversarial re-injection (dedup) -----------------------------------------


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_reinjection_of_scanned_targets_is_inert(engine):
    """Re-feeding addresses a node has already scanned must not grow its
    queue, re-wake it, or cost scan slots."""
    sim, worm = _build(engine, {0: [1, 2]}, [True, True, True])
    worm.seed(0)
    worm.run(until=50.0)
    assert worm.infected_count == 3
    assert worm.pending_targets(0) == 0
    assert sim.pending_live == 0  # everything idle, nothing scheduled
    scans = worm.scans_performed
    for _ in range(5):
        worm.add_targets(0, [1, 2])
        assert worm.pending_targets(0) == 0
        assert sim.pending_live == 0  # no wake-up was scheduled
    worm.run(until=100.0)
    assert worm.scans_performed == scans


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_reinjection_mixed_with_fresh_target(engine):
    """A batch mixing stale addresses, the node itself, and one fresh
    address enqueues exactly the fresh one."""
    sim, worm = _build(engine, {0: [1, 2]}, [True, True, True, True])
    worm.seed(0)
    worm.run(until=50.0)
    scans = worm.scans_performed
    worm.add_targets(0, [0, 1, 2, 3, 3, 1])
    assert worm.pending_targets(0) == 1
    assert sim.pending_live == 1  # woken exactly once
    worm.run(until=100.0)
    assert worm.is_infected(3)
    assert worm.scans_performed == scans + 1
    # And the scanned fresh target is now stale too.
    worm.add_targets(0, [3])
    assert worm.pending_targets(0) == 0
    assert sim.pending_live == 0


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_repeated_reinjection_never_grows_queue(engine):
    """Hammering the same stale batch many times while the node is mid
    scan leaves the queue bounded by the number of distinct addresses."""
    graph = {0: list(range(1, 8))}
    sim, worm = _build(engine, graph, [True] * 8)
    worm.seed(0)
    worm.run(until=0.5)  # mid-propagation: queue partially scanned
    baseline = worm.pending_targets(0)
    for _ in range(10):
        worm.add_targets(0, list(range(1, 8)))
    assert worm.pending_targets(0) == baseline
    worm.run(until=100.0)
    assert worm.infected_count == 8
    # Every address was scanned at most once.
    assert worm.scans_performed == 7


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_injection_into_uninfected_node_ignored(engine):
    sim, worm = _build(engine, {}, [True, True])
    worm.add_targets(0, [1])
    assert worm.pending_targets(0) == 0
    assert sim.pending_live == 0
