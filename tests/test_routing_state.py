"""Unit tests for NeighborList and FingerTable."""

from repro.chord.state import FingerTable, NeighborList, NodeInfo
from repro.ids import IdSpace
from repro.net import NodeAddress

SPACE = IdSpace(8)


def info(node_id, slot=None):
    return NodeInfo(node_id, NodeAddress(slot if slot is not None else node_id))


def test_successor_list_sorted_clockwise():
    lst = NeighborList(SPACE, owner_id=100, limit=4, clockwise=True)
    lst.merge([info(200), info(110), info(50), info(105)])
    assert [e.node_id for e in lst] == [105, 110, 200, 50]


def test_predecessor_list_sorted_counter_clockwise():
    lst = NeighborList(SPACE, owner_id=100, limit=4, clockwise=False)
    lst.merge([info(90), info(99), info(120), info(10)])
    assert [e.node_id for e in lst] == [99, 90, 10, 120]


def test_limit_enforced_keeping_closest():
    lst = NeighborList(SPACE, owner_id=0, limit=2, clockwise=True)
    lst.merge([info(30), info(10), info(20), info(5)])
    assert [e.node_id for e in lst] == [5, 10]


def test_owner_never_included():
    lst = NeighborList(SPACE, owner_id=7, limit=4)
    lst.merge([info(7), info(9)])
    assert [e.node_id for e in lst] == [9]


def test_merge_dedupes_by_id_preferring_new_incarnation():
    lst = NeighborList(SPACE, owner_id=0, limit=4)
    old = NodeInfo(5, NodeAddress(5, 0))
    new = NodeInfo(5, NodeAddress(5, 1))
    lst.merge([old])
    lst.merge([new])
    assert lst.entries == [new]


def test_remove_address():
    lst = NeighborList(SPACE, owner_id=0, limit=4)
    lst.merge([info(5), info(9)])
    lst.remove_address(NodeAddress(5))
    assert [e.node_id for e in lst] == [9]


def test_remove_id():
    lst = NeighborList(SPACE, owner_id=0, limit=4)
    lst.merge([info(5), info(9)])
    lst.remove_id(9)
    assert [e.node_id for e in lst] == [5]


def test_replace_resets_contents():
    lst = NeighborList(SPACE, owner_id=0, limit=4)
    lst.merge([info(5)])
    lst.replace([info(9), info(12)])
    assert [e.node_id for e in lst] == [9, 12]


def test_first_and_len_and_contains():
    lst = NeighborList(SPACE, owner_id=0, limit=4)
    assert lst.first is None
    lst.merge([info(9), info(5)])
    assert lst.first.node_id == 5
    assert len(lst) == 2
    assert info(9) in lst


def test_finger_table_set_get_remove():
    ft = FingerTable()
    ft.set(7, info(50))
    ft.set(6, info(40))
    assert ft.get(7).node_id == 50
    assert len(ft) == 2
    ft.remove_address(NodeAddress(50))
    assert ft.get(7) is None
    assert len(ft) == 1


def test_finger_table_set_none_clears():
    ft = FingerTable()
    ft.set(3, info(10))
    ft.set(3, None)
    assert ft.get(3) is None
    assert ft.entries() == []


def test_finger_table_items_and_entries():
    ft = FingerTable()
    ft.set(1, info(2))
    ft.set(2, info(4))
    assert sorted(k for k, _ in ft.items()) == [1, 2]
    assert {e.node_id for e in ft.entries()} == {2, 4}
