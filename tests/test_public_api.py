"""The public API surface: everything advertised must import and work."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


@pytest.mark.parametrize(
    "module",
    [
        "repro.sim",
        "repro.net",
        "repro.ids",
        "repro.crypto",
        "repro.chord",
        "repro.verme",
        "repro.dht",
        "repro.overlay",
        "repro.worm",
        "repro.unstructured",
        "repro.analysis",
        "repro.experiments",
        "repro.faults",
        "repro.obs",
        "repro.invariants",
    ],
)
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__"), f"{module} lacks __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name} missing"


def test_public_items_documented():
    """Every public class/function re-exported at the top level carries
    a docstring."""
    import inspect

    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert not missing, f"undocumented public items: {missing}"


def test_module_docstrings_everywhere():
    import pathlib

    root = pathlib.Path(repro.__file__).parent
    undocumented = []
    for path in root.rglob("*.py"):
        source = path.read_text()
        stripped = source.lstrip()
        if not (stripped.startswith('"""') or stripped.startswith("'''") or not stripped):
            undocumented.append(str(path.relative_to(root)))
    assert not undocumented, f"modules without docstrings: {undocumented}"
