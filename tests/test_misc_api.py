"""Direct tests for small public APIs exercised only indirectly
elsewhere: message sizing, op tags, the grid/averaging wrappers."""


from repro.dht import next_op_tag
from repro.net import HEADER_BYTES, ID_BYTES, ADDR_BYTES, Message, NodeAddress, entry_bytes
from repro.worm import WormScenarioConfig, run_all_scenarios


def test_entry_bytes_is_id_plus_address():
    assert entry_bytes() == ID_BYTES + ADDR_BYTES


def test_message_floors_size_at_header():
    msg = Message(NodeAddress(0), NodeAddress(1), "x", size=3)
    assert msg.size == HEADER_BYTES
    big = Message(NodeAddress(0), NodeAddress(1), "x", size=5000)
    assert big.size == 5000


def test_message_ids_unique():
    a = Message(NodeAddress(0), NodeAddress(1), "x", size=100)
    b = Message(NodeAddress(0), NodeAddress(1), "x", size=100)
    assert a.msg_id != b.msg_id


def test_next_op_tag_monotone_unique():
    tags = [next_op_tag() for _ in range(100)]
    assert len(set(tags)) == 100
    assert tags == sorted(tags)


def test_run_all_scenarios_covers_every_scenario():
    from repro.worm import SCENARIOS

    cfg = WormScenarioConfig(num_nodes=300, num_sections=16, seed=4)
    horizons = {name: 30.0 for name in SCENARIOS}
    results = run_all_scenarios(cfg, horizons)
    assert set(results) == set(SCENARIOS)
    for name, res in results.items():
        assert res.scenario == name
        assert res.final_infected >= 1  # at least the seed


def test_run_fig5_grid_shape():
    from repro.experiments import Fig5Config, run_fig5

    cfg = Fig5Config(num_nodes=30, duration_s=120.0, warmup_s=20.0,
                     mean_lifetimes_s=(3600.0,))
    rows = run_fig5(cfg, systems=("chord-recursive", "verme"))
    assert len(rows) == 2
    assert {r.system for r in rows} == {"chord-recursive", "verme"}


def test_run_fig5_averages_multiple_runs():
    from dataclasses import replace

    from repro.experiments import Fig5Config, run_fig5

    cfg = Fig5Config(num_nodes=30, duration_s=120.0, warmup_s=20.0,
                     mean_lifetimes_s=(3600.0,), runs=2)
    rows = run_fig5(cfg, systems=("chord-recursive",))
    single = run_fig5(replace(cfg, runs=1), systems=("chord-recursive",))
    assert rows[0].lookups > single[0].lookups  # pooled across runs


def test_run_fig6_and_fig7_row_views():
    from repro.experiments import DhtExperimentConfig, run_fig6
    from repro.experiments.dht_ops import rows_for_figure, run_dht_experiment
    from repro.experiments.fig7_dht_bandwidth import run_fig7

    cfg = DhtExperimentConfig(num_nodes=60, num_sections=8, num_puts=4, num_gets=4)
    rows6 = run_fig6(cfg, systems=("dhash",))
    assert {r.operation for r in rows6} == {"get", "put"}
    rows7 = run_fig7(cfg, systems=("dhash",))
    assert all(r.mean_bytes > 0 for r in rows7)
    flat = rows_for_figure(run_dht_experiment(cfg, systems=("dhash",)))
    assert len(flat) == 2
