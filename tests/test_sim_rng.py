"""Unit tests for deterministic RNG streams."""

from repro.sim import RngRegistry, derive_seed


def test_same_seed_same_stream():
    a = RngRegistry(42).stream("x")
    b = RngRegistry(42).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    reg = RngRegistry(42)
    xs = [reg.stream("x").random() for _ in range(5)]
    ys = [reg.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_stream_is_cached():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_consuming_one_stream_does_not_shift_another():
    reg1 = RngRegistry(7)
    reg1.stream("noise").random()  # extra draw
    value1 = reg1.stream("signal").random()
    reg2 = RngRegistry(7)
    value2 = reg2.stream("signal").random()
    assert value1 == value2


def test_fork_gives_independent_registry():
    parent = RngRegistry(5)
    child = parent.fork("child")
    assert parent.stream("x").random() != child.stream("x").random()


def test_fork_is_deterministic():
    a = RngRegistry(5).fork("c").stream("x").random()
    b = RngRegistry(5).fork("c").stream("x").random()
    assert a == b


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derived_seed_is_64_bit():
    assert 0 <= derive_seed(123, "name") < 2**64
