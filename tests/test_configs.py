"""Validation tests for the configuration dataclasses."""

import pytest

from repro.chord.config import OverlayConfig
from repro.dht import DhtConfig
from repro.ids import IdSpace
from repro.net.gtitm import GtItmConfig
from repro.worm import WormParams


def test_overlay_config_defaults_match_paper():
    cfg = OverlayConfig()
    assert cfg.num_successors == 10
    assert cfg.num_predecessors == 10
    assert cfg.stabilize_interval_s == 30.0
    assert cfg.finger_interval_s == 60.0
    assert cfg.space.bits == 160


def test_overlay_config_validation():
    with pytest.raises(ValueError):
        OverlayConfig(num_successors=0)
    with pytest.raises(ValueError):
        OverlayConfig(rpc_timeout_s=0)
    with pytest.raises(ValueError):
        OverlayConfig(lookup_timeout_s=-1)


def test_dht_config_validation_and_split():
    with pytest.raises(ValueError):
        DhtConfig(num_replicas=0)
    assert DhtConfig(num_replicas=6).replicas_per_section == 3
    assert DhtConfig(num_replicas=7).replicas_per_section == 3
    assert DhtConfig(num_replicas=1).replicas_per_section == 1


def test_worm_params_paper_defaults():
    p = WormParams()
    assert (p.scan_rate_per_s, p.infect_time_s, p.activation_delay_s) == (
        100.0, 0.1, 1.0,
    )


def test_gtitm_stub_router_count():
    cfg = GtItmConfig(num_hosts=10)
    assert cfg.num_stub_routers() == (
        cfg.transit_domains
        * cfg.transit_nodes_per_domain
        * cfg.stubs_per_transit_node
        * cfg.stub_nodes_per_stub
    )


def test_fig_configs_paper_scale_roundtrip():
    from repro.experiments import DhtExperimentConfig, Fig5Config, Fig8Config

    f5 = Fig5Config().paper_scale()
    assert f5.num_nodes == 1740
    assert f5.num_sections == 128
    assert f5.duration_s == 43200.0
    assert len(f5.mean_lifetimes_s) == 5
    assert f5.runs == 8

    dht = DhtExperimentConfig().paper_scale()
    assert dht.num_nodes == 1740
    assert dht.num_sections == 128

    f8 = Fig8Config().paper_scale()
    assert f8.scenario_config.num_nodes == 100_000
    assert f8.scenario_config.num_sections == 4096
    assert f8.runs == 10


def test_id_space_default_is_160_bit():
    assert IdSpace().bits == 160
