"""The overload experiment: determinism, serving quality, CLI."""

import json
from dataclasses import replace

import pytest

from repro.experiments.overload import (
    POLICIES,
    OverloadConfig,
    run_overload_cell,
    smoke_config,
)
from repro.experiments.runner import main

CFG = replace(
    smoke_config(),
    num_nodes=40,
    duration_s=240.0,
    warmup_s=30.0,
    mean_lookup_interval_s=4.0,
)


@pytest.fixture(scope="module")
def cells():
    """Both policy arms at smoke scale, shared across the module."""
    return {policy: run_overload_cell(CFG, policy) for policy in POLICIES}


def test_deterministic_per_seed(cells):
    row, events = cells["shed"]
    again_row, again_events = run_overload_cell(CFG, "shed")
    assert again_row == row
    assert again_events == events
    other_row, _ = run_overload_cell(replace(CFG, seed=CFG.seed + 1), "shed")
    assert other_row != row


def test_shed_holds_goodput_through_the_spike(cells):
    """The ISSUE's acceptance criterion: with shedding on, goodput in
    the overload window stays within 20% of the pre-spike level."""
    row, _ = cells["shed"]
    assert row.goodput_pre_per_s > 0
    assert row.goodput_overload_per_s >= 0.8 * row.goodput_pre_per_s
    assert row.goodput_post_per_s >= 0.8 * row.goodput_pre_per_s
    assert row.shed_rate + row.shed_queue > 0  # backpressure engaged


def test_noshed_control_degrades_measurably(cells):
    """The unbounded-queue control: the backlog outlives the spike, so
    post-spike goodput collapses and tails blow past the shed arm."""
    shed, _ = cells["shed"]
    noshed, _ = cells["noshed"]
    assert noshed.shed_rate == noshed.shed_queue == 0
    degraded = (
        noshed.goodput_post_per_s < 0.8 * noshed.goodput_pre_per_s
        or noshed.goodput_overload_per_s < 0.8 * shed.goodput_overload_per_s
    )
    assert degraded
    assert noshed.p99_latency_s > shed.p99_latency_s


def test_tail_percentiles_are_ordered(cells):
    for row, _ in cells.values():
        assert 0 < row.p50_latency_s <= row.p99_latency_s <= row.p999_latency_s


def test_runner_overload_smoke_cli(tmp_path, capsys):
    metrics_path = tmp_path / "overload.metrics.json"
    assert main(["overload", "--smoke", "--metrics", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "shed goodput held within 20% of pre-spike: yes" in out
    assert "noshed control degraded: yes" in out
    snapshot = json.loads(metrics_path.read_text())
    flat = {
        name
        for section in snapshot.values()
        if isinstance(section, dict)
        for name in section
    }
    for policy in POLICIES:
        prefix = f"overload.{policy}.r0"
        assert f"{prefix}.p99_latency_s" in flat
        assert f"{prefix}.p999_latency_s" in flat
        assert f"{prefix}.goodput_overload_per_s" in flat


def test_runner_rejects_misplaced_flags():
    with pytest.raises(SystemExit):
        main(["fig6", "--workload", "zipf"])
    with pytest.raises(SystemExit):
        main(["fig5", "--workload", "pareto"])
    with pytest.raises(SystemExit):
        main(["fig5", "--overload", "tsunami"])
    with pytest.raises(SystemExit):
        main(["fig5", "--smoke"])


def test_overload_config_validates():
    with pytest.raises(ValueError):
        replace(OverloadConfig(), service_rate_per_s=0.0).policy("shed")
    with pytest.raises(ValueError, match="unknown policy"):
        OverloadConfig().policy("maybe")
