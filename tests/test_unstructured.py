"""Tests for the §6.2 tracker-based unstructured overlay."""

import random

import pytest

from repro.crypto import CertificateAuthority
from repro.ids import NodeType
from repro.net import NodeAddress
from repro.unstructured import (
    Tracker,
    TrackerConfig,
    build_swarm,
    run_swarm_worm,
)

CFG = TrackerConfig(island_size=16, same_island_neighbors=5, cross_type_neighbors=5)


def make_tracker(containment=True, seed=1):
    ca = CertificateAuthority()
    return Tracker(CFG, ca, random.Random(seed), containment=containment), ca


def announce(tracker, ca, peer_id, node_type, slot):
    cert, _ = ca.issue(peer_id, node_type)
    return tracker.announce(peer_id, NodeAddress(slot), cert)


def test_announce_and_island_placement():
    tracker, ca = make_tracker()
    records = [announce(tracker, ca, i + 1, NodeType.A, i) for i in range(20)]
    assert all(r is not None for r in records)
    islands = tracker.islands_of(NodeType.A)
    assert len(islands) == 2  # 20 peers / island_size 16
    assert sum(len(i) for i in islands) == 20
    assert max(len(i) for i in islands) <= CFG.island_size


def test_announce_rejects_foreign_certificate():
    tracker, _ca = make_tracker()
    rogue = CertificateAuthority(issuer_id=9)
    cert, _ = rogue.issue(42, NodeType.A)
    assert tracker.announce(42, NodeAddress(0), cert) is None
    assert tracker.rejected_announces == 1


def test_announce_rejects_id_mismatch():
    tracker, ca = make_tracker()
    cert, _ = ca.issue(7, NodeType.A)
    assert tracker.announce(8, NodeAddress(0), cert) is None


def test_announce_idempotent():
    tracker, ca = make_tracker()
    a = announce(tracker, ca, 1, NodeType.A, 0)
    cert, _ = ca.issue(1, NodeType.A)
    b = tracker.announce(1, NodeAddress(0), cert)
    assert a == b
    assert len(tracker.peers) == 1


def test_neighbors_respect_containment():
    swarm = build_swarm(300, CFG, seed=3)
    by_id = {p.peer_id: p for p in swarm.peers}
    for peer_id, neighbors in swarm.neighbor_sets.items():
        me = by_id[peer_id]
        for n in neighbors:
            if n.claimed_type is me.claimed_type:
                assert n.island == me.island, "same-type cross-island link!"


def test_neighbors_include_cross_type():
    swarm = build_swarm(300, CFG, seed=4)
    by_id = {p.peer_id: p for p in swarm.peers}
    cross_counts = [
        sum(1 for n in ns if n.claimed_type is not by_id[pid].claimed_type)
        for pid, ns in swarm.neighbor_sets.items()
    ]
    assert min(cross_counts) >= 1


def _same_type_component_sizes(swarm):
    """Connected-component sizes of the same-type knowledge graph."""
    graph = swarm.knowledge_graph(same_type_only=True)
    seen = set()
    sizes = []
    for start in graph:
        if start in seen:
            continue
        stack, component = [start], set()
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(graph.get(node, []))
        seen |= component
        sizes.append(len(component))
    return sizes


def test_naive_assignment_creates_giant_same_type_component():
    naive = build_swarm(300, CFG, seed=5, containment=False)
    contained = build_swarm(300, CFG, seed=5, containment=True)
    assert max(_same_type_component_sizes(naive)) > 100
    assert max(_same_type_component_sizes(contained)) <= CFG.island_size


def test_neighbors_for_unknown_peer_raises():
    tracker, _ca = make_tracker()
    with pytest.raises(KeyError):
        tracker.neighbors_for(404)


def test_audit_assignment_counts():
    swarm = build_swarm(200, CFG, seed=6)
    assert swarm.tracker.audit_assignment(swarm.neighbor_sets) == 0
    build_swarm(200, CFG, seed=6, containment=False)
    # Naive islands are all -1 so same-type links don't count as
    # violations by the audit definition; check via explicit islands:
    # instead assert that the containment swarm is clean and the worm
    # results (below) discriminate the two.


def test_worm_contained_on_tracker_overlay():
    swarm = build_swarm(800, CFG, seed=7)
    res = run_swarm_worm(swarm, until=200.0)
    # Confined to roughly one island of the victim type.
    assert res.infected <= 2 * CFG.island_size
    assert res.containment_fraction < 0.15


def test_worm_sweeps_naive_tracker_overlay():
    swarm = build_swarm(800, CFG, seed=7, containment=False)
    res = run_swarm_worm(swarm, until=200.0)
    assert res.containment_fraction > 0.8


def test_config_validation():
    with pytest.raises(ValueError):
        TrackerConfig(island_size=1)
    with pytest.raises(ValueError):
        TrackerConfig(same_island_neighbors=-1)
