"""The small-N interleaving stress harness (tier-1, tiny scale).

These runs are the real thing — live protocol joins, crashes and
stabilization with strict invariant checking after every step — just
short enough for the suite.  CI's ``invariant-smoke`` job runs the
bigger walks.
"""

import pytest

from repro.invariants import (
    StressConfig,
    StressResult,
    run_interleavings,
    run_stress,
)
from repro.invariants.harness import main as harness_main


def test_stress_config_validation():
    with pytest.raises(ValueError):
        StressConfig(system="pastry")
    with pytest.raises(ValueError):
        StressConfig(num_nodes=2, min_alive=4)


def test_random_walk_chord_stays_clean():
    result = run_stress(StressConfig(system="chord", steps=6, seed=11))
    assert isinstance(result, StressResult)
    assert result.steps == 6
    assert result.checks >= 7  # one per step + the final evaluation
    result.assert_clean()


def test_random_walk_verme_stays_clean():
    result = run_stress(StressConfig(system="verme", steps=6, seed=11))
    result.assert_clean()


def test_random_walk_is_deterministic():
    config = StressConfig(system="chord", steps=5, seed=3)
    a = run_stress(config)
    b = run_stress(config)
    assert a.checks == b.checks
    assert [str(v) for v in a.violations] == [str(v) for v in b.violations]


def test_exhaustive_interleavings_chord():
    config = StressConfig(system="chord", depth=2, seed=1)
    result = run_interleavings(config, ops=("crash", "join", "settle"))
    assert result.sequences == 9  # 3^2
    result.assert_clean()


def test_harness_cli_smoke(capsys):
    exit_code = harness_main(
        ["--system", "chord", "--steps", "4", "--seed", "2"]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "chord random: 1 sequence(s), 4 steps" in out
    assert "0 errors" in out
