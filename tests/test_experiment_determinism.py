"""Experiment drivers must be bit-reproducible from their seeds.

Regression guard for a real bug: ``hash(str)`` is randomised per
process, so seeds derived from it changed between runs.  These tests
cannot span processes, but they pin the derivation to the stable
``derive_seed`` and check run-to-run determinism in-process.
"""

from repro.experiments import DhtExperimentConfig, Fig5Config, run_cell, run_dht_cell
from repro.sim.rng import derive_seed
from repro.worm import WormScenarioConfig, run_scenario


def test_fig5_cell_deterministic():
    cfg = Fig5Config(num_nodes=40, duration_s=180.0, warmup_s=30.0)
    a = run_cell(cfg, "chord-recursive", 3600.0)
    b = run_cell(cfg, "chord-recursive", 3600.0)
    assert a == b


def test_fig5_seed_changes_results():
    cfg_a = Fig5Config(num_nodes=40, duration_s=180.0, warmup_s=30.0, seed=1)
    cfg_b = Fig5Config(num_nodes=40, duration_s=180.0, warmup_s=30.0, seed=2)
    a = run_cell(cfg_a, "chord-recursive", 3600.0)
    b = run_cell(cfg_b, "chord-recursive", 3600.0)
    assert a.mean_latency_s != b.mean_latency_s


def test_dht_cell_deterministic():
    cfg = DhtExperimentConfig(num_nodes=60, num_sections=8, num_puts=5, num_gets=5)
    a = run_dht_cell(cfg, "dhash")
    b = run_dht_cell(cfg, "dhash")
    assert a.get_stats.latencies_s == b.get_stats.latencies_s
    assert a.put_stats.bytes_used == b.put_stats.bytes_used


def test_worm_scenario_deterministic():
    cfg = WormScenarioConfig(num_nodes=500, num_sections=32, seed=9)
    a = run_scenario("verme-fast", cfg, until=50.0)
    b = run_scenario("verme-fast", cfg, until=50.0)
    assert a.curve.points == b.curve.points


def test_derive_seed_is_process_stable():
    # Known-answer check: if this ever changes, recorded experiment
    # numbers stop being reproducible.
    assert derive_seed(0, "fig5:verme:900.0:0") == derive_seed(
        0, "fig5:verme:900.0:0"
    )
    assert isinstance(derive_seed(0, "x"), int)


def test_resilience_cell_deterministic():
    from repro.experiments import ResilienceConfig, run_resilience_cell

    cfg = ResilienceConfig(
        num_nodes=24,
        num_sections=4,
        partition_start_s=90.0,
        partition_heal_s=150.0,
        duration_s=360.0,
        warmup_s=30.0,
    )
    a = run_resilience_cell(cfg, "chord")
    b = run_resilience_cell(cfg, "chord")
    assert a == b  # frozen rows compare field-by-field


def test_fig8_workers_bit_identical_to_serial():
    """--workers 4 and serial fig8 runs must produce identical
    infection curves for the same seed (ISSUE 2 determinism guard)."""
    from repro.experiments import Fig8Config, run_fig8_cells

    cfg = Fig8Config(
        scenario_config=WormScenarioConfig(num_nodes=300, num_sections=16, seed=5),
        runs=2,
        horizons={"chord": 30.0, "verme-fast": 30.0},
    )
    scenarios = ("chord", "verme-fast")
    serial = run_fig8_cells(cfg, scenarios, workers=1)
    parallel = run_fig8_cells(cfg, scenarios, workers=4)
    assert list(serial) == list(parallel)
    for scenario in scenarios:
        assert [r.curve.points for r in serial[scenario]] == [
            r.curve.points for r in parallel[scenario]
        ]


def test_fig5_workers_bit_identical_to_serial():
    from repro.experiments import run_fig5_parallel

    cfg = Fig5Config(num_nodes=30, duration_s=120.0, warmup_s=30.0, runs=2)
    serial = run_fig5_parallel(
        cfg, systems=("chord-recursive",), lifetimes=(3600.0,), workers=1
    )
    parallel = run_fig5_parallel(
        cfg, systems=("chord-recursive",), lifetimes=(3600.0,), workers=2
    )
    assert serial == parallel


def test_dht_workers_bit_identical_to_serial():
    """Fig. 6/7 cells through the pool must match the serial path
    exactly — same per-op latencies and byte counts, same order."""
    from repro.experiments.parallel import run_dht_parallel

    cfg = DhtExperimentConfig(num_nodes=60, num_sections=8, num_puts=5, num_gets=5)
    systems = ("dhash", "fast-verdi")
    serial = run_dht_parallel(cfg, systems=systems, workers=1)
    parallel = run_dht_parallel(cfg, systems=systems, workers=2)
    assert [r.system for r in serial] == [r.system for r in parallel]
    for a, b in zip(serial, parallel):
        assert a.get_stats.latencies_s == b.get_stats.latencies_s
        assert a.put_stats.latencies_s == b.put_stats.latencies_s
        assert a.get_stats.bytes_used == b.get_stats.bytes_used
        assert a.put_stats.bytes_used == b.put_stats.bytes_used


def test_resilience_seed_changes_results():
    from repro.experiments import ResilienceConfig, run_resilience_cell

    base = dict(
        num_nodes=24,
        num_sections=4,
        partition_start_s=90.0,
        partition_heal_s=150.0,
        duration_s=360.0,
        warmup_s=30.0,
    )
    a = run_resilience_cell(ResilienceConfig(seed=1, **base), "verme")
    b = run_resilience_cell(ResilienceConfig(seed=2, **base), "verme")
    assert a != b
