"""Integration: rings under churn keep working (Fig. 5's regime)."""


import pytest

from repro.analysis import LookupStats
from repro.chord import ChurnDriver, LookupStyle, LookupWorkload
from repro.experiments.builders import VermeNodeFactory, build_ring
from repro.chord.config import OverlayConfig
from repro.ids import IdSpace, VermeIdLayout
from repro.net import ConstantLatency, Network
from repro.sim import RngRegistry, Simulator



def churn_setup(verme: bool, num_nodes=48, seed=5):
    space = IdSpace(32)
    config = OverlayConfig(
        space=space,
        num_successors=6,
        num_predecessors=6,
        stabilize_interval_s=5.0,
        finger_interval_s=10.0,
    )
    sim = Simulator()
    network = Network(sim, ConstantLatency(num_hosts=num_nodes, one_way=0.02))
    rngs = RngRegistry(seed)
    layout = VermeIdLayout.for_sections(space, 8) if verme else None
    ring = build_ring(sim, network, config, num_nodes, rngs, layout)
    return ring, rngs


@pytest.mark.parametrize("verme", [False, True], ids=["chord", "verme"])
def test_lookups_keep_succeeding_under_churn(verme):
    ring, rngs = churn_setup(verme)
    churn = ChurnDriver(
        ring.sim, ring.population, ring.factory, rngs.stream("churn"),
        mean_lifetime_s=120.0, rejoin_delay_s=1.0,
    )
    churn.start()
    stats = LookupStats()
    workload = LookupWorkload(
        ring.sim, ring.population, rngs.stream("load"),
        style=LookupStyle.RECURSIVE, mean_interval_s=5.0, stats=stats,
    )
    workload.start()
    ring.sim.run(until=600.0)
    assert churn.deaths > 10, "churn must actually have happened"
    assert churn.joins > 5
    assert stats.total > 100
    assert stats.failure_rate < 0.10


def test_population_size_stays_stable_under_churn():
    ring, rngs = churn_setup(verme=False)
    n0 = len(ring.population)
    churn = ChurnDriver(
        ring.sim, ring.population, ring.factory, rngs.stream("churn"),
        mean_lifetime_s=60.0, rejoin_delay_s=0.5,
    )
    churn.start()
    sizes = []
    for _ in range(12):
        ring.sim.run(until=ring.sim.now + 50.0)
        sizes.append(len(ring.population))
    assert min(sizes) > 0.6 * n0
    assert max(sizes) <= n0


def test_rejoined_nodes_get_fresh_incarnations():
    ring, rngs = churn_setup(verme=False, num_nodes=16)
    churn = ChurnDriver(
        ring.sim, ring.population, ring.factory, rngs.stream("churn"),
        mean_lifetime_s=30.0, rejoin_delay_s=0.5,
    )
    churn.start()
    ring.sim.run(until=300.0)
    assert churn.deaths > 5
    incarnations = [n.address.incarnation for n in ring.population.nodes]
    assert any(i > 0 for i in incarnations)


def test_verme_churn_preserves_host_types():
    """A replaced node keeps its host's platform type — machines do not
    change platforms when the client restarts."""
    ring, rngs = churn_setup(verme=True)
    factory = ring.factory
    assert isinstance(factory, VermeNodeFactory)
    churn = ChurnDriver(
        ring.sim, ring.population, ring.factory, rngs.stream("churn"),
        mean_lifetime_s=60.0, rejoin_delay_s=0.5,
    )
    churn.start()
    ring.sim.run(until=400.0)
    for node in ring.population.nodes:
        assert node.node_type == factory.type_for_host(node.address.host_slot)


def test_churn_rejects_bad_lifetime():
    ring, rngs = churn_setup(verme=False, num_nodes=8)
    with pytest.raises(ValueError):
        ChurnDriver(
            ring.sim, ring.population, ring.factory, rngs.stream("churn"),
            mean_lifetime_s=0.0,
        )


def test_routing_state_reconverges_after_churn_burst():
    ring, rngs = churn_setup(verme=False)
    rng = rngs.stream("killer")
    victims = rng.sample(ring.population.nodes, 10)
    for v in victims:
        ring.population.remove(v)
        v.crash()
    ring.sim.run(until=ring.sim.now + 200.0)
    live_ids = sorted(n.node_id for n in ring.population.nodes)
    import bisect

    for node in ring.population.nodes:
        succ = node.successors.first
        assert succ is not None
        expected = live_ids[
            bisect.bisect_right(live_ids, node.node_id) % len(live_ids)
        ]
        assert succ.node_id == expected
