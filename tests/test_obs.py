"""Unit tests for the repro.obs metrics registry, state switch, and the
zero-cost-when-disabled contract."""

from __future__ import annotations

import json
import os
import tracemalloc

import pytest

import repro.obs as obs
from repro.obs import (
    OBS,
    MetricsRegistry,
    collecting,
    disable,
    enable,
    enabled,
    flatten,
    maybe_phase,
    run_cell_collected,
)
from repro.obs.registry import iter_counters
from repro.worm import WormScenarioConfig, run_scenario


# -- registry -----------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.counter("a").inc(4)
    reg.gauge("g").set(2.5)
    h = reg.histogram("h", bounds=(1.0, 10.0))
    for v in (0.5, 1.0, 5.0, 100.0):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["counters"]["a"] == 5
    assert snap["gauges"]["g"] == 2.5
    hs = snap["histograms"]["h"]
    # 0.5 and the exact bound hit 1.0 both land in the <=1.0 bucket.
    assert hs["counts"] == [2, 1, 1]
    assert hs["count"] == 4
    assert hs["min"] == 0.5 and hs["max"] == 100.0


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.histogram("h") is reg.histogram("h")
    assert len(reg) == 2
    assert reg.names() == ["h", "x"]


def test_cross_kind_name_collision_rejected():
    reg = MetricsRegistry()
    reg.counter("dup")
    with pytest.raises(ValueError):
        reg.gauge("dup")
    with pytest.raises(ValueError):
        reg.histogram("dup")


def test_histogram_bounds_must_increase_and_match():
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("h", bounds=(2.0, 1.0))
    reg = MetricsRegistry()
    reg.histogram("h", bounds=(1.0, 2.0))
    with pytest.raises(ValueError):
        reg.histogram("h", bounds=(1.0, 3.0))


def test_snapshot_json_is_byte_stable():
    def build():
        reg = MetricsRegistry()
        reg.counter("z.late").inc(3)
        reg.counter("a.early").inc(1)
        reg.gauge("mid").set(0.25)
        reg.histogram("lat").observe(0.004)
        return reg

    assert build().to_json() == build().to_json()
    # Registration order must not leak into the bytes.
    reg = MetricsRegistry()
    reg.histogram("lat").observe(0.004)
    reg.gauge("mid").set(0.25)
    reg.counter("a.early").inc(1)
    reg.counter("z.late").inc(3)
    assert reg.to_json() == build().to_json()


def test_csv_rendering_round_numbers():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.histogram("h", bounds=(1.0,)).observe(0.5)
    lines = reg.to_csv().splitlines()
    assert lines[0] == "kind,name,field,value"
    assert "counter,c,value,2" in lines
    assert any(line.startswith("histogram,h,le_1.0,") for line in lines)


def test_merge_snapshot_adds_counters_and_buckets():
    a, b = MetricsRegistry(), MetricsRegistry()
    for reg, n in ((a, 2), (b, 3)):
        reg.counter("c").inc(n)
        reg.gauge("g").set(n)
        reg.histogram("h", bounds=(1.0,)).observe(n)
    a.merge_snapshot(b.snapshot())
    snap = a.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"] == 3  # last merge wins
    assert snap["histograms"]["h"]["count"] == 2
    assert snap["histograms"]["h"]["sum"] == 5.0
    assert snap["histograms"]["h"]["max"] == 3.0


def test_merge_rejects_foreign_schema():
    with pytest.raises(ValueError):
        MetricsRegistry().merge_snapshot({"schema": "something/else"})


def test_flatten_and_iter_counters():
    reg = MetricsRegistry()
    reg.counter("net.drops.partition").inc(7)
    reg.histogram("lookup.latency_s").observe(0.2)
    snap = reg.snapshot()
    flat = flatten(snap)
    assert flat["net.drops.partition"] == 7.0
    assert flat["lookup.latency_s.count"] == 1.0
    assert dict(iter_counters(snap, "net.")) == {"net.drops.partition": 7}


# -- the global switch --------------------------------------------------------


def test_enable_disable_cycle():
    assert not enabled()
    enable(metrics=True, trace=True, profile=True)
    try:
        assert enabled()
        assert OBS.metrics is not None
        assert OBS.trace is not None
        assert OBS.profile is not None
    finally:
        disable()
    assert OBS.metrics is None and OBS.trace is None and OBS.profile is None


def test_collecting_restores_previous_state():
    with collecting(metrics=True):
        outer = OBS.metrics
        assert outer is not None
        with collecting(metrics=True, trace=True):
            assert OBS.metrics is not outer
            assert OBS.trace is not None
        assert OBS.metrics is outer
        assert OBS.trace is None
    assert not enabled()


def test_run_cell_collected_isolates_registries():
    def cell(n):
        OBS.metrics.counter("cell.calls").inc(n)
        return n * 2

    with collecting(metrics=True):
        outer = OBS.metrics
        result, snap = run_cell_collected(cell, (5,))
        assert result == 10
        assert snap["counters"]["cell.calls"] == 5
        # The cell wrote to its own fresh registry, not the outer one.
        assert OBS.metrics is outer
        assert "cell.calls" not in outer.snapshot()["counters"]
        outer.merge_snapshot(snap)
        assert outer.snapshot()["counters"]["cell.calls"] == 5


def test_maybe_phase_noop_when_disabled():
    assert not enabled()
    ctx = maybe_phase("anything")
    assert ctx is maybe_phase("anything-else")  # the shared null context
    with ctx:
        pass


def test_profiler_phase_accumulates():
    enable(metrics=False, profile=True)
    try:
        with maybe_phase("work"):
            pass
        with maybe_phase("work"):
            pass
        summary = OBS.profile.summary()
        assert summary["phases"]["work"]["entries"] == 2
        assert summary["peak_rss_kib"] > 0
        assert "work" in OBS.profile.format_report()
    finally:
        disable()


# -- disabled mode is free ----------------------------------------------------


def _tiny_worm_run():
    config = WormScenarioConfig(num_nodes=200, num_sections=8, seed=3)
    return run_scenario("chord", config, until=60.0)


def test_disabled_mode_records_and_allocates_nothing():
    """With observability off, a full scenario run must not touch the
    obs package at all: no registry, no trace events, and no allocation
    attributed to any repro/obs source file."""
    disable()
    assert not enabled()
    _tiny_worm_run()  # warm every import and code path first
    obs_dir = os.path.dirname(obs.__file__)
    tracemalloc.start()
    try:
        _tiny_worm_run()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    obs_allocations = [
        trace
        for trace in snapshot.traces
        if any(frame.filename.startswith(obs_dir) for frame in trace.traceback)
    ]
    assert obs_allocations == []
    assert OBS.metrics is None and OBS.trace is None and OBS.profile is None


def test_enabled_run_counts_transitions_summing_to_population():
    config = WormScenarioConfig(num_nodes=300, num_sections=16, seed=11)
    with collecting(metrics=True):
        result = run_scenario("chord", config, until=120.0)
        snap = OBS.metrics.snapshot()
    prefix = f"worm.chord.s{config.seed}.states."
    states = {n: v for n, v in iter_counters(snap, prefix)}
    assert sum(states.values()) == result.population_size
    assert (
        snap["counters"][f"worm.chord.s{config.seed}.population"]
        == result.population_size
    )


def test_metrics_snapshot_is_valid_json():
    with collecting(metrics=True):
        _tiny_worm_run()
        text = OBS.metrics.to_json()
    parsed = json.loads(text)
    assert parsed["schema"] == "repro.obs.metrics/1"
    assert parsed["counters"]
