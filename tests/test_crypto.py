"""Unit tests for certificates and sealed payloads."""

import pytest

from repro.crypto import (
    CertificateAuthority,
    CertificateError,
    KeyPair,
    SealError,
    seal,
)
from repro.ids import NodeType


def test_issue_and_verify():
    ca = CertificateAuthority()
    cert, keys = ca.issue(0x1234, NodeType.A)
    assert ca.verify(cert)
    assert cert.node_id == 0x1234
    assert cert.claimed_type is NodeType.A
    assert cert.true_type is NodeType.A
    assert not cert.is_impersonation
    assert keys.matches(cert.public_key)


def test_foreign_certificate_rejected():
    ca1, ca2 = CertificateAuthority(), CertificateAuthority()
    cert, _ = ca1.issue(1, NodeType.A)
    assert not ca2.verify(cert)
    with pytest.raises(CertificateError):
        ca2.require_valid(cert)


def test_impersonated_certificate_verifies_but_is_flagged():
    ca = CertificateAuthority()
    cert, _ = ca.issue_impersonated(2, claimed_type=NodeType.B, true_type=NodeType.A)
    # The CA cannot tell (that is the attack premise)...
    assert ca.verify(cert)
    # ...but experiments can.
    assert cert.is_impersonation
    assert cert.claimed_type is NodeType.B
    assert cert.true_type is NodeType.A


def test_key_pairs_are_unique():
    keys = {KeyPair.generate().public for _ in range(100)}
    assert len(keys) == 100


def test_sealed_payload_opens_with_right_key():
    keys = KeyPair.generate()
    box = seal(keys.public, ["secret", 42])
    assert box.open(keys) == ["secret", 42]


def test_sealed_payload_rejects_wrong_key():
    keys, other = KeyPair.generate(), KeyPair.generate()
    box = seal(keys.public, "secret")
    with pytest.raises(SealError):
        box.open(other)


def test_sealed_repr_does_not_leak():
    keys = KeyPair.generate()
    box = seal(keys.public, "top-secret-address")
    assert "top-secret-address" not in repr(box)
