"""Smoke tests for the command-line experiment runner."""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.runner import main


def test_fig8_smoke(capsys):
    assert main(["fig8", "--runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "verme-compromise" in out
    assert "scenario" in out
    assert "[fig8 done" in out


def test_runner_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig9"])


def test_runner_requires_figure():
    with pytest.raises(SystemExit):
        main([])


def test_fig6_smoke(monkeypatch, capsys):
    """Shrink the config so the CLI path runs in seconds."""
    from repro.experiments.dht_ops import DhtExperimentConfig

    original = DhtExperimentConfig

    def tiny(num_nodes=400, num_sections=32, **kwargs):
        kwargs.setdefault("num_puts", 5)
        kwargs.setdefault("num_gets", 5)
        return original(num_nodes=100, num_sections=8, **kwargs)

    monkeypatch.setattr(runner_mod, "DhtExperimentConfig", tiny)
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "secure-verdi" in out
    assert "mean_lat_s" in out


def test_fig5_smoke(monkeypatch, capsys):
    from repro.experiments.fig5_lookup_latency import Fig5Config

    original = Fig5Config

    def tiny(**kwargs):
        return original(
            num_nodes=50, duration_s=240.0, warmup_s=30.0,
            mean_lifetimes_s=(3600.0,), **kwargs,
        )

    monkeypatch.setattr(runner_mod, "Fig5Config", tiny)
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "chord-transitive" in out
    assert "verme" in out
