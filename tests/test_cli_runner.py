"""Smoke tests for the command-line experiment runner."""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.runner import main


def test_fig8_smoke(capsys):
    assert main(["fig8", "--runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "verme-compromise" in out
    assert "scenario" in out
    assert "[fig8 done" in out


def test_runner_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig9"])


def test_runner_requires_figure():
    with pytest.raises(SystemExit):
        main([])


def test_fig6_smoke(monkeypatch, capsys):
    """Shrink the config so the CLI path runs in seconds."""
    from repro.experiments.dht_ops import DhtExperimentConfig

    original = DhtExperimentConfig

    def tiny(num_nodes=400, num_sections=32, **kwargs):
        kwargs.setdefault("num_puts", 5)
        kwargs.setdefault("num_gets", 5)
        return original(num_nodes=100, num_sections=8, **kwargs)

    monkeypatch.setattr(runner_mod, "DhtExperimentConfig", tiny)
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "secure-verdi" in out
    assert "mean_lat_s" in out


def test_fig5_smoke(monkeypatch, capsys):
    from repro.experiments.fig5_lookup_latency import Fig5Config

    original = Fig5Config

    def tiny(**kwargs):
        return original(
            num_nodes=50, duration_s=240.0, warmup_s=30.0,
            mean_lifetimes_s=(3600.0,), **kwargs,
        )

    monkeypatch.setattr(runner_mod, "Fig5Config", tiny)
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "chord-transitive" in out
    assert "verme" in out


def _tiny_resilience(monkeypatch):
    from repro.experiments.resilience import ResilienceConfig

    original = ResilienceConfig

    def tiny(**kwargs):
        kwargs.setdefault("num_nodes", 24)
        kwargs.setdefault("partition_start_s", 120.0)
        kwargs.setdefault("partition_heal_s", 150.0)
        kwargs.setdefault("duration_s", 300.0)
        kwargs.setdefault("warmup_s", 30.0)
        return original(**kwargs)

    monkeypatch.setattr(runner_mod, "ResilienceConfig", tiny)


def test_invariants_flag_rejected_for_unsupported_figures():
    with pytest.raises(SystemExit):
        main(["fig8", "--invariants", "strict"])


def test_resilience_strict_invariants_smoke(
    monkeypatch, capsys, tmp_path
):
    """A clean partition-and-heal run exits 0 in strict mode and writes
    the JSON violation report."""
    _tiny_resilience(monkeypatch)
    monkeypatch.chdir(tmp_path)
    assert main(["resilience", "--invariants", "strict", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "invariants:" in out
    assert "0 errors" in out
    report_path = tmp_path / "invariants_resilience.json"
    assert report_path.exists()
    import json

    report = json.loads(report_path.read_text())
    assert report["schema"] == "repro.invariants/1"
    assert report["seed"] == 5
    assert report["checks"] > 0


def test_invariants_cleared_from_obs_after_run(monkeypatch, tmp_path):
    from repro.obs import OBS

    _tiny_resilience(monkeypatch)
    monkeypatch.chdir(tmp_path)
    main(["resilience", "--invariants", "sample"])
    assert OBS.invariants is None


def test_repro_command_line_includes_seed_and_strict_mode():
    import argparse

    args = argparse.Namespace(
        figure="resilience", paper_scale=False, preset=None, seed=7
    )
    line = runner_mod._repro_command(args)
    assert "repro.experiments.runner resilience" in line
    assert "--seed 7" in line
    assert "--invariants strict" in line
