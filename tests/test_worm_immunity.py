"""Tests for the immune-fraction extension (Zhou et al.'s observation
that immune nodes slow/limit propagation; the paper's Fig. 8 uses 0)."""

import random

import pytest

from repro.worm import (
    WormScenarioConfig,
    build_chord_population,
    build_verme_population,
    run_scenario,
)


def test_immune_fraction_validated():
    with pytest.raises(ValueError):
        WormScenarioConfig(immune_fraction=1.0)
    with pytest.raises(ValueError):
        WormScenarioConfig(immune_fraction=-0.1)


def test_immune_fraction_shrinks_vulnerable_population():
    base = WormScenarioConfig(num_nodes=2000, num_sections=64, seed=5)
    patched = WormScenarioConfig(
        num_nodes=2000, num_sections=64, seed=5, immune_fraction=0.4
    )
    pop0 = build_verme_population(base, random.Random(1))
    pop1 = build_verme_population(patched, random.Random(1))
    assert pop1.vulnerable_count < pop0.vulnerable_count
    assert pop1.vulnerable_count == pytest.approx(0.6 * pop0.vulnerable_count, rel=0.1)


def test_immunity_applies_to_chord_population_too():
    cfg = WormScenarioConfig(num_nodes=2000, num_sections=64, seed=7, immune_fraction=0.5)
    pop = build_chord_population(cfg, random.Random(2))
    assert pop.vulnerable_count == pytest.approx(500, rel=0.2)


def test_immune_nodes_never_infected():
    cfg = WormScenarioConfig(num_nodes=1500, num_sections=64, seed=9, immune_fraction=0.5)
    result = run_scenario("chord", cfg, until=120.0)
    assert result.final_infected <= result.vulnerable_count


def test_immunity_slows_chord_worm():
    """Fewer susceptible neighbours -> slower generations and a smaller
    final sweep."""
    fast = run_scenario(
        "chord", WormScenarioConfig(num_nodes=3000, num_sections=64, seed=11),
        until=200.0,
    )
    slowed = run_scenario(
        "chord",
        WormScenarioConfig(
            num_nodes=3000, num_sections=64, seed=11, immune_fraction=0.6
        ),
        until=200.0,
    )
    t50_fast = fast.time_to_fraction(0.5)
    t50_slow = slowed.time_to_fraction(0.5)
    assert t50_fast is not None and t50_slow is not None
    assert t50_slow > t50_fast
    # Immunity can even strand parts of the knowledge graph.
    assert (
        slowed.final_infected / slowed.vulnerable_count
        <= fast.final_infected / fast.vulnerable_count + 1e-9
    )


def test_verme_containment_unaffected_by_immunity():
    cfg = WormScenarioConfig(
        num_nodes=1500, num_sections=64, seed=13, immune_fraction=0.3
    )
    result = run_scenario("verme", cfg, until=120.0)
    # Still confined to ~one section (now with fewer susceptible nodes).
    assert result.final_infected <= 3 * (cfg.num_nodes / cfg.num_sections)
