"""Admission control: token bucket, service queue, shed causes."""

import pytest

from repro.chord.admission import (
    SHED_QUEUE,
    SHED_RATE,
    AdmissionStats,
    NodeAdmission,
    ServicePolicy,
    TokenBucket,
)


# -- token bucket -------------------------------------------------------------


def test_bucket_burst_passes_at_t0():
    """The bucket starts full: exactly ``burst`` requests pass at t=0."""
    bucket = TokenBucket(rate_per_s=1.0, burst=3.0)
    assert [bucket.try_take(0.0) for _ in range(4)] == [True, True, True, False]


def test_bucket_zero_burst_is_a_closed_valve():
    bucket = TokenBucket(rate_per_s=5.0, burst=0.0)
    assert not any(bucket.try_take(t * 10.0) for t in range(10))


def test_bucket_exact_refill_boundary_admits():
    """After exactly ``1/rate`` idle seconds one token is back."""
    bucket = TokenBucket(rate_per_s=2.0, burst=1.0)
    assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)  # drained
    assert not bucket.try_take(0.49)  # one tick early: 0.98 tokens
    assert bucket.try_take(0.5 + 0.01)  # refilled past the boundary
    bucket2 = TokenBucket(rate_per_s=2.0, burst=1.0)
    assert bucket2.try_take(0.0)
    assert bucket2.try_take(0.5)  # tokens >= 1.0 exactly: admit


def test_bucket_refill_caps_at_burst():
    bucket = TokenBucket(rate_per_s=100.0, burst=2.0)
    assert bucket.try_take(0.0) and bucket.try_take(0.0)
    # A long idle period refills to burst, never beyond it.
    assert [bucket.try_take(1e6) for _ in range(3)] == [True, True, False]


def test_bucket_rejects_negative_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate_per_s=-1.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate_per_s=1.0, burst=-1.0)


# -- policy validation --------------------------------------------------------


def test_policy_validates():
    with pytest.raises(ValueError, match="service rate"):
        ServicePolicy(service_rate_per_s=0.0)
    with pytest.raises(ValueError, match="max_queue"):
        ServicePolicy(service_rate_per_s=1.0, max_queue=-1)
    policy = ServicePolicy(service_rate_per_s=1.0)
    assert policy.max_queue is None and policy.bucket_rate_per_s is None
    assert policy.ingress_only


# -- admission ---------------------------------------------------------------


def _admission(**kwargs):
    policy = ServicePolicy(service_rate_per_s=2.0, **kwargs)
    stats = AdmissionStats()
    return NodeAdmission(policy, stats), stats


def test_departs_spaced_at_service_rate():
    """Back-to-back arrivals queue behind the 1/rate virtual server."""
    adm, stats = _admission()
    delays = [adm.admit(0.0) for _ in range(3)]
    assert delays == [pytest.approx(0.5), pytest.approx(1.0),
                      pytest.approx(1.5)]
    assert stats.accepted == 3 and stats.shed == 0
    # After the backlog drains, a fresh arrival sees an idle server.
    for _ in range(3):
        adm.release()
    assert adm.admit(10.0) == pytest.approx(0.5)


def test_queue_depth_shed_and_release():
    adm, stats = _admission(max_queue=2)
    assert isinstance(adm.admit(0.0), float)
    assert isinstance(adm.admit(0.0), float)
    assert adm.admit(0.0) == SHED_QUEUE  # depth 2 == max_queue: reject
    assert stats.shed_queue == 1 and stats.accepted == 2
    adm.release()
    assert isinstance(adm.admit(0.0), float)  # a slot freed up


def test_rate_shed_fires_before_queue_shed():
    adm, stats = _admission(max_queue=0, bucket_rate_per_s=1.0,
                            bucket_burst=0.0)
    assert adm.admit(0.0) == SHED_RATE
    assert stats.shed_rate == 1 and stats.shed_queue == 0


def test_zero_max_queue_sheds_everything():
    adm, stats = _admission(max_queue=0)
    assert all(adm.admit(float(t)) == SHED_QUEUE for t in range(5))
    assert stats.shed == stats.shed_queue == 5


def test_stats_shed_property_sums_causes():
    stats = AdmissionStats(accepted=7, shed_rate=2, shed_queue=3)
    assert stats.shed == 5


def test_shed_cause_strings_are_the_error_values():
    """Lookup failures carry these exact strings (fail-fast contract)."""
    assert SHED_RATE == "shed:rate"
    assert SHED_QUEUE == "shed:queue"
    assert SHED_RATE.startswith("shed:") and SHED_QUEUE.startswith("shed:")
