"""The routing-candidate cache must track its source-table versions.

``ChordNode._route_next`` scans a cached candidate list (fingers +
successor entries sorted farthest-first) keyed by the two tables'
``version`` counters.  These tests pin the invalidation contract: any
content change to either table bumps its version and forces a rebuild
on the next routing decision, a no-op merge keeps the cache (and its
version key) intact, and after real churn every live node's cache is
coherent with whatever its tables now hold.
"""

import random

from repro.analysis import LookupStats
from repro.chord import ChurnDriver, LookupStyle, LookupWorkload
from repro.chord.state import NodeInfo
from repro.net import NodeAddress
from repro.sim import RngRegistry

from conftest import build_chord_ring
from test_churn_integration import churn_setup


def _warm(node, key=12345):
    """One routing decision, which populates the candidate cache."""
    node._route_next(key, frozenset())
    assert node._cand_fver == node.fingers.version
    assert node._cand_sver == node.successors.version


def _expected_candidates(node):
    """The candidate list recomputed from the live tables, mirroring
    the construction in ``_route_next`` (fingers first, stable sort)."""
    mask = node._mask
    cands = []
    for cand in node.fingers.values():
        dc = (cand.node_id - node.node_id) & mask
        if dc:
            cands.append((-dc, cand))
    for cand in node.successors._entries:
        dc = (cand.node_id - node.node_id) & mask
        if dc:
            cands.append((-dc, cand))
    cands.sort(key=lambda c: c[0])
    return [c[0] for c in cands], [c[1] for c in cands]


def test_finger_set_bumps_version_and_rebuilds():
    ring = build_chord_ring(num_nodes=32, seed=7)
    node = ring.nodes[0]
    _warm(node)
    fver = node.fingers.version
    # A brand-new finger entry (fresh id halfway around the ring).
    new_id = (node.node_id + (1 << 31)) & node._mask
    info = NodeInfo(new_id, NodeAddress(9999, 0))
    node.fingers.set(40, info)
    assert node.fingers.version == fver + 1
    _warm(node)
    assert info in node._cand_infos


def test_finger_removal_invalidates():
    ring = build_chord_ring(num_nodes=32, seed=7)
    node = ring.nodes[0]
    _warm(node)
    victim = next(iter(node.fingers.values()))
    fver = node.fingers.version
    node.fingers.remove_address(victim.address)
    assert node.fingers.version > fver
    _warm(node)
    # The victim may legitimately survive via the successor list; the
    # rebuilt cache must simply match the post-removal tables.
    keys, infos = _expected_candidates(node)
    assert node._cand_keys == keys
    assert node._cand_infos == infos


def test_successor_merge_bumps_version_and_rebuilds():
    ring = build_chord_ring(num_nodes=32, seed=7)
    node = ring.nodes[0]
    _warm(node)
    sver = node.successors.version
    new_id = (node.node_id + 1) & node._mask
    info = NodeInfo(new_id, NodeAddress(9998, 0))
    node.successors.merge([info])
    assert node.successors.version == sver + 1
    _warm(node)
    assert info in node._cand_infos


def test_noop_merge_keeps_cache():
    """Steady-state stabilization re-merges the same entries; the
    version must not move, so the cached lists survive untouched."""
    ring = build_chord_ring(num_nodes=32, seed=7)
    node = ring.nodes[0]
    _warm(node)
    keys_before = node._cand_keys
    node.successors.merge(node.successors.entries)
    assert node.successors.version == node._cand_sver
    node._route_next(54321, frozenset())
    assert node._cand_keys is keys_before  # same object: no rebuild


def test_stale_cache_is_never_consulted_after_version_bump():
    """The decision after a table change must reflect the new tables:
    insert a finger that is the unique best hop for a key and check the
    very next decision routes through it."""
    ring = build_chord_ring(num_nodes=32, seed=7)
    node = ring.nodes[0]
    mask = node._mask
    key = (node.node_id + (1 << 30)) & mask
    _warm(node, key)
    before = node._route_next(key, frozenset())
    # Plant an entry immediately counter-clockwise of the key: the
    # closest-preceding rule must now pick it.
    best_id = (key - 1) & mask
    info = NodeInfo(best_id, NodeAddress(9997, 0))
    node.fingers.set(41, info)
    after = node._route_next(key, frozenset())
    assert not after.done
    assert after.next_hop == info
    assert before.done or before.next_hop != info


def test_cache_coherent_after_churn():
    """After a churned run (joins, deaths, finger repair), every live
    node's cached candidate list matches one recomputed from its
    current tables."""
    ring, rngs = churn_setup(verme=False)
    churn = ChurnDriver(
        ring.sim, ring.population, ring.factory, rngs.stream("churn"),
        mean_lifetime_s=120.0, rejoin_delay_s=1.0,
    )
    churn.start()
    stats = LookupStats()
    workload = LookupWorkload(
        ring.sim, ring.population, rngs.stream("load"),
        style=LookupStyle.RECURSIVE, mean_interval_s=5.0, stats=stats,
    )
    workload.start()
    ring.sim.run(until=300.0)
    assert churn.deaths > 5, "churn must actually have happened"
    rng = random.Random(3)
    checked = 0
    for node in ring.population:
        # Terminal/local decisions return before the candidate scan, so
        # try keys until one actually exercises (and so refreshes) the
        # cache for this node's current table versions.
        for _ in range(50):
            node._route_next(rng.getrandbits(32), frozenset())
            if (node._cand_fver == node.fingers.version
                    and node._cand_sver == node.successors.version):
                break
        else:
            continue
        keys, infos = _expected_candidates(node)
        assert node._cand_keys == keys
        assert node._cand_infos == infos
        checked += 1
    assert checked > 10
