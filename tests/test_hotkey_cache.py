"""Hot-key tracking, replica caching, load-aware replica selection."""

from repro.chord.state import NodeInfo
from repro.dht import (
    DhtConfig,
    DHashNode,
    HotKeyTracker,
    LoadEstimator,
    ReplicaCache,
)
from repro.net import NodeAddress

from conftest import build_chord_ring


def _info(slot: int) -> NodeInfo:
    return NodeInfo(node_id=slot, address=NodeAddress(host_slot=slot))


# -- HotKeyTracker ------------------------------------------------------------


def test_tracker_threshold_within_window():
    tracker = HotKeyTracker(window_s=10.0, threshold=3)
    tracker.note(7, 0.0)
    tracker.note(7, 1.0)
    assert not tracker.is_hot(7, 1.0)
    tracker.note(7, 2.0)
    assert tracker.is_hot(7, 2.0)
    assert not tracker.is_hot(8, 2.0)  # other keys unaffected


def test_tracker_window_expiry_cools_keys():
    tracker = HotKeyTracker(window_s=10.0, threshold=2)
    tracker.note(7, 0.0)
    tracker.note(7, 1.0)
    assert tracker.is_hot(7, 1.0)
    # Old hits slide out of the window: 0.0 and 1.0 are both stale.
    assert not tracker.is_hot(7, 11.5)
    tracker.note(7, 12.0)
    assert not tracker.is_hot(7, 12.0)  # one fresh hit, threshold 2


# -- ReplicaCache -------------------------------------------------------------


def test_cache_ttl_expiry():
    cache = ReplicaCache(capacity=4, ttl_s=30.0)
    cache.put(1, [_info(10)], now=0.0)
    assert cache.get(1, 29.0) is not None
    assert cache.get(1, 31.0) is None  # expired and dropped
    assert len(cache) == 0


def test_cache_lru_eviction():
    cache = ReplicaCache(capacity=2, ttl_s=1e9)
    cache.put(1, [_info(10)], now=0.0)
    cache.put(2, [_info(20)], now=0.0)
    cache.get(1, 1.0)  # touch 1: key 2 becomes the LRU tail
    cache.put(3, [_info(30)], now=2.0)
    assert cache.get(1, 3.0) is not None
    assert cache.get(2, 3.0) is None  # evicted
    assert cache.get(3, 3.0) is not None


def test_cache_returns_copies():
    cache = ReplicaCache(capacity=2, ttl_s=1e9)
    cache.put(1, [_info(10), _info(11)], now=0.0)
    got = cache.get(1, 0.0)
    got.pop()  # callers may consume their list freely
    assert len(cache.get(1, 0.0)) == 2


def test_cache_discard_address_drops_empty_entries():
    cache = ReplicaCache(capacity=4, ttl_s=1e9)
    cache.put(1, [_info(10), _info(11)], now=0.0)
    cache.discard_address(1, NodeAddress(host_slot=10))
    assert [e.address.host_slot for e in cache.get(1, 0.0)] == [11]
    cache.discard_address(1, NodeAddress(host_slot=11))
    assert cache.get(1, 0.0) is None  # last hint gone: entry dropped


def test_cache_invalidate_address_purges_every_entry():
    cache = ReplicaCache(capacity=4, ttl_s=1e9)
    cache.put(1, [_info(10), _info(11)], now=0.0)
    cache.put(2, [_info(10)], now=0.0)
    cache.put(3, [_info(12)], now=0.0)
    cache.invalidate_address(NodeAddress(host_slot=10))
    assert [e.address.host_slot for e in cache.get(1, 0.0)] == [11]
    assert cache.get(2, 0.0) is None
    assert cache.get(3, 0.0) is not None


# -- LoadEstimator ------------------------------------------------------------


def test_load_orders_least_loaded_first():
    load = LoadEstimator(alpha=0.5)
    fast, slow, unknown = _info(1), _info(2), _info(3)
    for _ in range(3):
        load.note_start(fast.address)
        load.note_done(fast.address, 0.05)
        load.note_start(slow.address)
        load.note_done(slow.address, 2.0)
    assert load.order([slow, fast]) == [fast, slow]
    # Unknown addresses score 0 (no evidence of load): ahead of known.
    assert load.order([slow, unknown, fast])[0] is unknown


def test_load_outstanding_requests_penalise():
    load = LoadEstimator(alpha=0.5, outstanding_penalty_s=0.5)
    a, b = _info(1), _info(2)
    for addr in (a.address, b.address):
        load.note_start(addr)
        load.note_done(addr, 0.1)
    load.note_start(a.address)  # one in-flight fetch to a
    assert load.order([a, b]) == [b, a]
    load.note_done(a.address, 0.1)
    assert load.score(a.address) == load.score(b.address)


def test_load_failures_count_double():
    load = LoadEstimator(alpha=1.0)
    a = _info(1)
    load.note_start(a.address)
    load.note_done(a.address, 1.0, failed=True)
    assert load.score(a.address) == 2.0


# -- integration: the DHT read path -------------------------------------------

HOT_CFG = DhtConfig(
    num_replicas=4,
    hot_cache=True,
    hot_threshold=2,
    hot_window_s=3600.0,
    cache_ttl_s=3600.0,
    load_aware=True,
)


def _attach(ring, cfg=HOT_CFG):
    layers = [DHashNode(node, cfg) for node in ring.nodes]
    for layer in layers:
        layer.start()
    return layers


def _run_op(ring, fn, *args):
    results = []
    fn(*args, results.append)
    ring.sim.run(until=ring.sim.now + 120)
    assert results
    return results[0]


def _client_for(ring, layers, key):
    """A layer whose node does not replicate ``key`` (a pure reader)."""
    holders = {
        e.node_id
        for e in ring.overlay.replica_group(key, HOT_CFG.num_replicas)
    }
    return next(l for l in layers if l.node.node_id not in holders)


def test_hot_key_promotes_and_caches():
    ring = build_chord_ring(num_nodes=24, seed=5)
    layers = _attach(ring)
    put = _run_op(ring, layers[0].put, b"flash-crowd-object" * 8)
    assert put.ok
    client = _client_for(ring, layers, put.key)

    first = _run_op(ring, client.get, put.key)
    assert first.ok and put.key not in client.store
    # Second read crosses hot_threshold=2: the fetch promotes a local
    # copy and the finished lookup caches the replica entries.
    second = _run_op(ring, client.get, put.key)
    assert second.ok
    assert put.key in client.store
    assert client.replica_cache.get(put.key, ring.sim.now)
    # Third read is a local hit: same sim instant, no network round trip.
    before = ring.sim.now
    third = _run_op(ring, client.get, put.key)
    assert third.ok and third.latency_s == 0.0 and ring.sim.now >= before


def test_cached_entries_skip_the_overlay_lookup():
    ring = build_chord_ring(num_nodes=24, seed=6)
    layers = _attach(ring)
    put = _run_op(ring, layers[0].put, b"cached-entry-read" * 8)
    client = _client_for(ring, layers, put.key)
    for _ in range(2):
        assert _run_op(ring, client.get, put.key).ok
    # Drop the promoted copy so the next read must use the entry cache.
    client.store.delete(put.key)
    # An uncached get starts its overlay lookup synchronously; a cached
    # one goes straight to the fetch phase without one.
    results = []
    lookups_before = client.node.lookups_started
    client.get(put.key, results.append)
    assert client.node.lookups_started == lookups_before
    ring.sim.run(until=ring.sim.now + 120)
    assert results and results[0].ok


def test_cache_invalidation_on_ownership_change_under_churn():
    """The ISSUE's coherence case: a cached replica holder dies, the
    ring reconfigures, and reads stay correct — the dead hint is
    discarded and the read falls back."""
    from dataclasses import replace

    ring = build_chord_ring(num_nodes=24, seed=7)
    # Fixed target order (no load-aware reshuffle): the dead hint is
    # tried first, so the discard-on-error path must fire.
    layers = _attach(ring, replace(HOT_CFG, load_aware=False))
    put = _run_op(ring, layers[0].put, b"owner-churn-object" * 8)
    client = _client_for(ring, layers, put.key)
    for _ in range(2):
        assert _run_op(ring, client.get, put.key).ok
    cached = client.replica_cache.get(put.key, ring.sim.now)
    assert cached

    dead = cached[0]
    ring.node_for(dead.node_id).crash()
    client.store.delete(put.key)  # force the cached-entry read path
    ring.sim.run(until=ring.sim.now + 120)  # detectors + stabilization

    res = _run_op(ring, client.get, put.key)
    assert res.ok
    remaining = client.replica_cache.get(put.key, ring.sim.now)
    if remaining is not None:
        assert all(e.address != dead.address for e in remaining)


def test_failure_detector_purges_dead_addresses():
    ring = build_chord_ring(num_nodes=24, seed=8)
    layers = _attach(ring)
    put = _run_op(ring, layers[0].put, b"detector-purge-object" * 8)
    client = _client_for(ring, layers, put.key)
    for _ in range(2):
        assert _run_op(ring, client.get, put.key).ok
    cached = client.replica_cache.get(put.key, ring.sim.now)
    assert cached
    # The cache's purge hook rides the overlay's failure detector.
    assert client._peer_down in client.node._down_hooks
    for hook in client.node._down_hooks:
        hook(cached[0])
    remaining = client.replica_cache.get(put.key, ring.sim.now)
    assert remaining is None or all(
        e.address != cached[0].address for e in remaining
    )


def test_secure_variants_never_cache_entries():
    from repro.dht import CompromiseVerDiNode, SecureVerDiNode

    assert DHashNode.ENTRY_CACHE_OK
    assert not SecureVerDiNode.ENTRY_CACHE_OK
    assert not CompromiseVerDiNode.ENTRY_CACHE_OK
