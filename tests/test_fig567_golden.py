"""Recorded-golden guard for the fig5/6/7 metric outputs.

The live-protocol fast path (slotted messages, cached interval
arithmetic, allocation-free routing scans) is required to be a pure
performance change: on the pinned seed workloads every reported metric
— latency distributions, bandwidth counters, hop counts, failure rates
— must match the records captured *before* the fast path landed,
bit for bit.  ``scripts/capture_fig567_golden.py`` wrote the file;
see its docstring for when regenerating is legitimate.
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.experiments.dht_ops import DhtExperimentConfig, run_dht_cell
from repro.experiments.fig5_lookup_latency import Fig5Config, run_cell

GOLDEN_PATH = Path(__file__).parent / "golden" / "fig567_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "system", ["chord-transitive", "chord-recursive", "verme"]
)
def test_fig5_metrics_bit_identical(golden, system):
    cfg = Fig5Config(**golden["fig5_config"])
    row = run_cell(cfg, system, golden["fig5_lifetime_s"])
    assert asdict(row) == golden["fig5"][system]


@pytest.mark.parametrize(
    "system", ["dhash", "fast-verdi", "secure-verdi", "compromise-verdi"]
)
def test_fig67_metrics_bit_identical(golden, system):
    cfg = DhtExperimentConfig(**golden["dht_config"])
    result = run_dht_cell(cfg, system)
    assert [asdict(r) for r in result.rows()] == golden["fig67"][system]
