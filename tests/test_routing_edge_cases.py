"""Edge cases of the routing engine: hop limits, duplicate tokens,
pending-route GC, dead transitive origins, token staleness."""

import random


from repro.chord import LookupPurpose, LookupStyle

from conftest import build_chord_ring, run_lookup


def test_hop_limit_fails_lookup():
    ring = build_chord_ring(num_nodes=32, seed=301)
    # Cripple routing: strip fingers so every hop advances by one
    # successor; with a tiny hop limit the lookup must fail cleanly.
    for node in ring.nodes:
        for k, _ in node.fingers.items():
            node.fingers.set(k, None)
    node = ring.nodes[0]
    object.__setattr__(node.config, "max_lookup_hops", 3)
    results = []
    far_key = node.successors.entries[-1].node_id + 1  # beyond succ list
    # pick a key more than 3 hops away: the node opposite on the ring
    far_key = ring.overlay.at(
        (ring.overlay.index_of(node.node_id) + 16) % len(ring.overlay)
    ).node_id
    node.lookup(far_key, on_done=results.append, style=LookupStyle.RECURSIVE)
    ring.sim.run(until=ring.sim.now + 120)
    assert results
    assert not results[0].success


def test_duplicate_route_forward_ignored():
    ring = build_chord_ring(num_nodes=16, seed=303)
    a, b = ring.nodes[0], ring.nodes[1]
    params = {
        "key": 42,
        "token": ("dup-test", 1),
        "style": LookupStyle.RECURSIVE,
        "purpose": LookupPurpose.DHT,
        "hops": 1,
        "meta": None,
        "extra_bytes": 0,
        "origin": None,
    }
    for _ in range(3):
        a.rpc.call(b.address, "route_forward", dict(params))
    ring.sim.run(until=ring.sim.now + 30)
    # Only one pending forward state survives for the token (duplicates
    # dropped), and it is GC'ed afterwards.
    assert len(b._forwards) <= 1
    ring.sim.run(until=ring.sim.now + ring.config.pending_route_gc_s + 5)
    assert ("dup-test", 1) not in b._forwards


def test_forward_state_gc_expires():
    ring = build_chord_ring(num_nodes=16, seed=305)
    b = ring.nodes[1]
    before = len(b._forwards)
    params = {
        "key": 7,
        "token": ("gc-test", 9),
        "style": LookupStyle.RECURSIVE,
        "purpose": LookupPurpose.DHT,
        "hops": 1,
        "meta": None,
        "extra_bytes": 0,
        "origin": None,
    }
    ring.nodes[0].rpc.call(b.address, "route_forward", params)
    ring.sim.run(until=ring.sim.now + 1)
    ring.sim.run(until=ring.sim.now + ring.config.pending_route_gc_s + 10)
    assert len(b._forwards) == before


def test_stale_route_result_ignored():
    ring = build_chord_ring(num_nodes=16, seed=307)
    a, b = ring.nodes[0], ring.nodes[1]
    a.rpc.send_one_way(
        b.address,
        "route_result",
        {"token": ("stale", 1), "ok": True, "payload": [], "app_payload": None,
         "error": None, "hops": 1, "size": 100},
    )
    ring.sim.run(until=ring.sim.now + 10)  # must not raise


def test_transitive_result_to_dead_origin_dropped():
    ring = build_chord_ring(num_nodes=32, seed=309)
    node = ring.nodes[0]
    results = []
    node.lookup(
        random.Random(1).getrandbits(32),
        on_done=results.append,
        style=LookupStyle.TRANSITIVE,
    )
    node.crash()  # origin disappears before the answer returns
    dropped_before = ring.network.dropped_messages
    ring.sim.run(until=ring.sim.now + 60)
    assert results == []
    assert ring.network.dropped_messages > dropped_before


def test_lookup_key_equal_to_own_id(chord_ring):
    node = chord_ring.nodes[0]
    res = run_lookup(chord_ring, node, node.node_id, style=LookupStyle.RECURSIVE)
    assert res.success
    assert res.entries[0].node_id == node.node_id


def test_lookup_key_equal_to_successor_id(chord_ring):
    node = chord_ring.nodes[0]
    succ = node.successors.first
    res = run_lookup(chord_ring, node, succ.node_id, style=LookupStyle.RECURSIVE)
    assert res.success
    assert res.entries[0].node_id == succ.node_id


def test_two_node_ring_lookups():
    ring = build_chord_ring(num_nodes=2, seed=311)
    a, b = ring.nodes
    for key in (a.node_id, b.node_id, a.node_id + 1, b.node_id + 1):
        key &= (1 << 32) - 1
        res = run_lookup(ring, a, key, style=LookupStyle.RECURSIVE)
        assert res.success
        expected = ring.overlay.at(ring.overlay.owner(key).index).node_id
        assert res.entries[0].node_id == expected


def test_concurrent_lookups_do_not_interfere():
    ring = build_chord_ring(num_nodes=48, seed=313)
    rng = random.Random(5)
    results = []
    expectations = []
    for _ in range(40):
        key = rng.getrandbits(32)
        node = rng.choice(ring.nodes)
        expectations.append(ring.overlay.at(ring.overlay.owner(key).index).node_id)
        node.lookup(key, on_done=results.append, style=LookupStyle.RECURSIVE)
    ring.sim.run(until=ring.sim.now + 120)
    assert len(results) == 40
    got = sorted(r.entries[0].node_id for r in results if r.success)
    assert got == sorted(expectations)
