"""Unit and integration tests for the fault-injection subsystem."""

import math

import pytest

from repro.chord.config import OverlayConfig
from repro.experiments.builders import build_ring
from repro.faults import (
    FaultPlan,
    GrayFailure,
    LinkFault,
    Outage,
    OutageScript,
    Partition,
)
from repro.faults.plan import DELIVER, FAULT_CAUSES
from repro.ids import IdSpace
from repro.net import ConstantLatency, Network, NodeAddress
from repro.sim import RngRegistry, Simulator


# -- Partition ---------------------------------------------------------------


def two_group_partition(start=10.0, heal=20.0):
    return Partition.of([{0, 1}, {2, 3}], start, heal)


def test_partition_severs_cross_group_both_ways_inside_window():
    p = two_group_partition()
    assert p.severs(0, 2, 15.0)
    assert p.severs(2, 0, 15.0)


def test_partition_keeps_intra_group_traffic():
    p = two_group_partition()
    assert not p.severs(0, 1, 15.0)
    assert not p.severs(2, 3, 15.0)


def test_partition_inactive_outside_window():
    p = two_group_partition(start=10.0, heal=20.0)
    assert not p.severs(0, 2, 9.9)
    assert not p.severs(0, 2, 20.0)  # heal instant: traffic flows again


def test_partition_ignores_unlisted_hosts():
    p = two_group_partition()
    assert not p.severs(7, 0, 15.0)
    assert not p.severs(0, 7, 15.0)


def test_partition_validation():
    with pytest.raises(ValueError):
        Partition.of([{0, 1}], 0.0, 1.0)  # one group is no partition
    with pytest.raises(ValueError):
        Partition.of([{0}, {0, 1}], 0.0, 1.0)  # overlapping groups
    with pytest.raises(ValueError):
        Partition.of([{0}, {1}], 5.0, 5.0)  # empty window


# -- LinkFault ---------------------------------------------------------------


def test_link_fault_matches_directed_window():
    f = LinkFault.between({0}, {1}, drop_prob=1.0, start_s=5.0, end_s=10.0)
    assert f.matches(0, 1, 7.0)
    assert not f.matches(1, 0, 7.0)  # asymmetric by default
    assert not f.matches(0, 1, 10.0)


def test_symmetric_link_fault_matches_reverse_direction():
    f = LinkFault.between({0}, {1}, drop_prob=1.0, symmetric=True)
    assert f.matches(1, 0, 0.0)


def test_none_hosts_match_everything():
    f = LinkFault(drop_prob=1.0)
    assert f.matches(11, 42, 0.0)


def test_burst_builder_covers_interval():
    f = LinkFault.burst(100.0, 5.0, hosts={3, 4})
    assert f.matches(3, 4, 102.0)
    assert f.matches(4, 3, 102.0)
    assert not f.matches(3, 4, 105.0)
    assert not f.matches(0, 1, 102.0)  # other hosts untouched


def test_link_fault_validation():
    with pytest.raises(ValueError):
        LinkFault(drop_prob=1.5)
    with pytest.raises(ValueError):
        LinkFault(extra_latency_s=-1.0)
    with pytest.raises(ValueError):
        LinkFault(start_s=5.0, end_s=5.0)


# -- GrayFailure -------------------------------------------------------------


def test_gray_failure_window_and_validation():
    g = GrayFailure(2, start_s=1.0, end_s=3.0)
    assert not g.active(0.5)
    assert g.active(1.0)
    assert not g.active(3.0)
    with pytest.raises(ValueError):
        GrayFailure(0, inbound_drop_prob=2.0)
    with pytest.raises(ValueError):
        GrayFailure(0, response_delay_s=-0.1)


# -- FaultPlan verdicts ------------------------------------------------------


def test_plan_without_faults_always_delivers():
    plan = FaultPlan(seed=1)
    assert plan.verdict(0, 1, 100.0) is DELIVER


def test_partition_verdict_tagged_and_counted():
    plan = FaultPlan().add_partition(two_group_partition())
    v = plan.verdict(0, 2, 15.0)
    assert not v.deliver
    assert v.cause == "partition"
    assert v.cause in FAULT_CAUSES
    assert plan.stats.drops_by_cause["partition"] == 1
    assert plan.stats.total_drops == 1


def test_certain_link_fault_drops_without_rng():
    plan = FaultPlan().add_link_fault(LinkFault(drop_prob=1.0))
    v = plan.verdict(0, 1, 0.0)
    assert not v.deliver and v.cause == "link-fault"


def test_link_fault_latency_accumulates():
    plan = (
        FaultPlan()
        .add_link_fault(LinkFault(extra_latency_s=0.1))
        .add_link_fault(LinkFault(extra_latency_s=0.2))
    )
    v = plan.verdict(0, 1, 0.0)
    assert v.deliver
    assert v.extra_latency_s == pytest.approx(0.3)
    assert plan.stats.delayed_messages == 1


def test_probabilistic_drop_rate_is_roughly_honoured():
    plan = FaultPlan(seed=3).add_link_fault(LinkFault(drop_prob=0.3))
    dropped = sum(
        1 for _ in range(1000) if not plan.verdict(0, 1, 0.0).deliver
    )
    assert 200 < dropped < 400


def test_gray_failure_drops_inbound_and_delays_outbound():
    plan = FaultPlan().add_gray_failure(
        GrayFailure(5, inbound_drop_prob=1.0, response_delay_s=0.4)
    )
    inbound = plan.verdict(0, 5, 0.0)
    assert not inbound.deliver and inbound.cause == "gray-failure"
    outbound = plan.verdict(5, 0, 0.0)
    assert outbound.deliver
    assert outbound.extra_latency_s == pytest.approx(0.4)


def test_plan_verdicts_are_deterministic_per_seed():
    def sequence(seed):
        plan = FaultPlan(seed).add_link_fault(LinkFault(drop_prob=0.5))
        return [plan.verdict(0, 1, 0.0).deliver for _ in range(50)]

    assert sequence(7) == sequence(7)
    assert sequence(7) != sequence(8)


def test_link_streams_are_independent():
    """Traffic on one link must not perturb verdicts on another."""
    lone = FaultPlan(seed=9).add_link_fault(LinkFault(drop_prob=0.5))
    baseline = [lone.verdict(0, 1, 0.0).deliver for _ in range(30)]

    busy = FaultPlan(seed=9).add_link_fault(LinkFault(drop_prob=0.5))
    interleaved = []
    for _ in range(30):
        busy.verdict(2, 3, 0.0)  # extra traffic elsewhere
        interleaved.append(busy.verdict(0, 1, 0.0).deliver)
    assert interleaved == baseline


# -- Network integration -----------------------------------------------------


def faulty_net(plan, hosts=4):
    sim = Simulator()
    net = Network(
        sim, ConstantLatency(num_hosts=hosts, one_way=0.05), fault_plan=plan
    )
    return sim, net


def test_network_counts_fault_drops_by_cause():
    plan = FaultPlan().add_partition(Partition.of([{0}, {1}], 0.0, 10.0))
    sim, net = faulty_net(plan)
    got = []
    net.register(NodeAddress(1), got.append)
    net.send(NodeAddress(0), NodeAddress(1), "x", size=64)
    sim.run()
    assert got == []
    assert net.dropped("partition") == 1
    assert net.fault_drops == 1
    assert net.accounting.dropped("partition") == 1


def test_network_applies_fault_latency():
    plan = FaultPlan().add_link_fault(LinkFault(extra_latency_s=0.5))
    sim, net = faulty_net(plan)
    times = []
    net.register(NodeAddress(1), lambda m: times.append(sim.now))
    net.send(NodeAddress(0), NodeAddress(1), "x", size=64)
    sim.run()
    assert times[0] == pytest.approx(0.55)


def test_network_delivers_again_after_heal():
    plan = FaultPlan().add_partition(Partition.of([{0}, {1}], 0.0, 10.0))
    sim, net = faulty_net(plan)
    got = []
    net.register(NodeAddress(1), got.append)
    sim.run(until=10.0)
    net.send(NodeAddress(0), NodeAddress(1), "late", size=64)
    sim.run()
    assert len(got) == 1


# -- Outage scripts ----------------------------------------------------------


def small_ring(num_nodes=12, seed=2):
    config = OverlayConfig(
        space=IdSpace(32),
        num_successors=4,
        num_predecessors=4,
        stabilize_interval_s=5.0,
        finger_interval_s=10.0,
    )
    sim = Simulator()
    network = Network(sim, ConstantLatency(num_hosts=num_nodes, one_way=0.02))
    rngs = RngRegistry(seed)
    return build_ring(sim, network, config, num_nodes, rngs, None), rngs


def test_outage_validation_and_restart_time():
    with pytest.raises(ValueError):
        Outage(0, 10.0, 0.0)
    assert Outage(0, 10.0, 5.0).restart_s == 15.0
    assert Outage(0, 10.0, math.inf).restart_s is None


def test_outage_script_crashes_and_restarts_through_join():
    ring, rngs = small_ring()
    script = OutageScript(
        ring.sim,
        ring.population,
        ring.factory,
        rngs.stream("outages"),
        [Outage(3, 20.0, 30.0), Outage(5, 25.0, math.inf)],
    )
    script.start()
    ring.sim.run(until=200.0)
    assert script.crashes == 2
    assert script.restarts == 1  # host 5 stays down for good
    assert script.skipped == 0
    slots = sorted(n.address.host_slot for n in ring.population.nodes)
    assert 3 in slots and 5 not in slots
    restarted = next(
        n for n in ring.population.nodes if n.address.host_slot == 3
    )
    assert restarted.address.incarnation == 1
    assert restarted.alive


def test_outage_script_skips_hosts_already_down():
    ring, rngs = small_ring()
    victim = next(
        n for n in ring.population.nodes if n.address.host_slot == 4
    )
    ring.population.remove(victim)
    victim.crash()
    script = OutageScript(
        ring.sim,
        ring.population,
        ring.factory,
        rngs.stream("outages"),
        [Outage(4, 10.0, 5.0)],
    )
    script.start()
    ring.sim.run(until=12.0)
    assert script.skipped == 1
    assert script.crashes == 0


def test_outage_script_composes_with_partition_plan():
    """A crash during a partition still restarts after the heal."""
    config = OverlayConfig(
        space=IdSpace(32),
        num_successors=4,
        num_predecessors=4,
        stabilize_interval_s=5.0,
        finger_interval_s=10.0,
    )
    sim = Simulator()
    plan = FaultPlan(seed=4).add_partition(
        Partition.of([range(4), range(4, 12)], 30.0, 60.0)
    )
    network = Network(
        sim, ConstantLatency(num_hosts=12, one_way=0.02), fault_plan=plan
    )
    rngs = RngRegistry(6)
    ring = build_ring(sim, network, config, 12, rngs, None)
    script = OutageScript(
        sim,
        ring.population,
        ring.factory,
        rngs.stream("outages"),
        [Outage(1, 40.0, 40.0)],
    )
    script.start()
    sim.run(until=300.0)
    assert script.crashes == 1
    assert script.restarts >= 1
    assert network.dropped("partition") > 0


def test_gray_failure_slows_rpc_but_node_stays_reachable():
    ring, _rngs = small_ring()
    gray_host = ring.nodes[0].address.host_slot
    plan = FaultPlan().add_gray_failure(
        GrayFailure(gray_host, response_delay_s=0.2)
    )
    ring.network.fault_plan = plan
    other = ring.nodes[1]
    replies = []
    other.rpc.call(
        ring.nodes[0].address,
        "ping",
        {},
        on_reply=lambda r: replies.append(ring.sim.now),
    )
    start = ring.sim.now
    ring.sim.run(until=start + 2.0)
    # 0.02 out + (0.02 + 0.2 gray delay) back
    assert replies and replies[0] - start == pytest.approx(0.24)
