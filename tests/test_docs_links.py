"""The docs stay honest: links resolve and documented flags exist.

Runs the same checks CI's docs-check step runs
(``scripts/check_docs.py``), plus unit tests of the checker itself so a
silently broken checker cannot wave broken docs through.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


def test_repo_docs_are_clean(capsys):
    assert check_docs.main() == 0
    assert "docs ok" in capsys.readouterr().out


def test_docs_cover_readme_and_docs_dir():
    names = {p.name for p in check_docs.doc_files()}
    assert "README.md" in names
    assert "observability.md" in names
    assert "architecture.md" in names


def test_checker_flags_broken_link(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](does/not/exist.md) and [ok](#anchor)\n")
    problems = check_docs.check_links(doc)
    assert len(problems) == 1
    assert "does/not/exist.md" in problems[0]


def test_checker_accepts_urls_and_existing_targets(tmp_path):
    (tmp_path / "other.md").write_text("x\n")
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[a](https://ui.perfetto.dev) [b](other.md) [c](other.md#sec)\n"
    )
    assert check_docs.check_links(doc) == []


def test_checker_flags_phantom_runner_flag(tmp_path):
    vocab = check_docs.tool_vocabulary()
    presets = check_docs.runner_presets()
    doc = tmp_path / "doc.md"
    doc.write_text(
        "run `python -m repro.experiments.runner fig8 --no-such-flag`\n"
    )
    problems = check_docs.check_commands(doc, vocab, presets)
    assert len(problems) == 1
    assert "--no-such-flag" in problems[0]


def test_checker_flags_unknown_preset(tmp_path):
    vocab = check_docs.tool_vocabulary()
    presets = check_docs.runner_presets()
    doc = tmp_path / "doc.md"
    doc.write_text(
        "run `python -m repro.experiments.runner fig8 --preset 9z`\n"
    )
    problems = check_docs.check_commands(doc, vocab, presets)
    assert any("unknown runner preset '9z'" in p for p in problems)


def test_real_flags_accepted(tmp_path):
    vocab = check_docs.tool_vocabulary()
    presets = check_docs.runner_presets()
    doc = tmp_path / "doc.md"
    doc.write_text(
        "`python -m repro.experiments.runner fig8 --preset 100k "
        "--metrics out.json --trace t.json --workers 4`\n"
        "`python benchmarks/perf/worm_propagation.py --preset 1m --obs`\n"
        "`python -m repro.obs.trace --validate t.json`\n"
    )
    assert check_docs.check_commands(doc, vocab, presets) == []
