"""Tests for Sybil-limiting certificate admission (§6.1)."""

import pytest

from repro.crypto import CertificateAuthority
from repro.crypto.admission import AdmissionController, AdmissionPolicy
from repro.ids import NodeType
from repro.sim import Simulator


def make(policy=None):
    sim = Simulator()
    ca = CertificateAuthority()
    ctrl = AdmissionController(sim, ca, policy or AdmissionPolicy())
    return sim, ca, ctrl


def test_certificate_issued_after_puzzle_delay():
    sim, ca, ctrl = make(AdmissionPolicy(puzzle_cost_s=120.0))
    results = []
    ok = ctrl.request_certificate(
        "alice", 0x1, NodeType.A, lambda c, k: results.append((sim.now, c, k))
    )
    assert ok
    sim.run(until=60.0)
    assert results == []  # still solving the puzzle
    sim.run(until=200.0)
    assert len(results) == 1
    t, cert, keys = results[0]
    assert t == pytest.approx(120.0)
    assert ca.verify(cert)
    assert keys.matches(cert.public_key)


def test_quota_enforced():
    sim, _ca, ctrl = make(AdmissionPolicy(puzzle_cost_s=10.0, max_certificates_per_principal=2))
    results = []
    for i in range(4):
        ctrl.request_certificate(
            "mallory", i + 1, NodeType.B, lambda c, k: results.append(c)
        )
    sim.run()
    granted = [c for c in results if c is not None]
    denied = [c for c in results if c is None]
    assert len(granted) == 2
    assert len(denied) == 2
    assert ctrl.denied_quota == 2
    assert ctrl.certificates_issued_to("mallory") == 2


def test_quota_counts_pending_requests():
    sim, _ca, ctrl = make(AdmissionPolicy(puzzle_cost_s=100.0, max_certificates_per_principal=1))
    outcomes = []
    assert ctrl.request_certificate("eve", 1, NodeType.A, lambda c, k: outcomes.append(c))
    # A second request while the first is pending must be refused.
    assert not ctrl.request_certificate("eve", 2, NodeType.A, lambda c, k: outcomes.append(c))
    sim.run()
    assert sum(1 for c in outcomes if c is not None) == 1


def test_quotas_are_per_principal():
    sim, _ca, ctrl = make(AdmissionPolicy(puzzle_cost_s=1.0))
    results = []
    ctrl.request_certificate("a", 1, NodeType.A, lambda c, k: results.append(c))
    ctrl.request_certificate("b", 2, NodeType.A, lambda c, k: results.append(c))
    sim.run()
    assert all(c is not None for c in results)


def test_attestation_blocks_impersonation():
    sim, _ca, ctrl = make(
        AdmissionPolicy(puzzle_cost_s=1.0, require_attestation=True)
    )
    results = []
    ok = ctrl.request_certificate(
        "attacker", 1, NodeType.B, lambda c, k: results.append(c),
        true_type=NodeType.A,
    )
    assert not ok
    assert ctrl.denied_attestation == 1
    sim.run()
    assert results == [None]


def test_without_attestation_impersonation_is_flagged_not_blocked():
    sim, ca, ctrl = make(AdmissionPolicy(puzzle_cost_s=1.0))
    results = []
    ctrl.request_certificate(
        "attacker", 1, NodeType.B, lambda c, k: results.append(c),
        true_type=NodeType.A,
    )
    sim.run()
    cert = results[0]
    assert cert is not None
    assert ca.verify(cert)  # the CA cannot tell...
    assert cert.is_impersonation  # ...but the experiment bookkeeping can


def test_identity_rate_bound():
    _sim, _ca, ctrl = make(AdmissionPolicy(puzzle_cost_s=300.0))
    assert ctrl.max_identity_rate_per_s() == pytest.approx(1 / 300.0)
    _sim, _ca, free = make(AdmissionPolicy(puzzle_cost_s=0.0))
    assert free.max_identity_rate_per_s() == float("inf")


def test_policy_validation():
    with pytest.raises(ValueError):
        AdmissionPolicy(puzzle_cost_s=-1)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_certificates_per_principal=0)
