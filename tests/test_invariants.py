"""The invariant predicate library, checker, and mutation detection.

The mutation tests are the point: each one hand-corrupts real overlay
state (reversed successor list, injected cross-section finger, node
orphaned from the cycle, ...) and asserts the matching predicate fires
with the right structured record — no invariant is vacuously true.
"""

import json
import tracemalloc

import pytest

import repro.invariants as inv
from repro.chord.ring import ChurnDriver, Population
from repro.chord.state import NodeInfo
from repro.invariants import (
    InvariantChecker,
    InvariantViolationError,
    NodeRecord,
    RingSnapshot,
)
from repro.net import NodeAddress
from repro.obs import OBS, disable as obs_disable, enabled as obs_enabled
from repro.verme.audit import (
    ContainmentViolation,
    audit_node_state,
    audit_overlay,
)

from conftest import build_chord_ring, build_verme_ring, population_of


def snapshot_of(ring, now=0.0):
    return RingSnapshot.capture(ring.nodes, now)


def converged_chord(num_nodes=24, seed=3):
    ring = build_chord_ring(num_nodes=num_nodes, seed=seed)
    ring.sim.run(until=200.0)
    return ring


def converged_verme(num_nodes=96, num_sections=8, seed=3):
    ring = build_verme_ring(
        num_nodes=num_nodes, num_sections=num_sections, seed=seed
    )
    ring.sim.run(until=200.0)
    return ring


def by_predicate(violations, name):
    return [v for v in violations if v.predicate == name]


# -- converged rings are clean ------------------------------------------------


def test_converged_chord_ring_has_no_violations():
    ring = converged_chord()
    found = inv.evaluate(snapshot_of(ring, 200.0), final=True)
    assert found == []


def test_converged_verme_ring_has_no_violations():
    """96 nodes / 8 sections / 4-entry lists is safely sized, so even
    the conditional containment predicate stays silent."""
    ring = converged_verme()
    found = inv.evaluate(snapshot_of(ring, 200.0), final=True)
    assert found == []


def test_snapshot_captures_only_alive_nodes():
    ring = converged_chord()
    victim = ring.nodes[0]
    victim.crash()
    snap = snapshot_of(ring)
    assert victim.node_id not in snap.members
    assert len(snap) == len(ring.nodes) - 1


def test_routing_state_matches_tables():
    ring = converged_chord(num_nodes=8)
    node = ring.nodes[0]
    succs, preds, fingers = node.routing_state()
    assert list(succs) == [e.node_id for e in node.successors]
    assert list(preds) == [e.node_id for e in node.predecessors]
    for k, target, entry in fingers:
        assert target == node.finger_target(k)
        assert node.fingers.get(k).node_id == entry


# -- mutation tests: every predicate detects its seeded corruption ------------


def test_reversed_successor_list_detected():
    ring = converged_chord()
    node = ring.nodes[5]
    node.successors._entries = list(reversed(node.successors._entries))
    found = by_predicate(
        inv.evaluate(snapshot_of(ring)), "successor-list"
    )
    assert found and all(v.severity == "error" for v in found)
    assert any(v.node_id == node.node_id for v in found)
    assert any("out of ring order" in v.detail for v in found)


def test_duplicate_successor_entry_detected():
    ring = converged_chord()
    node = ring.nodes[2]
    first = node.successors._entries[0]
    node.successors._entries = [first, first]
    found = by_predicate(
        inv.evaluate(snapshot_of(ring)), "successor-list"
    )
    assert any(
        v.node_id == node.node_id and "duplicate" in v.detail for v in found
    )


def test_self_entry_in_predecessor_list_detected():
    ring = converged_chord()
    node = ring.nodes[1]
    node.predecessors._entries = [node.info] + node.predecessors._entries
    found = by_predicate(
        inv.evaluate(snapshot_of(ring)), "predecessor-list"
    )
    assert any(
        v.node_id == node.node_id and "itself" in v.detail for v in found
    )


def test_cross_section_finger_detected_as_hard_error():
    """Inject exactly the link VermeNode._finger_fixed refuses to store:
    a same-type entry from a foreign section."""
    ring = converged_verme()
    node = ring.nodes[0]
    foreign = next(
        n for n in ring.nodes
        if ring.layout.same_type(n.node_id, node.node_id)
        and not ring.layout.same_section(n.node_id, node.node_id)
    )
    node.fingers.set(3, foreign.info)
    found = by_predicate(
        inv.evaluate(snapshot_of(ring)), "containment"
    )
    assert len(found) == 1
    violation = found[0]
    assert violation.severity == "error"
    assert violation.node_id == node.node_id
    assert violation.entries == (foreign.node_id,)
    assert "fingers" in violation.detail
    # The audit wrapper sees the same corruption (single implementation).
    audit = audit_overlay(ring.nodes)
    assert [(v.node_id, v.entry_id, v.table) for v in audit] == [
        (node.node_id, foreign.node_id, "fingers")
    ]


def test_orphaned_node_detected_as_stranded():
    ring = converged_chord()
    node = ring.nodes[7]
    ghost = NodeInfo((node.node_id + 1) % (1 << 32), NodeAddress(999))
    node.successors._entries = [ghost]
    found = inv.evaluate(snapshot_of(ring), final=True)
    stranded = by_predicate(found, "ring-stranded")
    assert len(stranded) == 1
    assert stranded[0].node_id == node.node_id
    assert stranded[0].severity == "error"
    assert ghost.node_id in stranded[0].entries


def test_stranded_is_transient_on_non_final_samples():
    ring = converged_chord()
    ring.nodes[7].successors._entries = [
        NodeInfo(12345, NodeAddress(999))
    ]
    found = by_predicate(
        inv.evaluate(snapshot_of(ring)), "ring-stranded"
    )
    assert found and found[0].severity == "transient"


def test_chord_finger_before_target_detected():
    # Node 0's finger 10 targets id 1024 but stores id 5 — a stale
    # entry that wrapped back before its target.
    records = [
        NodeRecord(0, (5,), (), ((10, 1024, 5),)),
        NodeRecord(5, (0,), (), ()),
    ]
    snap = RingSnapshot(32, 0.0, records)
    found = by_predicate(inv.check_finger_ranges(snap), "finger-range")
    assert len(found) == 1
    assert found[0].severity == "transient"
    assert "finger 10" in found[0].detail


def test_finger_self_entry_is_hard_error():
    records = [
        NodeRecord(0, (5,), (), ((3, 8, 0),)),
        NodeRecord(5, (0,), (), ()),
    ]
    snap = RingSnapshot(32, 0.0, records)
    found = by_predicate(inv.check_finger_ranges(snap), "finger-range")
    assert len(found) == 1
    assert found[0].severity == "error"
    assert "itself" in found[0].detail


def test_finger_range_skipped_for_verme():
    """Verme's corner rule legalises entries before the displaced
    target; the range predicate must not apply."""
    ring = converged_verme()
    snap = snapshot_of(ring)
    assert snap.layout is not None
    assert inv.check_finger_ranges(snap) == []


def test_ring_split_detected_on_synthetic_snapshot():
    # Two disjoint 2-cycles: 10 <-> 20 and 1000 <-> 2000.
    records = [
        NodeRecord(10, (20,), (), ()),
        NodeRecord(20, (10,), (), ()),
        NodeRecord(1000, (2000,), (), ()),
        NodeRecord(2000, (1000,), (), ()),
    ]
    snap = RingSnapshot(32, 0.0, records)
    found = by_predicate(inv.check_ring(snap, "error"), "ring-split")
    assert len(found) == 1
    assert "2 disjoint successor cycles" in found[0].detail
    assert found[0].entries == (10, 1000)


def test_ring_order_violation_detected_on_synthetic_snapshot():
    # 10 -> 30 -> 20 -> 10 wraps the id space twice.
    records = [
        NodeRecord(10, (30,), (), ()),
        NodeRecord(30, (20,), (), ()),
        NodeRecord(20, (10,), (), ()),
    ]
    snap = RingSnapshot(32, 0.0, records)
    found = by_predicate(inv.check_ring(snap, "error"), "ring-order")
    assert len(found) == 1
    assert "wraps the id space 2 times" in found[0].detail


def test_pred_coherence_violation_detected():
    ring = converged_chord()
    nodes = sorted(ring.nodes, key=lambda n: n.node_id)
    succ = nodes[1]  # nodes[0]'s ring successor
    stranger = nodes[10]
    succ.predecessors._entries = [stranger.info]
    found = by_predicate(
        inv.evaluate(snapshot_of(ring), final=True), "pred-coherence"
    )
    assert any(
        v.node_id == nodes[0].node_id and v.severity == "transient"
        for v in found
    )


# -- conditional containment (sizing assumption) ------------------------------


def test_undersized_verme_ring_reports_conditional_not_error():
    """8-entry lists over ~8-node sections violate the §4.3 sizing rule
    by construction: the spills must be recorded but never hard."""
    ring = build_verme_ring(
        num_nodes=64, num_sections=8, num_successors=8, num_predecessors=8,
        seed=2,
    )
    found = by_predicate(
        inv.evaluate(snapshot_of(ring)), "containment"
    )
    assert found  # the sizing violation is real and visible
    assert all(v.severity == "conditional" for v in found)


# -- audit wrappers (single implementation) -----------------------------------


def test_audit_node_state_enriched_context():
    ring = converged_verme()
    layout = ring.layout
    node = ring.nodes[0]
    foreign = next(
        n for n in ring.nodes
        if layout.same_type(n.node_id, node.node_id)
        and not layout.same_section(n.node_id, node.node_id)
    )
    out = audit_node_state(
        layout, node.node_id, [foreign.node_id], [], []
    )
    assert len(out) == 1
    violation = out[0]
    assert violation.table == "successors"
    assert violation.node_section == layout.section_index(node.node_id)
    assert violation.entry_section == layout.section_index(foreign.node_id)
    assert violation.node_type == layout.type_of(node.node_id)
    assert "section" in str(violation)


def test_containment_violation_backward_compatible_defaults():
    old_style = ContainmentViolation(1, 2, "fingers")
    assert old_style.node_section == -1
    assert "section" not in str(old_style).split("via")[1]


# -- checker ------------------------------------------------------------------


def test_checker_rejects_unknown_mode_and_bad_interval():
    with pytest.raises(ValueError):
        InvariantChecker(mode="paranoid")
    with pytest.raises(ValueError):
        InvariantChecker(interval_s=0.0)


def test_checker_accumulates_and_reports():
    ring = converged_chord()
    ring.nodes[5].successors._entries = list(
        reversed(ring.nodes[5].successors._entries)
    )
    checker = InvariantChecker(mode="strict", seed=42)
    found = checker.check_population(ring.nodes, 7.5, cell="unit")
    assert found and checker.checks == 1
    assert checker.errors
    assert checker.counts()["error"] == len(checker.errors)
    report = checker.report()
    json.dumps(report)  # must be serialisable
    assert report["schema"] == "repro.invariants/1"
    assert report["seed"] == 42
    record = report["violations"][0]
    assert record["cell"] == "unit"
    assert record["time_s"] == 7.5
    with pytest.raises(InvariantViolationError):
        checker.raise_if_errors("unit test")


def test_checker_watch_samples_periodically_edges_and_final():
    from repro.faults import FaultPlan, Partition

    ring = build_chord_ring(num_nodes=16, seed=1)
    population = population_of(ring.nodes)
    plan = FaultPlan().add_partition(
        Partition.of([range(4), range(4, 16)], 10.0, 30.0)
    )
    checker = InvariantChecker()
    checker.watch(
        ring.sim, population, fault_plan=plan, until=100.0, interval_s=20.0,
        cell="watch-test",
    )
    ring.sim.run(until=100.0)
    # 5 periodic (t=20..100) + 2 fault edges (11, 31) + 1 final.
    assert checker.checks == 8
    assert all(v.cell == "watch-test" for v in checker.violations)


def test_note_membership_rate_limited():
    ring = build_chord_ring(num_nodes=8, seed=1)
    population = population_of(ring.nodes)
    checker = InvariantChecker()
    checker.watch(ring.sim, population, until=1000.0, interval_s=100.0)
    checker.note_membership(ring.sim)  # first: samples immediately
    checker.note_membership(ring.sim)  # second: inside the gap, skipped
    assert checker.churn_samples == 1
    assert checker.checks == 1
    foreign_sim_token = object()
    checker.note_membership(foreign_sim_token)  # unknown sim: ignored
    assert checker.checks == 1


def test_churn_driver_triggers_checker_samples():
    ring = build_chord_ring(num_nodes=16, seed=4)
    population = population_of(ring.nodes)
    import random as random_mod

    class Factory:
        def create(self, host_slot, incarnation):  # pragma: no cover
            raise AssertionError("no respawn inside this window")

    driver = ChurnDriver(
        ring.sim, population, Factory(), random_mod.Random(0),
        mean_lifetime_s=40.0, rejoin_delay_s=1e6,
    )
    checker = InvariantChecker()
    OBS.invariants = checker
    try:
        checker.watch(ring.sim, population, until=60.0, interval_s=1000.0)
        driver.start()
        ring.sim.run(until=60.0)
    finally:
        OBS.invariants = None
    assert driver.deaths > 0
    assert checker.churn_samples >= 1


# -- the obs switch -----------------------------------------------------------


def test_obs_invariants_slot_default_off_and_cleared_by_disable():
    assert OBS.invariants is None
    assert not obs_enabled()
    OBS.invariants = InvariantChecker()
    assert obs_enabled()
    obs_disable()
    assert OBS.invariants is None


def _tiny_churn_run():
    ring = build_chord_ring(num_nodes=12, seed=6)
    population = population_of(ring.nodes)
    import random as random_mod

    from repro.experiments.builders import ChordNodeFactory
    from repro.sim import RngRegistry

    factory = ChordNodeFactory(
        ring.sim, ring.network, ring.config, RngRegistry(5)
    )
    driver = ChurnDriver(
        ring.sim, population, factory, random_mod.Random(1),
        mean_lifetime_s=30.0,
    )
    driver.start()
    ring.sim.run(until=120.0)
    assert driver.deaths > 0


def test_disabled_invariants_allocate_nothing():
    """With ``OBS.invariants is None`` the churn/outage hook sites cost
    one attribute load + ``is not None`` — no invariants-package code
    runs and no allocation is attributed to it (same tracemalloc pin as
    the obs instruments)."""
    inv_dir = str(__import__("pathlib").Path(inv.__file__).parent)
    assert OBS.invariants is None
    _tiny_churn_run()  # warm caches outside the audit window
    tracemalloc.start()
    try:
        _tiny_churn_run()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    allocations = [
        trace
        for trace in snapshot.traces
        if any(
            frame.filename.startswith(inv_dir) for frame in trace.traceback
        )
    ]
    assert allocations == []
    assert OBS.invariants is None


# -- population edge cases ----------------------------------------------------


def test_empty_and_singleton_populations_are_clean():
    empty = RingSnapshot.capture([], 0.0)
    assert inv.evaluate(empty, final=True) == []
    ring = build_chord_ring(num_nodes=4, seed=1)
    lone = [ring.nodes[0]]
    snap = RingSnapshot.capture(lone, 0.0)
    # A lone node has successor entries pointing at dead peers; ring
    # checks are skipped below two members.
    assert by_predicate(inv.evaluate(snap, final=True), "ring-split") == []


def test_violation_str_and_record_roundtrip():
    violation = inv.Violation(
        "ring-split", "error", 12.0, 0xAB, "two cycles", entries=(1, 2),
        cell="c", seed=3,
    )
    assert "ring-split" in str(violation)
    record = violation.to_record()
    assert record["node_id"] == "0xab"
    assert record["entries"] == ["0x1", "0x2"]


def test_population_helper_reusable():
    ring = build_chord_ring(num_nodes=4, seed=1)
    population = population_of(ring.nodes)
    assert isinstance(population, Population)
    assert len(population) == 4
