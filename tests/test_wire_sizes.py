"""Wire-size regression tests (hand-computed byte totals).

Declared message sizes feed the bandwidth results (paper Fig. 7)
directly, so a silent size drift — e.g. an optimisation that reuses an
envelope but forgets its certificate bytes — would skew the figures
without failing any behavioural test.  These tests capture every
message on the wire for one recursive Verme lookup and one Fast-VerDi
fetch and check the sizes against totals computed by hand from the
constants in :mod:`repro.net.message`:

* Verme forward request: 52 (header + RPC meta) + 20 (key id)
  + 128 (initiator certificate) = 200 bytes, + 6 (origin address) only
  for transitive lookups;
* Verme lookup result: 52 + 26 per returned entry + 32 sealing
  overhead, relayed unchanged along the reverse path;
* Fast-VerDi fetch request: 52 + 20 (key) + 128 (certificate) = 200;
  fetch reply: 52 + value bytes + 32 sealing overhead.
"""

from repro.chord.rpc import MIN_RPC_BYTES, _Request
from repro.dht import DhtConfig, FastVerDiNode
from repro.net.message import (
    CERT_BYTES,
    ENTRY_BYTES,
    ID_BYTES,
    SEALED_OVERHEAD_BYTES,
)

from conftest import build_verme_ring

FORWARD_BYTES = MIN_RPC_BYTES + ID_BYTES + CERT_BYTES  # 52 + 20 + 128


def capture_sends(network):
    """Record (method, category, size) for every subsequent send.

    ``method`` is the RPC method for requests and ``None`` for replies
    and non-RPC payloads.
    """
    sent = []
    original = network.send

    def recording_send(src, dst, payload, size, category="other", op_tag=None):
        method = payload.method if type(payload) is _Request else None
        sent.append((method, category, size))
        original(src, dst, payload, size, category, op_tag)

    network.send = recording_send
    return sent


def test_wire_constants_add_up():
    # The hand-computed figures the docstring (and the paper's byte
    # tables) quote, kept in sync with the constants.
    assert MIN_RPC_BYTES == 52
    assert FORWARD_BYTES == 200
    assert ENTRY_BYTES == 26


def test_verme_recursive_lookup_wire_bytes():
    ring = build_verme_ring(num_nodes=64, num_sections=8, seed=11)
    sent = capture_sends(ring.network)
    node = ring.nodes[0]
    # A key half the ring away guarantees a multi-hop route.
    key = (node.node_id + (ring.config.space.size // 2)) & ring.config.space.mask
    results = []
    node.lookup(key, on_done=results.append)
    ring.sim.run(until=ring.sim.now + 60)
    (res,) = results
    assert res.success
    assert res.hops >= 1

    lookup_msgs = [(m, s) for m, c, s in sent if c == "lookup"]
    forwards = [s for m, s in lookup_msgs if m == "route_forward"]
    returns = [s for m, s in lookup_msgs if m == "route_result"]
    # Each forward hop is acknowledged with a minimum-size reply (the
    # ack feeds the per-hop failure detector); nothing else rides the
    # lookup category on a healthy static ring.
    acks = [s for m, s in lookup_msgs if m is None]
    assert acks and set(acks) == {MIN_RPC_BYTES}
    assert len(acks) == len(forwards)
    assert len(forwards) + len(returns) + len(acks) == len(lookup_msgs)

    # Recursive lookups carry no origin address: every forward is
    # exactly header + RPC meta + key + certificate.
    assert forwards and set(forwards) == {FORWARD_BYTES}
    # The result is sealed once and relayed unchanged back along the
    # forward path — one return message per forward hop, each carrying
    # all returned entries plus the sealing overhead.
    result_bytes = (
        MIN_RPC_BYTES + len(res.entries) * ENTRY_BYTES + SEALED_OVERHEAD_BYTES
    )
    assert returns and set(returns) == {result_bytes}
    assert len(returns) == len(forwards)

    total = sum(s for _, s in lookup_msgs)
    assert total == len(forwards) * (FORWARD_BYTES + MIN_RPC_BYTES) + len(
        returns
    ) * result_bytes
    assert ring.network.accounting.category_bytes("lookup") == total


def test_fast_verdi_fetch_wire_bytes():
    ring = build_verme_ring(num_nodes=64, num_sections=8, seed=13)
    layers = [FastVerDiNode(n, DhtConfig(num_replicas=4)) for n in ring.nodes]
    for layer in layers:
        layer.start()
    value = b"w" * 1000
    put_results = []
    layers[0].put(value, put_results.append)
    ring.sim.run(until=ring.sim.now + 240)
    (put,) = put_results
    assert put.ok, put.error

    sent = capture_sends(ring.network)
    got_results = []
    layers[-1].get(put.key, got_results.append)
    ring.sim.run(until=ring.sim.now + 240)
    (got,) = got_results
    assert got.ok, got.error
    assert got.value == value

    fetch_requests = [
        (c, s) for m, c, s in sent if m == "dht_fetch"
    ]
    # One replica answers on a healthy ring: exactly one fetch request,
    # on the data category, sized key + certificate.
    assert fetch_requests == [("data", MIN_RPC_BYTES + ID_BYTES + CERT_BYTES)]
    # Exactly one reply carries the sealed value back.
    reply_bytes = MIN_RPC_BYTES + len(value) + SEALED_OVERHEAD_BYTES
    replies = [(m, c, s) for m, c, s in sent if s == reply_bytes]
    assert len(replies) == 1
    assert replies[0][0] is None and replies[0][1] == "data"
