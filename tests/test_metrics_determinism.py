"""Determinism of --metrics collection: serial and multiprocess runs of
the same experiment must produce byte-identical snapshots, and the
runner CLI must wire the whole pipeline together."""

from __future__ import annotations

import json

from repro.experiments.fig8_worm_propagation import Fig8Config
from repro.experiments.parallel import run_fig8_cells
from repro.obs import OBS, collecting
from repro.experiments.runner import main as runner_main
from repro.worm import WormScenarioConfig

SMALL = Fig8Config(
    scenario_config=WormScenarioConfig(num_nodes=400, num_sections=16, seed=5),
    runs=2,
    horizons={s: 60.0 for s in (
        "chord", "verme", "verme-secure", "verme-fast", "verme-compromise"
    )},
)


def _snapshot_bytes(workers: int) -> str:
    with collecting(metrics=True):
        run_fig8_cells(SMALL, workers=workers)
        return OBS.metrics.to_json()


def test_serial_and_parallel_snapshots_byte_identical():
    serial = _snapshot_bytes(workers=1)
    parallel = _snapshot_bytes(workers=2)
    assert serial == parallel
    # And stable across repeated serial runs (same seed, same bytes).
    assert serial == _snapshot_bytes(workers=1)


def test_collection_does_not_change_results():
    plain = run_fig8_cells(SMALL, workers=1)
    with collecting(metrics=True):
        collected = run_fig8_cells(SMALL, workers=1)
    for scenario, results in plain.items():
        got = collected[scenario]
        assert [r.final_infected for r in results] == [
            r.final_infected for r in got
        ]
        assert [r.curve.points for r in results] == [r.curve.points for r in got]


def test_runner_metrics_flag_writes_snapshot(tmp_path, capsys):
    out = tmp_path / "metrics.json"
    assert runner_main(["fig8", "--runs", "1", "--metrics", str(out)]) == 0
    assert "metrics snapshot written" in capsys.readouterr().out
    snap = json.loads(out.read_text())
    assert snap["schema"] == "repro.obs.metrics/1"
    states = {
        name: value
        for name, value in snap["counters"].items()
        if ".states." in name and name.startswith("worm.chord.")
    }
    assert sum(states.values()) == snap["counters"]["worm.chord.s1.population"]
    # The runner restored the disabled default afterwards.
    assert OBS.metrics is None and OBS.trace is None


def test_runner_metrics_csv_variant(tmp_path):
    out = tmp_path / "metrics.csv"
    assert runner_main(["fig8", "--runs", "1", "--metrics", str(out)]) == 0
    lines = out.read_text().splitlines()
    assert lines[0] == "kind,name,field,value"
    assert any(line.startswith("counter,worm.chord.") for line in lines)


def test_runner_metrics_identical_across_workers(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    assert runner_main(["fig8", "--runs", "2", "--metrics", str(a)]) == 0
    assert runner_main(
        ["fig8", "--runs", "2", "--workers", "2", "--metrics", str(b)]
    ) == 0
    assert a.read_bytes() == b.read_bytes()


def test_runner_trace_flag_forces_serial_and_validates(tmp_path, capsys):
    from repro.obs import validate_trace_file

    out = tmp_path / "run.trace.json"
    assert runner_main(
        ["fig8", "--runs", "1", "--workers", "4", "--trace", str(out)]
    ) == 0
    captured = capsys.readouterr()
    assert "forcing --workers 1" in captured.err
    assert validate_trace_file(out) == []
    names = {
        e["name"]
        for e in json.loads(out.read_text())["traceEvents"]
    }
    assert "worm.infection" in names
    assert "sim.run" in names


def test_runner_preset_validation(capsys):
    import pytest

    with pytest.raises(SystemExit):
        runner_main(["resilience", "--preset", "1k"])
    with pytest.raises(SystemExit):
        runner_main(["fig8", "--preset", "999z"])
    with pytest.raises(SystemExit):
        runner_main(["fig8", "--preset", "1k", "--paper-scale"])


def test_runner_fig8_preset_1k_smoke(capsys):
    assert runner_main(["fig8", "--runs", "1", "--preset", "1k"]) == 0
    out = capsys.readouterr().out
    assert " 1000" in out  # population column reflects the preset
