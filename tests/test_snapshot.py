"""Tests for static overlay snapshots, including consistency with the
protocol-built rings (ground truth vs. live state)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.state import NodeInfo
from repro.ids import IdSpace, VermeIdLayout
from repro.net import NodeAddress
from repro.overlay import StaticOverlay, VermeStaticOverlay

from conftest import build_chord_ring, build_verme_ring

SPACE = IdSpace(16)
LAYOUT = VermeIdLayout.for_sections(SPACE, 16)


def make_overlay(ids):
    infos = [NodeInfo(nid, NodeAddress(i)) for i, nid in enumerate(ids)]
    return StaticOverlay(SPACE, infos)


def make_verme_overlay(num_nodes=64, seed=1):
    rng = random.Random(seed)
    used = set()
    infos = []
    for i in range(num_nodes):
        nid = LAYOUT.random_id(rng, i % 2)
        while nid in used:
            nid = LAYOUT.random_id(rng, i % 2)
        used.add(nid)
        infos.append(NodeInfo(nid, NodeAddress(i)))
    return VermeStaticOverlay(LAYOUT, infos)


# -- basic geometry ---------------------------------------------------------------


def test_empty_population_rejected():
    with pytest.raises(ValueError):
        StaticOverlay(SPACE, [])


def test_duplicate_ids_rejected():
    with pytest.raises(ValueError):
        make_overlay([5, 5])


def test_successor_index_wraps():
    ov = make_overlay([10, 20, 30])
    assert ov.at(ov.successor_index(15)).node_id == 20
    assert ov.at(ov.successor_index(20)).node_id == 20  # inclusive
    assert ov.at(ov.successor_index(31)).node_id == 10  # wrap


def test_predecessor_index():
    ov = make_overlay([10, 20, 30])
    assert ov.at(ov.predecessor_index(15)).node_id == 10
    assert ov.at(ov.predecessor_index(10)).node_id == 30  # strict
    assert ov.at(ov.predecessor_index(5)).node_id == 30


def test_index_of_missing_raises():
    ov = make_overlay([10])
    with pytest.raises(KeyError):
        ov.index_of(11)


def test_successor_and_predecessor_lists_exclude_self():
    ov = make_overlay([10, 20, 30])
    succs = ov.successor_list(0, 5)
    assert [e.node_id for e in succs] == [20, 30]
    preds = ov.predecessor_list(0, 5)
    assert [e.node_id for e in preds] == [30, 20]


def test_chord_replica_group_is_owner_plus_successors():
    ov = make_overlay([10, 20, 30, 40])
    group = ov.replica_group(15, 3)
    assert [e.node_id for e in group] == [20, 30, 40]


def test_chord_finger_table_targets_resolved():
    ov = make_overlay(sorted(random.Random(0).sample(range(SPACE.size), 32)))
    idx = 0
    fingers = ov.finger_table(idx)
    node_id = ov.ids[idx]
    for k, info in fingers.items():
        target = SPACE.power_of_two_target(node_id, k)
        assert info.node_id == ov.at(ov.successor_index(target)).node_id


# -- Verme ownership (the §4.4 corner rule) ----------------------------------------------


def test_verme_owner_successor_in_section():
    ov = make_verme_overlay()
    # Pick a key just below an existing node in its section.
    target = ov.infos[5]
    key = target.node_id - 1
    if LAYOUT.same_section(key, target.node_id):
        decision = ov.owner(key)
        assert ov.at(decision.index).node_id == target.node_id
        assert not decision.via_predecessor_rule


def test_verme_owner_tail_gap_goes_to_predecessor():
    ov = make_verme_overlay()
    # Find a section whose last node is not at the section's very end.
    for section in range(LAYOUT.num_sections):
        members = ov.section_members(section)
        if not members:
            continue
        last = members[-1]
        _, end = LAYOUT.section_bounds(section)
        if last.node_id < end:
            key = last.node_id + 1  # in the tail gap
            decision = ov.owner(key)
            assert decision.via_predecessor_rule
            assert ov.at(decision.index).node_id == last.node_id
            return
    pytest.fail("no tail gap found")


def test_verme_owner_empty_section_falls_to_ring_predecessor():
    # Build a tiny population that leaves sections empty.
    infos = [
        NodeInfo(LAYOUT.make_id(1, 0, 5), NodeAddress(0)),
        NodeInfo(LAYOUT.make_id(4, 1, 9), NodeAddress(1)),
    ]
    ov = VermeStaticOverlay(LAYOUT, infos)
    empty_section_key = LAYOUT.make_id(2, 0, 0)
    decision = ov.owner(empty_section_key)
    assert decision.via_predecessor_rule
    assert ov.at(decision.index).node_id == LAYOUT.make_id(1, 0, 5)


def test_verme_replica_group_never_leaves_section():
    ov = make_verme_overlay(num_nodes=128, seed=7)
    rng = random.Random(9)
    for _ in range(50):
        key = rng.getrandbits(SPACE.bits)
        group = ov.replica_group(key, 4)
        assert group
        section = LAYOUT.section_index(key)
        owner_section = LAYOUT.section_index(group[0].node_id)
        if owner_section == section:  # non-degenerate case
            for member in group:
                assert LAYOUT.section_index(member.node_id) == section


def test_verme_replica_group_unique_members():
    ov = make_verme_overlay(num_nodes=128, seed=8)
    rng = random.Random(10)
    for _ in range(30):
        group = ov.replica_group(rng.getrandbits(SPACE.bits), 5)
        ids = [e.node_id for e in group]
        assert len(ids) == len(set(ids))


def test_cross_type_replica_groups_have_opposite_types():
    ov = make_verme_overlay(num_nodes=128, seed=11)
    rng = random.Random(12)
    for _ in range(30):
        key = rng.getrandbits(SPACE.bits)
        g1, g2 = ov.cross_type_replica_groups(key, 3)
        t1 = {LAYOUT.type_of(e.node_id) for e in g1}
        t2 = {LAYOUT.type_of(e.node_id) for e in g2}
        if len(t1) == 1 and len(t2) == 1:
            assert t1 != t2


def test_section_members_sorted_and_complete():
    ov = make_verme_overlay(num_nodes=64, seed=13)
    total = sum(len(ov.section_members(s)) for s in range(LAYOUT.num_sections))
    assert total == len(ov)


# -- consistency between protocol rings and snapshots -----------------------------------


def test_instant_bootstrap_matches_snapshot_chord():
    ring = build_chord_ring(num_nodes=24, seed=17)
    for node in ring.nodes:
        idx = ring.overlay.index_of(node.node_id)
        expected_succs = ring.overlay.successor_list(idx, ring.config.num_successors)
        assert [e.node_id for e in node.successors] == [
            e.node_id for e in expected_succs
        ]
        expected_fingers = ring.overlay.finger_table(idx)
        assert {k: e.node_id for k, e in node.fingers.items()} == {
            k: e.node_id for k, e in expected_fingers.items()
        }


def test_instant_bootstrap_matches_snapshot_verme():
    ring = build_verme_ring(num_nodes=48, num_sections=8, seed=19)
    for node in ring.nodes:
        idx = ring.overlay.index_of(node.node_id)
        expected_preds = ring.overlay.predecessor_list(
            idx, ring.config.num_predecessors
        )
        assert [e.node_id for e in node.predecessors] == [
            e.node_id for e in expected_preds
        ]


def test_protocol_lookup_agrees_with_snapshot_owner_verme():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=23)
    rng = random.Random(29)
    from repro.chord import LookupPurpose, LookupStyle
    from conftest import run_lookup

    for _ in range(20):
        key = rng.getrandbits(32)
        node = rng.choice(ring.nodes)
        expected = ring.overlay.at(ring.overlay.owner(key).index)
        res = run_lookup(
            ring, node, key, style=LookupStyle.RECURSIVE, purpose=LookupPurpose.DHT
        )
        assert res.success
        assert res.entries[0].node_id == expected.node_id


# -- property: ownership is a partition -------------------------------------------------


@settings(max_examples=30)
@given(st.integers(min_value=0, max_value=SPACE.size - 1))
def test_every_key_has_exactly_one_verme_owner(key):
    ov = make_verme_overlay(num_nodes=64, seed=42)
    decision = ov.owner(key)
    assert 0 <= decision.index < len(ov)
