"""Fault-plan and outage-script edge cases.

Covers the corners the main fault tests skip: overlapping outage
windows on one host (merged into one downtime interval), permanent
outages absorbing later windows, zero-duration / inverted fault
windows, and two partitions active at once.
"""

import math

import pytest

from repro.faults import (
    FaultPlan,
    LinkFault,
    Outage,
    OutageScript,
    Partition,
    merge_outage_windows,
)

from test_faults import small_ring


INF = math.inf


# -- merge_outage_windows ----------------------------------------------------


def test_merge_disjoint_windows_preserved():
    windows = merge_outage_windows(
        [Outage(1, 10.0, 5.0), Outage(1, 30.0, 5.0)]
    )
    assert windows == [(1, 10.0, 15.0), (1, 30.0, 35.0)]


def test_merge_overlapping_windows_collapse():
    windows = merge_outage_windows(
        [Outage(1, 10.0, 20.0), Outage(1, 25.0, 20.0)]
    )
    assert windows == [(1, 10.0, 45.0)]


def test_merge_abutting_windows_collapse():
    windows = merge_outage_windows(
        [Outage(1, 10.0, 10.0), Outage(1, 20.0, 10.0)]
    )
    assert windows == [(1, 10.0, 30.0)]


def test_merge_contained_window_absorbed():
    windows = merge_outage_windows(
        [Outage(1, 10.0, 40.0), Outage(1, 20.0, 5.0)]
    )
    assert windows == [(1, 10.0, 50.0)]


def test_merge_infinite_window_absorbs_everything_later():
    windows = merge_outage_windows(
        [Outage(1, 10.0, INF), Outage(1, 50.0, 5.0), Outage(1, 999.0, 1.0)]
    )
    assert windows == [(1, 10.0, INF)]


def test_merge_handles_unsorted_input():
    windows = merge_outage_windows(
        [Outage(1, 25.0, 20.0), Outage(1, 10.0, 20.0)]
    )
    assert windows == [(1, 10.0, 45.0)]


def test_merge_keeps_hosts_independent():
    windows = merge_outage_windows(
        [Outage(1, 10.0, 20.0), Outage(2, 15.0, 20.0)]
    )
    assert windows == [(1, 10.0, 30.0), (2, 15.0, 35.0)]


def test_merge_empty():
    assert merge_outage_windows([]) == []


# -- OutageScript with overlapping windows -----------------------------------


def test_overlapping_outages_crash_once_and_restart_after_merged_end():
    """Regression: before windows were merged, the first window's
    restart fired at t=40 while the second window (30-50) still held
    the host down — the node resurrected mid-outage."""
    ring, rngs = small_ring()
    script = OutageScript(
        ring.sim,
        ring.population,
        ring.factory,
        rngs.stream("outages"),
        [Outage(3, 20.0, 20.0), Outage(3, 30.0, 20.0)],
    )
    script.start()
    assert script.windows == [(3, 20.0, 50.0)]
    ring.sim.run(until=45.0)
    # Inside the merged window — including past the first window's
    # naive restart time — host 3 must still be down.
    assert all(n.address.host_slot != 3 for n in ring.population.nodes)
    assert script.crashes == 1
    assert script.skipped == 0
    ring.sim.run(until=200.0)
    assert script.crashes == 1
    assert script.restarts == 1
    restarted = next(
        n for n in ring.population.nodes if n.address.host_slot == 3
    )
    assert restarted.address.incarnation == 1


def test_permanent_outage_absorbs_later_window():
    ring, rngs = small_ring()
    script = OutageScript(
        ring.sim,
        ring.population,
        ring.factory,
        rngs.stream("outages"),
        [Outage(5, 20.0, INF), Outage(5, 40.0, 10.0)],
    )
    script.start()
    ring.sim.run(until=200.0)
    assert script.crashes == 1
    assert script.restarts == 0
    assert script.skipped == 0
    assert all(n.address.host_slot != 5 for n in ring.population.nodes)


# -- window validation -------------------------------------------------------


def test_zero_and_negative_duration_outages_rejected():
    with pytest.raises(ValueError):
        Outage(0, 10.0, 0.0)
    with pytest.raises(ValueError):
        Outage(0, 10.0, -5.0)


def test_partition_heal_before_start_rejected():
    with pytest.raises(ValueError):
        Partition.of([{0}, {1}], 10.0, 5.0)
    with pytest.raises(ValueError):
        Partition.of([{0}, {1}], 10.0, 10.0)  # zero-duration window


def test_link_fault_zero_or_inverted_window_rejected():
    with pytest.raises(ValueError):
        LinkFault(start_s=5.0, end_s=5.0)
    with pytest.raises(ValueError):
        LinkFault(start_s=5.0, end_s=1.0)


# -- overlapping partitions --------------------------------------------------


def test_two_active_partitions_compose():
    """While both hold, either partition may sever a pair; after the
    first heals, only the second's cuts remain."""
    plan = (
        FaultPlan()
        .add_partition(Partition.of([{0}, {1, 2}], 10.0, 50.0))
        .add_partition(Partition.of([{0, 1}, {2}], 40.0, 80.0))
    )
    # t=45: both active. 0-1 cut by A, 1-2 cut by B, 0-2 cut by both.
    assert not plan.verdict(0, 1, 45.0).deliver
    assert not plan.verdict(1, 2, 45.0).deliver
    assert not plan.verdict(0, 2, 45.0).deliver
    # t=60: only B active. 0-1 flows again, 1-2 still cut.
    assert plan.verdict(0, 1, 60.0).deliver
    assert not plan.verdict(1, 2, 60.0).deliver
    # t=85: all healed.
    assert plan.verdict(1, 2, 85.0).deliver
    assert plan.stats.drops_by_cause["partition"] == 4
