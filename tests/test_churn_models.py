"""Tests for lifetime distributions and scripted churn replay."""

import random

import pytest

from repro.chord import ChurnDriver, ChurnEvent, ScriptedChurn

from conftest import build_chord_ring, population_of


def make_driver(ring, **kwargs):
    class _NullFactory:
        def create(self, host_slot, incarnation):
            raise AssertionError("not needed")

    return ChurnDriver(
        ring.sim, population_of(ring.nodes), _NullFactory(), random.Random(1),
        **kwargs,
    )


def test_exponential_lifetime_mean():
    ring = build_chord_ring(num_nodes=4)
    driver = make_driver(ring, mean_lifetime_s=100.0)
    samples = [driver.sample_lifetime() for _ in range(5000)]
    assert 90 < sum(samples) / len(samples) < 110


def test_pareto_lifetime_mean_and_tail():
    ring = build_chord_ring(num_nodes=4)
    driver = make_driver(
        ring, mean_lifetime_s=100.0, lifetime_distribution="pareto",
        pareto_alpha=1.5,
    )
    samples = [driver.sample_lifetime() for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert 80 < mean < 130  # heavy tail: noisy mean, same target
    x_min = 100.0 * (1.5 - 1.0) / 1.5
    assert min(samples) >= x_min - 1e-9
    # Heavy tail: the Pareto maximum dwarfs an exponential's.
    assert max(samples) > 1000


def test_unknown_distribution_rejected():
    ring = build_chord_ring(num_nodes=4)
    with pytest.raises(ValueError):
        make_driver(ring, mean_lifetime_s=10.0, lifetime_distribution="uniform")


def test_pareto_alpha_validated():
    ring = build_chord_ring(num_nodes=4)
    with pytest.raises(ValueError):
        make_driver(
            ring, mean_lifetime_s=10.0, lifetime_distribution="pareto",
            pareto_alpha=1.0,
        )


def test_churn_event_validation():
    with pytest.raises(ValueError):
        ChurnEvent(1.0, 0, "reboot")


def test_scripted_churn_replays_trace():
    from repro.chord.config import OverlayConfig
    from repro.experiments.builders import build_ring
    from repro.ids import IdSpace
    from repro.net import ConstantLatency, Network
    from repro.sim import RngRegistry, Simulator

    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=16, one_way=0.02))
    ring = build_ring(sim, net, OverlayConfig(space=IdSpace(32), num_successors=4),
                      16, RngRegistry(5))
    trace = [
        ChurnEvent(10.0, 3, "leave"),
        ChurnEvent(20.0, 7, "leave"),
        ChurnEvent(60.0, 3, "join"),
    ]
    scripted = ScriptedChurn(sim, ring.population, ring.factory, random.Random(2), trace)
    scripted.start()
    sim.run(until=15.0)
    assert len(ring.population) == 15
    assert all(n.address.host_slot != 3 for n in ring.population.nodes)
    sim.run(until=50.0)
    assert len(ring.population) == 14
    sim.run(until=300.0)
    assert len(ring.population) == 15  # host 3 rejoined
    rejoined = [n for n in ring.population.nodes if n.address.host_slot == 3]
    assert rejoined and rejoined[0].address.incarnation == 1
    assert scripted.applied == 3
    assert scripted.skipped == 0


def test_scripted_churn_skips_impossible_events():
    from repro.chord.config import OverlayConfig
    from repro.experiments.builders import build_ring
    from repro.ids import IdSpace
    from repro.net import ConstantLatency, Network
    from repro.sim import RngRegistry, Simulator

    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=8, one_way=0.02))
    ring = build_ring(sim, net, OverlayConfig(space=IdSpace(32), num_successors=4),
                      8, RngRegistry(7))
    trace = [
        ChurnEvent(5.0, 2, "join"),   # already present -> skip
        ChurnEvent(10.0, 2, "leave"),
        ChurnEvent(15.0, 2, "leave"),  # already gone -> skip
    ]
    scripted = ScriptedChurn(sim, ring.population, ring.factory, random.Random(3), trace)
    scripted.start()
    sim.run(until=100.0)
    assert scripted.applied == 1
    assert scripted.skipped == 2


def test_churn_trace_sorted_regardless_of_input_order():
    from repro.chord.config import OverlayConfig
    from repro.experiments.builders import build_ring
    from repro.ids import IdSpace
    from repro.net import ConstantLatency, Network
    from repro.sim import RngRegistry, Simulator

    sim = Simulator()
    net = Network(sim, ConstantLatency(num_hosts=8, one_way=0.02))
    ring = build_ring(sim, net, OverlayConfig(space=IdSpace(32), num_successors=4),
                      8, RngRegistry(9))
    trace = [ChurnEvent(50.0, 1, "leave"), ChurnEvent(10.0, 0, "leave")]
    scripted = ScriptedChurn(sim, ring.population, ring.factory, random.Random(4), trace)
    scripted.start()
    sim.run(until=200.0)
    assert scripted.applied == 2
