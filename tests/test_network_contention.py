"""Tests for the serialised-uplink (contended) network option."""

import pytest

from repro.net import ConstantBandwidth, ConstantLatency, Network, NodeAddress
from repro.sim import Simulator


def make(contended):
    sim = Simulator()
    net = Network(
        sim,
        ConstantLatency(num_hosts=4, one_way=0.1),
        bandwidth_model=ConstantBandwidth(bytes_per_second=1000.0),
        contended_uplinks=contended,
    )
    return sim, net


def test_contention_requires_bandwidth_model():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, ConstantLatency(2), contended_uplinks=True)


def test_uncontended_transfers_overlap():
    sim, net = make(contended=False)
    arrivals = []
    net.register(NodeAddress(1), lambda m: arrivals.append(sim.now))
    src = NodeAddress(0)
    for _ in range(3):
        net.send(src, NodeAddress(1), "x", size=1000)  # 1 s serialisation
    sim.run()
    # Independent: all three arrive together at 1.1 s.
    assert arrivals == pytest.approx([1.1, 1.1, 1.1])


def test_contended_transfers_serialize():
    sim, net = make(contended=True)
    arrivals = []
    net.register(NodeAddress(1), lambda m: arrivals.append(sim.now))
    src = NodeAddress(0)
    for _ in range(3):
        net.send(src, NodeAddress(1), "x", size=1000)
    sim.run()
    # Back-to-back departures: 1 s, 2 s, 3 s (+0.1 s propagation).
    assert arrivals == pytest.approx([1.1, 2.1, 3.1])


def test_contention_is_per_sender():
    sim, net = make(contended=True)
    arrivals = []
    net.register(NodeAddress(2), lambda m: arrivals.append(sim.now))
    net.send(NodeAddress(0), NodeAddress(2), "a", size=1000)
    net.send(NodeAddress(1), NodeAddress(2), "b", size=1000)
    sim.run()
    # Different senders do not contend with each other.
    assert arrivals == pytest.approx([1.1, 1.1])


def test_uplink_frees_after_idle():
    sim, net = make(contended=True)
    arrivals = []
    net.register(NodeAddress(1), lambda m: arrivals.append(sim.now))
    src = NodeAddress(0)
    net.send(src, NodeAddress(1), "a", size=1000)
    sim.run()
    assert arrivals == pytest.approx([1.1])
    # Much later, a new transfer starts immediately (no stale backlog).
    net.send(src, NodeAddress(1), "b", size=1000)
    sim.run()
    assert arrivals[1] == pytest.approx(sim.now)
    assert arrivals[1] - arrivals[0] >= 1.0


def test_contended_dht_ops_still_work():
    """End-to-end sanity: the DHT layers function with contention on."""
    import random

    from repro.chord import ChordNode, OverlayConfig, instant_bootstrap
    from repro.dht import DhtConfig, DHashNode
    from repro.ids import IdSpace

    sim = Simulator()
    net = Network(
        sim,
        ConstantLatency(num_hosts=32, one_way=0.02),
        bandwidth_model=ConstantBandwidth(bytes_per_second=200_000.0),
        contended_uplinks=True,
    )
    cfg = OverlayConfig(space=IdSpace(32), num_successors=4)
    rng = random.Random(1)
    nodes = [
        ChordNode(sim, net, cfg, rng.getrandbits(32), NodeAddress(i), random.Random(i))
        for i in range(32)
    ]
    instant_bootstrap(nodes)
    layers = [DHashNode(n, DhtConfig(num_replicas=3)) for n in nodes]
    results = []
    layers[0].put(b"contended" * 100, results.append)
    sim.run(until=60)
    assert results and results[0].ok
    got = []
    layers[-1].get(results[0].key, got.append)
    sim.run(until=120)
    assert got and got[0].ok
