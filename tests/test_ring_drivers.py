"""Unit tests for Population, LookupWorkload and ring construction."""

import random


from repro.analysis import LookupStats
from repro.chord import LookupStyle, LookupWorkload, Population
from repro.chord.ring import make_static_overlay
from repro.overlay import StaticOverlay, VermeStaticOverlay

from conftest import build_chord_ring, build_verme_ring, population_of


def test_population_add_remove_pick():
    ring = build_chord_ring(num_nodes=8)
    pop = population_of(ring.nodes)
    assert len(pop) == 8
    node = ring.nodes[0]
    pop.remove(node)
    assert len(pop) == 7
    pop.remove(node)  # idempotent
    assert len(pop) == 7
    rng = random.Random(0)
    for _ in range(20):
        assert pop.pick(rng) is not node


def test_population_pick_empty_is_none():
    assert Population().pick(random.Random(0)) is None


def test_population_iteration_snapshot():
    ring = build_chord_ring(num_nodes=4)
    pop = population_of(ring.nodes)
    seen = []
    for node in pop:
        seen.append(node)
        pop.remove(node)  # mutation during iteration must be safe
    assert len(seen) == 4
    assert len(pop) == 0


def test_make_static_overlay_dispatches_on_node_type():
    chord = build_chord_ring(num_nodes=8)
    verme = build_verme_ring(num_nodes=16)
    assert type(make_static_overlay(chord.nodes)) is StaticOverlay
    assert isinstance(make_static_overlay(verme.nodes), VermeStaticOverlay)


def test_instant_bootstrap_starts_nodes():
    ring = build_chord_ring(num_nodes=8)
    assert all(n.alive for n in ring.nodes)
    assert all(ring.network.is_registered(n.address) for n in ring.nodes)


def test_workload_issues_lookups_and_records():
    ring = build_chord_ring(num_nodes=24, seed=5)
    pop = population_of(ring.nodes)
    stats = LookupStats()
    wl = LookupWorkload(
        ring.sim, pop, random.Random(1), style=LookupStyle.RECURSIVE,
        mean_interval_s=5.0, stats=stats,
    )
    wl.start()
    ring.sim.run(until=120.0)
    # Aggregate rate = 24/5 per second -> roughly 24/5*120 lookups.
    assert 300 < stats.total < 900
    assert stats.failure_rate < 0.05


def test_workload_stop_halts_issuing():
    ring = build_chord_ring(num_nodes=16, seed=7)
    pop = population_of(ring.nodes)
    stats = LookupStats()
    wl = LookupWorkload(
        ring.sim, pop, random.Random(2), style=LookupStyle.RECURSIVE,
        mean_interval_s=5.0, stats=stats,
    )
    wl.start()
    ring.sim.run(until=60.0)
    count = stats.total
    assert count > 0
    wl.stop()
    ring.sim.run(until=300.0)
    # In-flight lookups may still complete; nothing new is issued.
    assert stats.total <= count + 5


def test_workload_warmup_delays_first_lookup():
    ring = build_chord_ring(num_nodes=16, seed=9)
    pop = population_of(ring.nodes)
    issued_at = []
    stats = LookupStats()
    wl = LookupWorkload(
        ring.sim, pop, random.Random(3), style=LookupStyle.RECURSIVE,
        mean_interval_s=2.0, stats=stats, warmup_s=50.0,
        on_result=lambda res: issued_at.append(ring.sim.now),
    )
    wl.start()
    ring.sim.run(until=120.0)
    assert issued_at
    assert min(issued_at) >= 50.0


def test_workload_on_result_callback():
    ring = build_chord_ring(num_nodes=16, seed=11)
    pop = population_of(ring.nodes)
    results = []
    wl = LookupWorkload(
        ring.sim, pop, random.Random(4), style=LookupStyle.TRANSITIVE,
        mean_interval_s=2.0, on_result=results.append,
    )
    wl.start()
    ring.sim.run(until=60.0)
    assert results
    assert all(r.success for r in results)
