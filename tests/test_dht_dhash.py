"""Integration tests for the DHash baseline DHT over Chord."""

import random


from repro.dht import DhtConfig, DHashNode, block_key



def attach_dhash(ring, num_replicas=4):
    layers = [DHashNode(node, DhtConfig(num_replicas=num_replicas)) for node in ring.nodes]
    for layer in layers:
        layer.start()
    return layers


def do_put(ring, layer, value):
    results = []
    layer.put(value, results.append)
    ring.sim.run(until=ring.sim.now + 120)
    assert results
    return results[0]


def do_get(ring, layer, key):
    results = []
    layer.get(key, results.append)
    ring.sim.run(until=ring.sim.now + 120)
    assert results
    return results[0]


def test_put_get_roundtrip(chord_ring):
    layers = attach_dhash(chord_ring)
    value = b"the quick brown fox" * 10
    put = do_put(chord_ring, layers[0], value)
    assert put.ok
    assert put.key == block_key(chord_ring.config.space, value)
    got = do_get(chord_ring, layers[-1], put.key)
    assert got.ok
    assert got.value == value


def test_get_from_any_client(chord_ring):
    layers = attach_dhash(chord_ring)
    value = b"shared-data"
    put = do_put(chord_ring, layers[3], value)
    rng = random.Random(1)
    for layer in rng.sample(layers, 5):
        got = do_get(chord_ring, layer, put.key)
        assert got.ok and got.value == value


def test_get_missing_key_fails(chord_ring):
    layers = attach_dhash(chord_ring)
    res = do_get(chord_ring, layers[0], 0x12345)
    assert not res.ok
    assert res.error


def test_block_placed_on_key_successors(chord_ring):
    layers = attach_dhash(chord_ring)
    value = b"placement-check"
    put = do_put(chord_ring, layers[0], value)
    chord_ring.sim.run(until=chord_ring.sim.now + 5)  # background pushes
    holders = {
        layer.node.node_id for layer in layers if put.key in layer.store
    }
    expected = {
        e.node_id for e in chord_ring.overlay.replica_group(put.key, 4)
    }
    assert holders == expected


def test_replication_survives_primary_crash(chord_ring):
    layers = attach_dhash(chord_ring)
    value = b"durable-block"
    put = do_put(chord_ring, layers[0], value)
    chord_ring.sim.run(until=chord_ring.sim.now + 5)
    owner = chord_ring.overlay.at(chord_ring.overlay.owner(put.key).index)
    chord_ring.node_for(owner.node_id).crash()
    chord_ring.sim.run(until=chord_ring.sim.now + 120)  # stabilize routing
    live_layers = [l for l in layers if l.node.alive]
    got = do_get(chord_ring, random.Random(2).choice(live_layers), put.key)
    assert got.ok and got.value == value


def test_data_stabilization_heals_new_owner(chord_ring):
    """After the owner crashes, periodic sync pushes the block to the
    node that became responsible."""
    layers = attach_dhash(chord_ring)
    value = b"healing-check"
    put = do_put(chord_ring, layers[0], value)
    chord_ring.sim.run(until=chord_ring.sim.now + 5)
    owner = chord_ring.overlay.at(chord_ring.overlay.owner(put.key).index)
    chord_ring.node_for(owner.node_id).crash()
    # Run long enough for stabilization + data sync rounds.
    chord_ring.sim.run(until=chord_ring.sim.now + 400)
    live = sorted(n.node_id for n in chord_ring.nodes if n.alive)
    import bisect

    new_owner_id = live[bisect.bisect_left(live, put.key) % len(live)]
    new_owner_layer = next(l for l in layers if l.node.node_id == new_owner_id)
    assert put.key in new_owner_layer.store


def test_op_results_carry_latency_and_tags(chord_ring):
    layers = attach_dhash(chord_ring)
    put = do_put(chord_ring, layers[0], b"tagged")
    assert put.latency_s > 0
    assert put.op_tag > 0
    got = do_get(chord_ring, layers[1], put.key)
    assert got.op_tag != put.op_tag
    assert chord_ring.network.accounting.bytes_for_op(got.op_tag) > 0


def test_background_replication_not_tagged(chord_ring):
    layers = attach_dhash(chord_ring)
    put = do_put(chord_ring, layers[0], b"untagged-replication")
    chord_ring.sim.run(until=chord_ring.sim.now + 5)
    acct = chord_ring.network.accounting
    assert acct.category_bytes("replication") > 0
    # The op tag covers only lookup + primary store, far less than
    # total replication traffic would add.
    assert acct.bytes_for_op(put.op_tag) < acct.total_bytes
