"""Unit tests for the synthetic King matrix and GT-ITM topologies."""

import numpy as np
import pytest

from repro.net import (
    GtItmConfig,
    MatrixBandwidth,
    MatrixLatency,
    gtitm_topology,
    king_matrix,
    transfer_delay,
)


# -- latency model basics ---------------------------------------------------------


def test_matrix_latency_validation():
    with pytest.raises(ValueError):
        MatrixLatency(np.zeros((2, 3)))
    with pytest.raises(ValueError):
        MatrixLatency(np.array([[0.0, -1.0], [1.0, 0.0]]))


def test_matrix_bandwidth_validation():
    with pytest.raises(ValueError):
        MatrixBandwidth(np.zeros((2, 2)))


def test_transfer_delay():
    assert transfer_delay(1000, 0.1, None) == pytest.approx(0.1)
    assert transfer_delay(1000, 0.1, 10000.0) == pytest.approx(0.2)


# -- King ----------------------------------------------------------------------------


def test_king_mean_rtt_calibrated():
    model = king_matrix(num_hosts=120, mean_rtt_s=0.198, seed=1)
    assert model.mean_rtt() == pytest.approx(0.198, rel=1e-6)


def test_king_zero_self_latency():
    model = king_matrix(num_hosts=50, seed=2)
    for i in range(50):
        assert model.latency(i, i) == 0.0


def test_king_latencies_positive_between_distinct_hosts():
    model = king_matrix(num_hosts=50, seed=3)
    m = model.matrix
    off_diag = m[~np.eye(50, dtype=bool)]
    assert (off_diag > 0).all()


def test_king_is_asymmetric_like_real_measurements():
    model = king_matrix(num_hosts=30, seed=4)
    m = model.matrix
    assert not np.allclose(m, m.T)


def test_king_deterministic_per_seed():
    a = king_matrix(num_hosts=20, seed=5).matrix
    b = king_matrix(num_hosts=20, seed=5).matrix
    c = king_matrix(num_hosts=20, seed=6).matrix
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_king_rejects_tiny_population():
    with pytest.raises(ValueError):
        king_matrix(num_hosts=1)


# -- GT-ITM ----------------------------------------------------------------------------


@pytest.fixture(scope="module")
def topo():
    return gtitm_topology(GtItmConfig(num_hosts=80, seed=7))


def test_gtitm_matrices_cover_hosts(topo):
    assert topo.latency.num_hosts == 80
    assert topo.bandwidth.num_hosts == 80


def test_gtitm_latency_symmetric_zero_diagonal(topo):
    m = topo.latency.matrix
    assert np.allclose(np.diag(m), 0.0)
    assert np.allclose(m, m.T)


def test_gtitm_connected(topo):
    m = topo.latency.matrix
    off_diag = m[~np.eye(m.shape[0], dtype=bool)]
    assert np.isfinite(off_diag).all()
    assert (off_diag > 0).all()


def test_gtitm_bandwidth_is_min_of_up_and_down(topo):
    for a, b in [(0, 1), (3, 40), (79, 2)]:
        expected = min(topo.host_up_bw[a], topo.host_down_bw[b])
        assert topo.bandwidth.bandwidth(a, b) == pytest.approx(expected)


def test_gtitm_bandwidth_asymmetric_links_exist(topo):
    bw = np.array(
        [[topo.bandwidth.bandwidth(a, b) for b in range(10)] for a in range(10)]
    )
    assert not np.allclose(bw, bw.T)


def test_gtitm_hosts_attach_to_stub_routers(topo):
    for router in topo.host_router:
        assert router[0] == "s"


def test_gtitm_router_count_matches_config(topo):
    cfg = topo.config
    transit = cfg.transit_domains * cfg.transit_nodes_per_domain
    assert len(topo.router_graph) == transit + cfg.num_stub_routers()


def test_gtitm_deterministic_per_seed():
    a = gtitm_topology(GtItmConfig(num_hosts=40, seed=9))
    b = gtitm_topology(GtItmConfig(num_hosts=40, seed=9))
    assert np.array_equal(a.latency.matrix, b.latency.matrix)
    assert np.array_equal(
        a._host_bandwidth_matrix(), b._host_bandwidth_matrix()
    )


def test_gtitm_intrastub_cheaper_than_interdomain(topo):
    """Two hosts on the same stub should be closer than hosts in
    different transit domains (the transit-stub hierarchy is real)."""
    same_stub = []
    cross_domain = []
    hosts = range(topo.latency.num_hosts)
    for a in hosts:
        for b in hosts:
            if a >= b:
                continue
            ra, rb = topo.host_router[a], topo.host_router[b]
            if ra[:4] == rb[:4]:  # same stub domain prefix ("s", d, i, s)
                same_stub.append(topo.latency.latency(a, b))
            elif ra[1] != rb[1]:  # different transit domain
                cross_domain.append(topo.latency.latency(a, b))
    assert same_stub and cross_domain
    assert np.mean(same_stub) < np.mean(cross_domain)
