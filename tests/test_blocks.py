"""Unit tests for self-verifying blocks and the block store."""

import pytest

from repro.dht import BlockStore, IntegrityError, block_key, verify_block
from repro.ids import IdSpace

SPACE = IdSpace(32)


def test_key_is_content_hash():
    assert block_key(SPACE, b"v") == block_key(SPACE, b"v")
    assert block_key(SPACE, b"v") != block_key(SPACE, b"w")


def test_verify_block_accepts_matching():
    value = b"hello"
    verify_block(SPACE, block_key(SPACE, value), value)


def test_verify_block_rejects_mismatch():
    with pytest.raises(IntegrityError):
        verify_block(SPACE, block_key(SPACE, b"a"), b"b")


def test_store_put_get_roundtrip():
    store = BlockStore(SPACE)
    value = b"data"
    key = block_key(SPACE, value)
    store.put(key, value)
    assert store.get(key) == value
    assert key in store
    assert len(store) == 1


def test_store_rejects_forged_key():
    store = BlockStore(SPACE)
    with pytest.raises(IntegrityError):
        store.put(123, b"not the preimage")
    assert len(store) == 0


def test_store_unverified_put_allowed_when_asked():
    store = BlockStore(SPACE)
    store.put(123, b"x", verify=False)
    assert store.get(123) == b"x"


def test_store_missing():
    store = BlockStore(SPACE)
    k1 = block_key(SPACE, b"one")
    store.put(k1, b"one")
    assert store.missing([k1, 42, 43]) == [42, 43]


def test_store_delete_and_total_bytes():
    store = BlockStore(SPACE)
    k = block_key(SPACE, b"abcd")
    store.put(k, b"abcd")
    assert store.total_bytes == 4
    store.delete(k)
    assert store.get(k) is None
    assert store.total_bytes == 0
    store.delete(k)  # idempotent


def test_store_keys_listing():
    store = BlockStore(SPACE)
    values = [b"a", b"b", b"c"]
    keys = {block_key(SPACE, v) for v in values}
    for v in values:
        store.put(block_key(SPACE, v), v)
    assert set(store.keys()) == keys
