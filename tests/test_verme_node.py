"""Behavioural tests for the Verme protocol node (paper §4)."""

import random

import pytest

from repro.chord import LookupPurpose, LookupStyle
from repro.crypto import CertificateAuthority, SealedPayload
from repro.ids import NodeType
from repro.net import NodeAddress
from repro.verme import VermeNode, verme_finger_target

from conftest import build_verme_ring, run_lookup


def test_node_type_derived_from_certificate(verme_ring):
    for node in verme_ring.nodes:
        assert node.node_type is node.cert.claimed_type
        assert verme_ring.layout.type_of(node.node_id) == int(node.node_type)


def test_certificate_id_type_mismatch_rejected(verme_ring):
    ring = verme_ring
    ca = ring.ca
    # An id whose middle bits say type A, but a certificate claiming B.
    bad_id = ring.layout.random_id(random.Random(77), NodeType.A)
    cert, keys = ca.issue(bad_id, NodeType.B)
    with pytest.raises(ValueError):
        VermeNode(
            ring.sim, ring.network, ring.config, ring.layout,
            cert, keys, ca, NodeAddress(ring.nodes[-1].address.host_slot + 1),
        )


def test_only_recursive_lookups_allowed(verme_ring):
    node = verme_ring.nodes[0]
    for style in (LookupStyle.ITERATIVE, LookupStyle.TRANSITIVE):
        with pytest.raises(ValueError):
            node.lookup(1, on_done=lambda r: None, style=style)


def test_route_step_refused_server_side(verme_ring):
    """A crawler cannot drive iterative steps against Verme nodes."""
    a, b = verme_ring.nodes[0], verme_ring.nodes[1]
    errors = []
    a.rpc.call(
        b.address,
        "route_step",
        {"key": 1, "purpose": LookupPurpose.DHT},
        on_error=errors.append,
    )
    verme_ring.sim.run(until=verme_ring.sim.now + 10)
    assert errors and "iterative" in errors[0]


def test_finger_targets_use_verme_rule(verme_ring):
    node = verme_ring.nodes[0]
    for k in (1, 10, 20, 31):
        assert node.finger_target(k) == verme_finger_target(
            verme_ring.layout, node.node_id, k
        )


def test_all_fingers_opposite_type_or_same_section(verme_ring):
    layout = verme_ring.layout
    for node in verme_ring.nodes:
        for _k, entry in node.fingers.items():
            same_type = layout.same_type(entry.node_id, node.node_id)
            same_section = layout.same_section(entry.node_id, node.node_id)
            assert same_section or not same_type


def test_predecessor_list_maintained(verme_ring):
    for node in verme_ring.nodes:
        assert len(node.predecessors) == min(
            verme_ring.config.num_predecessors, len(verme_ring.nodes) - 1
        )


def test_lookup_reply_is_sealed_for_initiator():
    """Intermediate nodes must not be able to read returned addresses."""
    ring = build_verme_ring(num_nodes=64, seed=31)
    node = ring.nodes[0]
    captured = []
    # Wiretap: capture every route_result payload crossing the network.
    original_send = ring.network.send

    def tap(src, dst, payload, size, category="other", op_tag=None):
        from repro.chord.rpc import _Request

        if isinstance(payload, _Request) and payload.method == "route_result":
            captured.append(payload.params["payload"])
        original_send(src, dst, payload, size, category=category, op_tag=op_tag)

    ring.network.send = tap
    res = run_lookup(ring, node, 0x1234567, purpose=LookupPurpose.DHT)
    assert res.success
    sealed = [p for p in captured if p is not None]
    assert sealed, "no result payloads captured"
    for payload in sealed:
        assert isinstance(payload, SealedPayload)
        # A foreign key cannot open it.
        other = ring.nodes[1]
        if other.keys.public != payload.recipient_public_key:
            with pytest.raises(PermissionError):
                payload.open(other.keys)


def test_join_lookup_verified_against_certificate():
    """A node cannot use a JOIN lookup to probe a foreign id (§4.5)."""
    ring = build_verme_ring(num_nodes=48, seed=37)
    node = ring.nodes[0]
    foreign_key = ring.nodes[10].node_id + 1
    results = []
    node.lookup(
        foreign_key,
        on_done=results.append,
        style=LookupStyle.RECURSIVE,
        purpose=LookupPurpose.JOIN,
    )
    ring.sim.run(until=120)
    assert results
    assert not results[0].success


def test_finger_lookup_for_non_target_rejected():
    ring = build_verme_ring(num_nodes=48, seed=41)
    node = ring.nodes[0]
    bogus = ring.layout.advance_sections(node.node_id, 2)  # same type, far
    # Ensure it is not accidentally a real finger target.
    legit = {node.finger_target(k) for k in range(ring.config.space.bits)}
    if bogus in legit:
        bogus = ring.config.space.wrap(bogus + 3)
    results = []
    node.lookup(
        bogus,
        on_done=results.append,
        style=LookupStyle.RECURSIVE,
        purpose=LookupPurpose.FINGER,
    )
    ring.sim.run(until=120)
    assert results
    assert not results[0].success


def test_finger_lookup_for_real_target_accepted():
    ring = build_verme_ring(num_nodes=48, seed=43)
    node = ring.nodes[0]
    ks = [k for k in range(ring.config.space.bits) if (1 << k) > 2**20]
    target = node.finger_target(ks[len(ks) // 2])
    results = []
    node.lookup(
        target,
        on_done=results.append,
        style=LookupStyle.RECURSIVE,
        purpose=LookupPurpose.FINGER,
    )
    ring.sim.run(until=120)
    assert results
    assert results[0].success


def test_dht_lookup_entries_stay_in_key_section():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=47)
    rng = random.Random(53)
    for _ in range(15):
        key = rng.getrandbits(32)
        node = rng.choice(ring.nodes)
        res = run_lookup(ring, node, key, purpose=LookupPurpose.DHT)
        assert res.success
        section = ring.layout.section_index(key)
        owner_section = ring.layout.section_index(res.entries[0].node_id)
        if owner_section == section:
            for entry in res.entries:
                assert ring.layout.section_index(entry.node_id) == section


def test_join_protocol_verme():
    ring = build_verme_ring(num_nodes=48, seed=59)
    node_type = NodeType.A
    nid = ring.layout.random_id(random.Random(61), node_type)
    while any(n.node_id == nid for n in ring.nodes):
        nid = ring.layout.random_id(random.Random(62), node_type)
    cert, keys = ring.ca.issue(nid, node_type)
    newcomer = VermeNode(
        ring.sim, ring.network, ring.config, ring.layout, cert, keys, ring.ca,
        NodeAddress(len(ring.nodes) + 1), random.Random(63),
    )
    outcome = []
    newcomer.join(ring.nodes[5].address, on_done=outcome.append)
    ring.sim.run(until=300)
    assert outcome == [True]
    live = sorted([n.node_id for n in ring.nodes] + [nid])
    import bisect

    idx = bisect.bisect_right(live, nid) % len(live)
    assert newcomer.successors.first.node_id == live[idx]


def test_unverifiable_certificate_rejected_at_responsible():
    ring = build_verme_ring(num_nodes=48, seed=67)
    rogue_ca = CertificateAuthority(issuer_id=99)
    node = ring.nodes[0]
    fake_cert, fake_keys = rogue_ca.issue(node.node_id, node.node_type)
    node.cert = fake_cert
    node.keys = fake_keys
    results = []
    node.lookup(0x333333, on_done=results.append, purpose=LookupPurpose.DHT)
    ring.sim.run(until=120)
    assert results and not results[0].success
