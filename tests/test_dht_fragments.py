"""Tests for the erasure-coded fragment extension (§5.1's skipped
optimization)."""

import random

import pytest

from repro.dht import DhtConfig
from repro.dht.fragments import (
    FragmentConfig,
    FragmentedDHashNode,
    ReassemblyError,
    fragment_value,
    reassemble,
)

from conftest import build_chord_ring


def attach(ring, total=6, required=3):
    layers = [
        FragmentedDHashNode(
            node,
            DhtConfig(num_replicas=max(total, 6)),
            FragmentConfig(total=total, required=required),
        )
        for node in ring.nodes
    ]
    return layers


def do_op(ring, fn, *args):
    results = []
    fn(*args, results.append)
    ring.sim.run(until=ring.sim.now + 120)
    assert results
    return results[0]


# -- coding primitives ---------------------------------------------------------


def test_fragment_config_validation():
    with pytest.raises(ValueError):
        FragmentConfig(total=3, required=4)
    with pytest.raises(ValueError):
        FragmentConfig(total=3, required=0)


def test_fragment_sizes():
    cfg = FragmentConfig(total=6, required=3)
    frags = fragment_value(1, b"x" * 999, cfg)
    assert len(frags) == 6
    assert all(f.size == 333 + 16 for f in frags)


def test_reassemble_needs_required_distinct():
    cfg = FragmentConfig(total=6, required=3)
    frags = fragment_value(1, b"data", cfg)
    assert reassemble(frags[:3]) == b"data"
    assert reassemble(frags[2:5]) == b"data"
    with pytest.raises(ReassemblyError):
        reassemble(frags[:2])
    with pytest.raises(ReassemblyError):
        reassemble([frags[0], frags[0], frags[0]])  # duplicates don't count


def test_reassemble_rejects_mixed_blocks():
    cfg = FragmentConfig(total=4, required=2)
    a = fragment_value(1, b"a", cfg)
    b = fragment_value(2, b"b", cfg)
    with pytest.raises(ReassemblyError):
        reassemble([a[0], b[1]])


def test_reassemble_empty():
    with pytest.raises(ReassemblyError):
        reassemble([])


# -- the DHT layer ----------------------------------------------------------------


def test_put_get_roundtrip_fragmented():
    ring = build_chord_ring(num_nodes=48, seed=201, num_successors=8)
    layers = attach(ring)
    value = b"fragmented block" * 64
    put = do_op(ring, layers[0].put, value)
    assert put.ok, put.error
    got = do_op(ring, layers[-1].get, put.key)
    assert got.ok, got.error
    assert got.value == value


def test_fragments_spread_over_distinct_nodes():
    ring = build_chord_ring(num_nodes=48, seed=203, num_successors=8)
    layers = attach(ring)
    put = do_op(ring, layers[0].put, b"spread me" * 40)
    assert put.ok
    holders = [
        l.node.node_id
        for l in layers
        if any(k == put.key for (k, _i) in l.fragment_store)
    ]
    assert len(holders) == 6
    expected = {e.node_id for e in ring.overlay.replica_group(put.key, 6)}
    assert set(holders) == expected


def test_get_survives_losing_up_to_n_minus_k_fragments():
    ring = build_chord_ring(num_nodes=48, seed=207, num_successors=8)
    layers = attach(ring, total=6, required=3)
    value = b"lossy" * 100
    put = do_op(ring, layers[0].put, value)
    holders = [
        l for l in layers if any(k == put.key for (k, _i) in l.fragment_store)
    ]
    for holder in holders[:3]:  # kill n - k = 3 fragment holders
        holder.node.crash()
    reader = next(l for l in layers if l.node.alive)
    got = do_op(ring, reader.get, put.key)
    assert got.ok, got.error
    assert got.value == value


def test_get_fails_cleanly_below_threshold():
    ring = build_chord_ring(num_nodes=48, seed=209, num_successors=8)
    layers = attach(ring, total=6, required=3)
    put = do_op(ring, layers[0].put, b"too-lossy" * 50)
    holders = [
        l for l in layers if any(k == put.key for (k, _i) in l.fragment_store)
    ]
    for holder in holders[:4]:  # only 2 left < required 3
        holder.node.crash()
    reader = next(l for l in layers if l.node.alive)
    got = do_op(ring, reader.get, put.key)
    assert not got.ok
    assert got.error


def test_fragmented_get_uses_less_bandwidth_than_replicated():
    """The point of the optimization: ~len/k per fetched fragment."""

    ring = build_chord_ring(num_nodes=48, seed=211, num_successors=8)
    frag_layers = attach(ring, total=6, required=3)
    value = bytes(random.Random(1).randbytes(6000))
    put = do_op(ring, frag_layers[0].put, value)
    acct = ring.network.accounting
    got = do_op(ring, frag_layers[-1].get, put.key)
    frag_bytes = acct.bytes_for_op(got.op_tag)
    # 3 fragments of ~2 KiB rather than one 6 KiB block + per-replica
    # request overhead; the win shows up against the full value.
    assert got.ok
    assert frag_bytes < 1.5 * len(value)


def test_fragment_count_capped_by_replicas():
    ring = build_chord_ring(num_nodes=16, seed=213)
    with pytest.raises(ValueError):
        FragmentedDHashNode(
            ring.nodes[0], DhtConfig(num_replicas=4), FragmentConfig(total=6, required=3)
        )
