"""Tests for the ablation drivers, the load analysis and the audit."""

import random

import pytest

from repro.analysis.load import sample_ownership
from repro.chord.state import NodeInfo
from repro.experiments.ablations import (
    run_load_comparison,
    run_multitype_containment,
    run_naive_finger_ablation,
    run_replication_availability,
)
from repro.ids import IdSpace, VermeIdLayout
from repro.net import NodeAddress
from repro.overlay import NaiveFingerVermeOverlay, StaticOverlay
from repro.verme import (
    audit_node_state,
    audit_overlay,
    max_safe_neighbor_list,
    min_safe_sections,
)
from repro.worm import WormScenarioConfig

from conftest import build_verme_ring

CFG = WormScenarioConfig(num_nodes=1200, num_sections=64, seed=11)


def test_naive_fingers_break_containment():
    res = run_naive_finger_ablation(CFG, until=150.0)
    assert res.infected_with_displacement < 0.1 * res.vulnerable
    assert res.infected_naive_fingers > 0.8 * res.vulnerable


def test_naive_overlay_finger_targets_are_plain_chord():
    space = IdSpace(32)
    layout = VermeIdLayout.for_sections(space, 16)
    rng = random.Random(1)
    used = set()
    infos = []
    for i in range(64):
        nid = layout.random_id(rng, i % 2)
        while nid in used:
            nid = layout.random_id(rng, i % 2)
        used.add(nid)
        infos.append(NodeInfo(nid, NodeAddress(i)))
    naive = NaiveFingerVermeOverlay(layout, infos)
    node_id = naive.ids[0]
    assert naive.finger_target(node_id, 5) == space.power_of_two_target(node_id, 5)


def test_two_section_replication_survives_outbreak():
    res = run_replication_availability(CFG, per_group=3, samples=500)
    assert res.survivors_two_sections > 0.99
    assert res.survivors_single_section < 0.7


def test_load_comparison_sane():
    res = run_load_comparison(num_nodes=600, num_sections=32, samples=10_000)
    assert 0.0 < res.chord.gini < 0.8
    assert 0.0 < res.verme.gini < 0.8
    assert 0.0 < res.verme.predecessor_rule_fraction < 0.5
    assert res.chord.predecessor_rule_fraction == 0.0
    assert res.chord.samples == res.verme.samples == 10_000


def test_load_report_shares_sum_to_one():
    space = IdSpace(24)
    rng = random.Random(2)
    ids = sorted(rng.sample(range(space.size), 50))
    overlay = StaticOverlay(space, [NodeInfo(i, NodeAddress(n)) for n, i in enumerate(ids)])
    report = sample_ownership(overlay, 5000, random.Random(3))
    assert report.num_nodes == 50
    assert report.mean_share == pytest.approx(1 / 50)
    assert report.max_share <= 1.0
    assert report.top_decile_share <= 1.0


@pytest.mark.parametrize("type_bits", [1, 2, 3])
def test_multitype_containment(type_bits):
    res = run_multitype_containment(
        num_nodes=1024, num_sections=128, type_bits=type_bits, until=150.0
    )
    assert res.num_types == 2**type_bits
    assert res.containment_fraction < 0.15


def test_multitype_vulnerable_population_shrinks():
    r2 = run_multitype_containment(num_nodes=1024, num_sections=128, type_bits=1, until=10.0)
    r4 = run_multitype_containment(num_nodes=1024, num_sections=128, type_bits=2, until=10.0)
    assert r4.vulnerable < r2.vulnerable


# -- audit helpers ----------------------------------------------------------------------


def test_audit_clean_on_well_sized_ring():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=3)
    assert audit_overlay(ring.nodes) == []


def test_audit_detects_undersized_sections():
    # 64 nodes, 16 sections -> ~4 per section, lists of 6 must spill.
    ring = build_verme_ring(
        num_nodes=64, num_sections=16, seed=5, num_successors=6, num_predecessors=6
    )
    violations = audit_overlay(ring.nodes)
    assert violations, "undersized sections must be flagged"
    v = violations[0]
    assert "same type" in str(v)


def test_audit_node_state_tables_attributed():
    space = IdSpace(16)
    layout = VermeIdLayout(space, section_bits=5)
    node = layout.make_id(0, 0, 1)
    foreign_same_type = layout.make_id(1, 0, 1)  # same type, other section
    out = audit_node_state(layout, node, [foreign_same_type], [], [])
    assert len(out) == 1
    assert out[0].table == "successors"
    # Opposite type never violates.
    opposite = layout.make_id(0, 1, 1)
    assert audit_node_state(layout, node, [opposite], [], []) == []
    # Same section never violates.
    sibling = layout.make_id(0, 0, 2)
    assert audit_node_state(layout, node, [sibling], [], []) == []


def test_sizing_helpers():
    assert max_safe_neighbor_list(2400, 128) == 9  # 18.75 avg per section
    assert min_safe_sections(2400, 6) >= 64
    # Round-trips: a list sized by the helper passes its own rule.
    sections = min_safe_sections(2400, 6)
    assert max_safe_neighbor_list(2400, sections) >= 6
    with pytest.raises(ValueError):
        max_safe_neighbor_list(0, 16)
    with pytest.raises(ValueError):
        min_safe_sections(100, 0)
