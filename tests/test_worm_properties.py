"""Property-based tests of the worm engine's invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.worm import WormParams, WormSimulation, WormState


class GraphKnowledge:
    def __init__(self, graph):
        self.graph = graph

    def targets_of(self, index):
        return list(self.graph.get(index, []))


@st.composite
def random_worm_setup(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = {
        i: rng.sample(range(n), k=min(n, rng.randint(0, 5)))
        for i in range(n)
    }
    vulnerable = [rng.random() < 0.7 for i in range(n)]
    start = draw(st.integers(min_value=0, max_value=n - 1))
    return n, graph, vulnerable, start


@settings(max_examples=60, deadline=None)
@given(random_worm_setup())
def test_curve_is_monotone_and_bounded(setup):
    n, graph, vulnerable, start = setup
    sim = Simulator()
    worm = WormSimulation(sim, n, vulnerable, GraphKnowledge(graph))
    worm.seed(start)
    worm.run(until=10_000.0)
    counts = [c for _t, c in worm.curve.points]
    times = [t for t, _c in worm.curve.points]
    assert counts == sorted(counts)
    assert times == sorted(times)
    assert counts[0] == 1  # the seed
    # Upper bound: vulnerable nodes plus the (possibly invulnerable) seed.
    assert worm.infected_count <= sum(vulnerable) + 1


@settings(max_examples=60, deadline=None)
@given(random_worm_setup())
def test_only_reachable_vulnerable_nodes_infected(setup):
    n, graph, vulnerable, start = setup
    sim = Simulator()
    worm = WormSimulation(sim, n, vulnerable, GraphKnowledge(graph))
    worm.seed(start)
    worm.run(until=10_000.0)
    # BFS over vulnerable-reachable set (the seed spreads regardless of
    # its own vulnerability because the worm was implanted there).
    reachable = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nxt in graph.get(node, []):
            if nxt not in reachable and vulnerable[nxt]:
                reachable.add(nxt)
                frontier.append(nxt)
    infected = {i for i in range(n) if worm.state[i] is not WormState.NOT_INFECTED}
    assert infected == reachable


@settings(max_examples=40, deadline=None)
@given(random_worm_setup(), st.integers(min_value=1, max_value=3))
def test_simulation_quiesces(setup, _fuzz):
    """With finite knowledge the event queue must drain: no livelock."""
    n, graph, vulnerable, start = setup
    sim = Simulator()
    worm = WormSimulation(sim, n, vulnerable, GraphKnowledge(graph))
    worm.seed(start)
    worm.run()  # no time bound: must terminate on its own
    assert sim.pending_events == 0


@settings(max_examples=30, deadline=None)
@given(random_worm_setup())
def test_faster_scan_rate_never_slower(setup):
    n, graph, vulnerable, start = setup
    results = []
    for rate in (10.0, 1000.0):
        sim = Simulator()
        worm = WormSimulation(
            sim, n, vulnerable, GraphKnowledge(graph),
            WormParams(scan_rate_per_s=rate),
        )
        worm.seed(start)
        worm.run(until=100_000.0)
        results.append(worm.curve.final_time)
    slow_finish, fast_finish = results
    assert fast_finish <= slow_finish + 1e-6
