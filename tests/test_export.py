"""Tests for CSV export of figure data."""

import csv

import pytest

from repro.analysis.export import write_rows_csv, write_series_csv
from repro.experiments.records import Fig8Row


def test_write_rows_csv(tmp_path):
    rows = [
        Fig8Row("chord", 100, 50, 50, 1.0, 2.0, 3.0),
        Fig8Row("verme", 100, 50, 5, None, None, None),
    ]
    path = write_rows_csv(tmp_path / "fig8.csv", rows)
    with path.open() as fh:
        data = list(csv.DictReader(fh))
    assert len(data) == 2
    assert data[0]["scenario"] == "chord"
    assert data[1]["time_to_50pct_s"] == ""


def test_write_rows_csv_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        write_rows_csv(tmp_path / "x.csv", [])


def test_write_rows_csv_rejects_non_dataclass(tmp_path):
    with pytest.raises(TypeError):
        write_rows_csv(tmp_path / "x.csv", [{"a": 1}])


def test_write_series_csv(tmp_path):
    series = {
        "chord": [(0.1, 1.0), (1.0, 50.0)],
        "verme": [(0.1, 1.0), (1.0, 5.0)],
    }
    path = write_series_csv(tmp_path / "curves.csv", series)
    with path.open() as fh:
        data = list(csv.reader(fh))
    assert data[0] == ["time_s", "chord", "verme"]
    assert data[1] == ["0.1", "1.0", "1.0"]
    assert data[2] == ["1.0", "50.0", "5.0"]


def test_write_series_csv_mismatched_grid(tmp_path):
    series = {"a": [(0.1, 1.0)], "b": [(0.2, 1.0)]}
    with pytest.raises(ValueError):
        write_series_csv(tmp_path / "bad.csv", series)


def test_write_series_csv_empty(tmp_path):
    with pytest.raises(ValueError):
        write_series_csv(tmp_path / "x.csv", {})


def test_fig8_series_roundtrip(tmp_path):
    """End-to-end: run a tiny fig8, export, reload."""
    from repro.experiments import Fig8Config, averaged_curve_series
    from repro.worm import WormScenarioConfig

    cfg = Fig8Config(
        scenario_config=WormScenarioConfig(num_nodes=300, num_sections=16, seed=2),
        runs=1,
        horizons={"chord": 60.0, "verme": 60.0},
    )
    series = averaged_curve_series(cfg, scenarios=("chord", "verme"), grid_points=10)
    path = write_series_csv(tmp_path / "fig8_series.csv", series)
    with path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["time_s", "chord", "verme"]
    assert len(rows) == 11
    final_chord = float(rows[-1][1])
    final_verme = float(rows[-1][2])
    assert final_chord > final_verme
