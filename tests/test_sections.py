"""Unit and property tests for the Verme id layout (paper §4.3)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ids import IdSpace, NodeType, VermeIdLayout

SPACE = IdSpace(16)
LAYOUT = VermeIdLayout(SPACE, section_bits=5, type_bits=1)  # 2048 sections... no:
# 16 - 1 - 5 = 10 high bits -> 2^11 = 2048 sections of length 32.

ids = st.integers(min_value=0, max_value=SPACE.size - 1)


def test_geometry():
    assert LAYOUT.section_length == 32
    assert LAYOUT.num_types == 2
    assert LAYOUT.num_sections == 2048
    assert LAYOUT.sections_per_type == 1024
    assert LAYOUT.high_bits == 10


def test_for_sections_constructor():
    layout = VermeIdLayout.for_sections(SPACE, 128)
    assert layout.num_sections == 128
    assert layout.section_length == SPACE.size // 128


def test_for_sections_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        VermeIdLayout.for_sections(SPACE, 100)


def test_layout_validation():
    with pytest.raises(ValueError):
        VermeIdLayout(SPACE, section_bits=0)
    with pytest.raises(ValueError):
        VermeIdLayout(SPACE, section_bits=16)
    with pytest.raises(ValueError):
        VermeIdLayout(SPACE, section_bits=5, type_bits=0)


def test_make_id_field_placement():
    ident = LAYOUT.make_id(high=1, node_type=1, low=3)
    assert ident == (1 << 6) | (1 << 5) | 3


def test_make_id_range_checks():
    with pytest.raises(ValueError):
        LAYOUT.make_id(1 << 10, 0, 0)
    with pytest.raises(ValueError):
        LAYOUT.make_id(0, 2, 0)
    with pytest.raises(ValueError):
        LAYOUT.make_id(0, 0, 32)


def test_adjacent_sections_have_different_types():
    for idx in range(LAYOUT.num_sections - 1):
        assert LAYOUT.type_of_section(idx) != LAYOUT.type_of_section(idx + 1)


def test_two_type_sections_strictly_alternate():
    types = [LAYOUT.type_of_section(i) for i in range(8)]
    assert types == [0, 1, 0, 1, 0, 1, 0, 1]


def test_section_bounds_cover_ring_exactly():
    covered = 0
    for idx in range(LAYOUT.num_sections):
        start, end = LAYOUT.section_bounds(idx)
        covered += end - start + 1
    assert covered == SPACE.size


def test_sections_of_type_counts():
    type_a = list(LAYOUT.sections_of_type(0))
    type_b = list(LAYOUT.sections_of_type(1))
    assert len(type_a) == len(type_b) == LAYOUT.sections_per_type
    assert set(type_a).isdisjoint(type_b)
    assert all(LAYOUT.type_of_section(s) == 0 for s in type_a)


def test_opposite_type_position_keeps_offset():
    ident = LAYOUT.make_id(5, 0, 17)
    moved = LAYOUT.opposite_type_position(ident)
    assert LAYOUT.offset_in_section(moved) == 17
    assert LAYOUT.type_of(moved) != LAYOUT.type_of(ident)


def test_advance_sections_wraps():
    last_section_id = LAYOUT.make_id((1 << 10) - 1, 1, 0)
    wrapped = LAYOUT.advance_sections(last_section_id, 1)
    assert LAYOUT.section_index(wrapped) == 0


def test_random_id_encodes_requested_type():
    rng = random.Random(0)
    for node_type in (NodeType.A, NodeType.B):
        for _ in range(50):
            ident = LAYOUT.random_id(rng, int(node_type))
            assert LAYOUT.type_of(ident) == int(node_type)


# -- properties ------------------------------------------------------------------


@given(ids)
def test_split_roundtrip(ident):
    high, node_type, low = LAYOUT.split(ident)
    assert LAYOUT.make_id(high, node_type, low) == ident


@given(ids)
def test_section_index_consistent_with_split(ident):
    high, node_type, _low = LAYOUT.split(ident)
    assert LAYOUT.section_index(ident) == (high << 1) | node_type


@given(ids)
def test_type_matches_section_type(ident):
    assert LAYOUT.type_of(ident) == LAYOUT.type_of_section(LAYOUT.section_index(ident))


@given(ids)
def test_id_within_its_section_bounds(ident):
    start, end = LAYOUT.section_bounds(LAYOUT.section_index(ident))
    assert start <= ident <= end


@given(ids, st.integers(min_value=0, max_value=4096))
def test_advance_sections_changes_index_by_count(ident, count):
    moved = LAYOUT.advance_sections(ident, count)
    expected = (LAYOUT.section_index(ident) + count) % LAYOUT.num_sections
    assert LAYOUT.section_index(moved) == expected
    assert LAYOUT.offset_in_section(moved) == LAYOUT.offset_in_section(ident)


@given(ids)
def test_opposite_type_position_is_involution_on_type(ident):
    # Two hops lands back on the original type (sections alternate).
    twice = LAYOUT.advance_sections(ident, 2)
    assert LAYOUT.type_of(twice) == LAYOUT.type_of(ident)


@given(ids, ids)
def test_same_section_implies_same_type(a, b):
    if LAYOUT.same_section(a, b):
        assert LAYOUT.same_type(a, b)
