"""Shared fixtures and ring-building helpers for the test suite."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

import pytest

from repro.chord import ChordNode, OverlayConfig, instant_bootstrap
from repro.chord.ring import Population
from repro.crypto import CertificateAuthority
from repro.ids import IdSpace, NodeType, VermeIdLayout
from repro.net import ConstantLatency, Network, NodeAddress
from repro.overlay import StaticOverlay, VermeStaticOverlay
from repro.sim import Simulator
from repro.verme import VermeNode

SMALL_BITS = 32


@dataclass
class ChordRing:
    sim: Simulator
    network: Network
    config: OverlayConfig
    nodes: List[ChordNode]
    overlay: StaticOverlay

    def node_for(self, node_id: int) -> ChordNode:
        return next(n for n in self.nodes if n.node_id == node_id)


@dataclass
class VermeRing:
    sim: Simulator
    network: Network
    config: OverlayConfig
    layout: VermeIdLayout
    ca: CertificateAuthority
    nodes: List[VermeNode]
    overlay: VermeStaticOverlay

    def node_for(self, node_id: int) -> VermeNode:
        return next(n for n in self.nodes if n.node_id == node_id)

    def nodes_of_type(self, node_type: NodeType) -> List[VermeNode]:
        return [n for n in self.nodes if n.node_type is node_type]


def build_chord_ring(
    num_nodes: int = 32,
    seed: int = 1,
    num_successors: int = 4,
    one_way_latency: float = 0.02,
    loss_rate: float = 0.0,
    bits: int = SMALL_BITS,
) -> ChordRing:
    space = IdSpace(bits)
    config = OverlayConfig(space=space, num_successors=num_successors)
    sim = Simulator()
    rng = random.Random(seed)
    network = Network(
        sim,
        ConstantLatency(num_hosts=num_nodes, one_way=one_way_latency),
        loss_rate=loss_rate,
        loss_rng=random.Random(seed + 999) if loss_rate else None,
    )
    used = set()
    nodes = []
    for i in range(num_nodes):
        nid = rng.getrandbits(bits)
        while nid in used:
            nid = rng.getrandbits(bits)
        used.add(nid)
        nodes.append(
            ChordNode(sim, network, config, nid, NodeAddress(i), random.Random(i))
        )
    overlay = instant_bootstrap(nodes)
    return ChordRing(sim, network, config, nodes, overlay)


def build_verme_ring(
    num_nodes: int = 64,
    num_sections: int = 8,
    seed: int = 2,
    num_successors: int = 4,
    num_predecessors: int = 4,
    one_way_latency: float = 0.02,
    bits: int = SMALL_BITS,
    node_class=VermeNode,
) -> VermeRing:
    space = IdSpace(bits)
    layout = VermeIdLayout.for_sections(space, num_sections)
    config = OverlayConfig(
        space=space,
        num_successors=num_successors,
        num_predecessors=num_predecessors,
    )
    sim = Simulator()
    rng = random.Random(seed)
    network = Network(sim, ConstantLatency(num_hosts=num_nodes + 4, one_way=one_way_latency))
    ca = CertificateAuthority()
    used = set()
    nodes = []
    for i in range(num_nodes):
        node_type = NodeType(i % 2)
        nid = layout.random_id(rng, node_type)
        while nid in used:
            nid = layout.random_id(rng, node_type)
        used.add(nid)
        cert, keys = ca.issue(nid, node_type)
        nodes.append(
            node_class(
                sim, network, config, layout, cert, keys, ca,
                NodeAddress(i), random.Random(i),
            )
        )
    overlay = instant_bootstrap(nodes)
    return VermeRing(sim, network, config, layout, ca, nodes, overlay)


def run_lookup(ring, node, key, **kwargs):
    """Issue one lookup and drive the sim until it completes."""
    results = []
    node.lookup(key, on_done=results.append, **kwargs)
    ring.sim.run(until=ring.sim.now + 120.0)
    assert results, "lookup never completed"
    return results[0]


def population_of(nodes) -> Population:
    pop = Population()
    for node in nodes:
        pop.add(node)
    return pop


@pytest.fixture
def chord_ring() -> ChordRing:
    return build_chord_ring()


@pytest.fixture
def verme_ring() -> VermeRing:
    return build_verme_ring()
