"""Unit tests for statistics, curves and table rendering."""

import math

import pytest

from repro.analysis import (
    LookupStats,
    OperationStats,
    Summary,
    mean_confidence_interval,
    percentile,
)
from repro.analysis.curves import average_curves, log_time_grid, resample
from repro.analysis.tables import format_table
from repro.worm import InfectionCurve


def test_summary_basic():
    s = Summary.of([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.median == pytest.approx(2.5)


def test_summary_empty_is_nan():
    s = Summary.of([])
    assert s.count == 0
    assert math.isnan(s.mean)


def test_percentile_interpolates():
    data = [0.0, 10.0]
    assert percentile(data, 50) == pytest.approx(5.0)
    assert percentile(data, 0) == 0.0
    assert percentile(data, 100) == 10.0


def test_percentile_single_value():
    assert percentile([7.0], 90) == 7.0


def test_confidence_interval_shrinks_with_n():
    _m1, h1 = mean_confidence_interval([1.0, 2.0, 3.0] * 3)
    _m2, h2 = mean_confidence_interval([1.0, 2.0, 3.0] * 30)
    assert h2 < h1


def test_lookup_stats_records():
    stats = LookupStats()
    stats.record(True, 0.5, 3)
    stats.record(False, 0.0, 0)
    assert stats.total == 2
    assert stats.failure_rate == pytest.approx(0.5)
    assert stats.latency_summary().mean == pytest.approx(0.5)
    assert stats.hops_summary().mean == pytest.approx(3.0)


def test_operation_stats_records():
    stats = OperationStats()
    stats.record(True, 1.0, 4096)
    stats.record(True, 3.0, 8192)
    stats.record(False, 0.0, 0)
    assert stats.successes == 2
    assert stats.failures == 1
    assert stats.latency_summary().mean == pytest.approx(2.0)
    assert stats.bytes_summary().mean == pytest.approx(6144.0)


def test_resample_step_interpolation():
    c = InfectionCurve()
    c.record(1.0, 2)
    c.record(5.0, 9)
    assert resample(c, [0.5, 1.0, 3.0, 5.0, 10.0]) == [0, 2, 2, 9, 9]


def test_log_time_grid_monotone_and_bounded():
    grid = log_time_grid(0.1, 100.0, 10)
    assert grid[0] == pytest.approx(0.1)
    assert grid[-1] == pytest.approx(100.0)
    assert all(a < b for a, b in zip(grid, grid[1:]))


def test_log_time_grid_validation():
    with pytest.raises(ValueError):
        log_time_grid(0.0, 10.0)
    with pytest.raises(ValueError):
        log_time_grid(10.0, 1.0)


def test_average_curves():
    a, b = InfectionCurve(), InfectionCurve()
    a.record(1.0, 10)
    b.record(1.0, 20)
    series = average_curves([a, b], [0.5, 2.0])
    assert series == [(0.5, 0.0), (2.0, 15.0)]


def test_average_curves_empty():
    assert average_curves([], [1.0]) == [(1.0, 0.0)]


def test_format_table_alignment():
    out = format_table(
        ["system", "latency"],
        [["chord", 0.123456], ["verme", 1234.5]],
    )
    lines = out.splitlines()
    assert len(lines) == 4
    assert "system" in lines[0]
    assert "chord" in lines[2]
    assert "1,234" in lines[3] or "1234" in lines[3]


def test_format_table_none_as_dash():
    out = format_table(["a"], [[None]])
    assert "-" in out.splitlines()[-1]


def test_format_table_nan_as_dash():
    out = format_table(["a"], [[float("nan")]])
    assert out.splitlines()[-1].strip() == "-"
