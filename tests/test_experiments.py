"""Smoke + shape tests for the experiment drivers (scaled down)."""

import math

import pytest

from repro.experiments import (
    DhtExperimentConfig,
    Fig5Config,
    Fig8Config,
    bytes_by_system,
    latency_by_system,
    run_cell,
    run_dht_cell,
    run_fig8_scenario,
)
from repro.experiments.fig8_worm_propagation import DEFAULT_HORIZONS
from repro.worm import WormScenarioConfig

FIG5_CFG = Fig5Config(num_nodes=60, duration_s=420.0, warmup_s=60.0)


@pytest.fixture(scope="module")
def fig5_rows():
    return {
        system: run_cell(FIG5_CFG, system, mean_lifetime_s=3600.0)
        for system in ("chord-transitive", "chord-recursive", "verme")
    }


def test_fig5_all_systems_complete_lookups(fig5_rows):
    for row in fig5_rows.values():
        assert row.lookups > 50
        assert row.failure_rate < 0.05
        assert not math.isnan(row.mean_latency_s)


def test_fig5_transitive_beats_recursive(fig5_rows):
    assert (
        fig5_rows["chord-transitive"].mean_latency_s
        < fig5_rows["chord-recursive"].mean_latency_s
    )


def test_fig5_verme_close_to_recursive_chord(fig5_rows):
    """The paper's headline: Verme ~ recursive Chord (within ~20%)."""
    verme = fig5_rows["verme"].mean_latency_s
    recursive = fig5_rows["chord-recursive"].mean_latency_s
    assert abs(verme - recursive) / recursive < 0.25


def test_fig5_maintenance_bandwidth_same_order(fig5_rows):
    """§7.1.2 text: maintenance bandwidth does not differ wildly."""
    chord = fig5_rows["chord-recursive"].maintenance_bytes_per_node_s
    verme = fig5_rows["verme"].maintenance_bytes_per_node_s
    assert 0.3 < verme / chord < 3.0


def test_fig5_unknown_system_rejected():
    with pytest.raises(ValueError):
        run_cell(FIG5_CFG, "pastry", 3600.0)


DHT_CFG = DhtExperimentConfig(num_nodes=120, num_sections=16, num_puts=15, num_gets=15)


@pytest.fixture(scope="module")
def dht_results():
    return {
        system: run_dht_cell(DHT_CFG, system)
        for system in ("dhash", "fast-verdi", "secure-verdi", "compromise-verdi")
    }


def test_dht_ops_mostly_succeed(dht_results):
    for system, res in dht_results.items():
        assert res.put_stats.successes >= 13, system
        assert res.get_stats.successes >= 13, system


def test_fig7_get_bandwidth_shape(dht_results):
    rows = []
    for res in dht_results.values():
        rows.extend(res.rows())
    by_system = bytes_by_system(rows, "get")
    # DHash ~ Fast; Compromise roughly doubles; Secure pays per hop.
    assert by_system["fast-verdi"] < 1.4 * by_system["dhash"]
    assert by_system["compromise-verdi"] > 1.4 * by_system["dhash"]
    assert by_system["secure-verdi"] > by_system["compromise-verdi"]


def test_fig7_put_bandwidth_shape(dht_results):
    rows = []
    for res in dht_results.values():
        rows.extend(res.rows())
    by_system = bytes_by_system(rows, "put")
    # The VerDi puts all pay an extra cross-type copy over DHash.
    assert by_system["fast-verdi"] > 1.5 * by_system["dhash"]
    assert by_system["compromise-verdi"] > by_system["fast-verdi"]


def test_fig6_get_latency_shape(dht_results):
    rows = []
    for res in dht_results.values():
        rows.extend(res.rows())
    by_system = latency_by_system(rows, "get")
    # Fast ~ DHash (within 25% at this scale).
    assert abs(by_system["fast-verdi"] - by_system["dhash"]) / by_system["dhash"] < 0.4
    # Everything beats nothing: VerDi variants are not faster than Fast
    # by more than noise.
    assert by_system["secure-verdi"] > 0
    assert by_system["compromise-verdi"] > by_system["fast-verdi"]


def test_fig6_put_latency_shape(dht_results):
    rows = []
    for res in dht_results.values():
        rows.extend(res.rows())
    by_system = latency_by_system(rows, "put")
    assert by_system["dhash"] == min(by_system.values())


def test_dht_unknown_system_rejected():
    with pytest.raises(ValueError):
        run_dht_cell(DHT_CFG, "kademlia")


def test_fig8_scenario_rows():
    cfg = Fig8Config(
        scenario_config=WormScenarioConfig(num_nodes=600, num_sections=32, seed=1),
        runs=2,
        horizons={"verme": 100.0},
    )
    row, curves = run_fig8_scenario(cfg, "verme")
    assert row.scenario == "verme"
    assert len(curves) == 2
    assert row.population == 600
    assert row.final_infected < 0.2 * row.vulnerable
    assert row.time_to_50pct_s is None


def test_fig8_default_horizons_cover_all_scenarios():
    from repro.worm import SCENARIOS

    assert set(DEFAULT_HORIZONS) == set(SCENARIOS)
