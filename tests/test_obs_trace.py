"""Trace recorder tests: format validity, the CLI validator, and the
legacy/columnar worm engines' identical-logical-trace contract."""

from __future__ import annotations

import json

from repro.obs import OBS, collecting, validate_trace_file, validate_trace_obj
from repro.obs.trace import LANES, TraceRecorder
from repro.obs.trace import main as trace_main
from repro.worm import SCENARIOS, WormScenarioConfig, run_scenario

#: Engine-independent worm events.  ``worm.tick`` (columnar-only, lane
#: "sim") is engine mechanics and deliberately excluded.
LOGICAL_WORM_EVENTS = frozenset({
    "worm.seed", "worm.activate", "worm.scan", "worm.idle",
    "worm.infection", "worm.harvest",
})


def test_recorder_emits_valid_trace_events():
    rec = TraceRecorder()
    rec.instant("rpc.call", 1.5, lane="rpc", args={"method": "ping"})
    rec.complete("lookup", 1.0, 0.25, lane="lookup", args={"hops": 3})
    rec.counter("infected", 2.0, {"count": 7}, lane="worm")
    assert len(rec) == 3
    obj = rec.to_obj()
    assert validate_trace_obj(obj) == []
    phases = [e["ph"] for e in obj["traceEvents"]]
    # Metadata (thread_name) rows precede the payload events.
    assert phases.count("M") == 3  # rpc, lookup, worm lanes were used
    assert {"i", "X", "C"} <= set(phases)
    ts = [e["ts"] for e in obj["traceEvents"] if e["ph"] == "i"]
    assert ts == [1.5e6]  # seconds -> microseconds


def test_unknown_lane_falls_back_to_experiment():
    rec = TraceRecorder()
    rec.instant("x", 0.0, lane="no-such-lane")
    assert rec.events[0]["tid"] == LANES["experiment"]


def test_validator_flags_malformed_events():
    assert validate_trace_obj([]) == ["top level must be a JSON object"]
    assert validate_trace_obj({}) == ["missing 'traceEvents' array"]
    bad = {
        "traceEvents": [
            {"name": "", "ph": "i", "ts": 0, "pid": 0, "tid": 0},
            {"name": "n", "ph": "Z", "ts": 0, "pid": 0, "tid": 0},
            {"name": "n", "ph": "X", "ts": 0, "pid": 0, "tid": 0},
            {"name": "n", "ph": "i", "ts": -1, "pid": 0, "tid": 0},
        ]
    }
    errors = validate_trace_obj(bad)
    assert any("missing/empty 'name'" in e for e in errors)
    assert any("bad phase 'Z'" in e for e in errors)
    assert any("bad 'dur'" in e for e in errors)
    assert any("bad 'ts'" in e for e in errors)


def test_validate_file_and_cli(tmp_path, capsys):
    rec = TraceRecorder()
    rec.instant("e", 0.0)
    good = rec.write(tmp_path / "good.trace.json")
    assert validate_trace_file(good) == []
    bad = tmp_path / "bad.trace.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "?"}]}))
    assert validate_trace_file(bad)
    assert trace_main(["--validate", str(good)]) == 0
    assert "ok:" in capsys.readouterr().out
    assert trace_main(["--validate", str(good), str(bad)]) == 1


def test_byte_stable_rendering():
    def build():
        rec = TraceRecorder()
        rec.instant("a", 0.5, lane="worm", args={"node": 1})
        rec.complete("b", 0.0, 1.0, lane="sim")
        return rec.to_json()

    assert build() == build()


def _logical_worm_trace(scenario: str, engine: str):
    config = WormScenarioConfig(
        num_nodes=300, num_sections=16, seed=42, engine=engine
    )
    with collecting(metrics=False, trace=True):
        result = run_scenario(scenario, config, until=120.0)
        events = [
            e for e in OBS.trace.events if e["name"] in LOGICAL_WORM_EVENTS
        ]
    return result, events


def test_engines_emit_identical_logical_traces():
    """The tracing contract both engines share: same logical events, in
    the same order, with the same timestamps and args — on every
    scenario, impersonation harvests included."""
    for scenario in SCENARIOS:
        legacy_result, legacy = _logical_worm_trace(scenario, "legacy")
        columnar_result, columnar = _logical_worm_trace(scenario, "columnar")
        assert legacy, f"{scenario}: legacy produced no worm events"
        assert legacy == columnar, f"{scenario}: logical traces differ"
        assert legacy_result.final_infected == columnar_result.final_infected


def test_columnar_tick_spans_present_only_for_columnar():
    config = WormScenarioConfig(num_nodes=300, num_sections=16, seed=42)
    with collecting(metrics=False, trace=True):
        run_scenario("chord", config, until=60.0)
        names = {e["name"] for e in OBS.trace.events}
    assert "worm.tick" in names
    with collecting(metrics=False, trace=True):
        run_scenario(
            "chord",
            WormScenarioConfig(
                num_nodes=300, num_sections=16, seed=42, engine="legacy"
            ),
            until=60.0,
        )
        names = {e["name"] for e in OBS.trace.events}
    assert "worm.tick" not in names
