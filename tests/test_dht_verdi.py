"""Tests for VerDi replication placement and the three variants'
functional behaviour (paper §5.2-§5.3)."""

import random

import pytest

from repro.crypto import SealedPayload
from repro.dht import (
    CompromiseVerDiNode,
    DhtConfig,
    FastVerDiNode,
    SecureVerDiNode,
)
from repro.ids import NodeType

from conftest import build_verme_ring


def attach(ring, cls, num_replicas=6):
    layers = [cls(node, DhtConfig(num_replicas=num_replicas)) for node in ring.nodes]
    for layer in layers:
        layer.start()
    return layers


def do_op(ring, fn, *args):
    results = []
    fn(*args, results.append)
    ring.sim.run(until=ring.sim.now + 240)
    assert results
    return results[0]


@pytest.fixture(params=[FastVerDiNode, SecureVerDiNode, CompromiseVerDiNode])
def variant(request):
    return request.param


def test_put_get_roundtrip_each_variant(variant):
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=3)
    layers = attach(ring, variant)
    value = b"verdi-block" * 20
    put = do_op(ring, layers[0].put, value)
    assert put.ok, put.error
    got = do_op(ring, layers[-1].get, put.key)
    assert got.ok, got.error
    assert got.value == value


def test_cross_type_clients_can_both_read(variant):
    """Data must be available to clients of both types (§5.2/§5.3.1)."""
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=5)
    layers = attach(ring, variant)
    writer = next(l for l in layers if l.node.node_type is NodeType.A)
    value = b"both-types-read-me"
    put = do_op(ring, writer.put, value)
    assert put.ok, put.error
    ring.sim.run(until=ring.sim.now + 120)  # let replication settle
    reader_a = next(
        l for l in layers if l.node.node_type is NodeType.A and l is not writer
    )
    reader_b = next(l for l in layers if l.node.node_type is NodeType.B)
    for reader in (reader_a, reader_b):
        got = do_op(ring, reader.get, put.key)
        assert got.ok, got.error
        assert got.value == value


def test_fast_verdi_replicas_in_both_type_sections():
    ring = build_verme_ring(num_nodes=128, num_sections=8, seed=7)
    layers = attach(ring, FastVerDiNode)
    value = b"two-section-placement"
    put = do_op(ring, layers[0].put, value)
    assert put.ok
    ring.sim.run(until=ring.sim.now + 10)
    holder_types = {
        int(l.node.node_type) for l in layers if put.key in l.store
    }
    assert holder_types == {0, 1}, "replicas must live in both types"


def test_secure_verdi_single_section_placement():
    ring = build_verme_ring(num_nodes=128, num_sections=8, seed=9)
    layers = attach(ring, SecureVerDiNode)
    value = b"one-section-placement"
    put = do_op(ring, layers[0].put, value)
    assert put.ok
    ring.sim.run(until=ring.sim.now + 10)
    holder_sections = {
        ring.layout.section_index(l.node.node_id)
        for l in layers
        if put.key in l.store
    }
    assert len(holder_sections) == 1


def test_fast_verdi_lookup_rejects_same_type_initiator():
    """The §5.3.1 type check at the responsible node."""
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=11)
    attach(ring, FastVerDiNode)
    node = ring.nodes[0]
    # Look up a key in a section of the node's OWN type (no adjustment).
    key = ring.layout.random_id(random.Random(1), int(node.node_type))
    from repro.chord import LookupPurpose, LookupStyle

    results = []
    node.lookup(
        key, on_done=results.append,
        style=LookupStyle.RECURSIVE, purpose=LookupPurpose.DHT,
    )
    ring.sim.run(until=ring.sim.now + 120)
    assert results and not results[0].success


def test_fast_verdi_fetch_rejects_same_type_requester():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=13)
    layers = attach(ring, FastVerDiNode)
    value = b"guarded-fetch"
    put = do_op(ring, layers[0].put, value)
    ring.sim.run(until=ring.sim.now + 10)
    holder = next(l for l in layers if put.key in l.store)
    same_type_peer = next(
        l
        for l in layers
        if l.node.node_type is holder.node.node_type and l is not holder
    )
    errors = []
    same_type_peer.node.rpc.call(
        holder.node.address,
        "dht_fetch",
        {"key": put.key, "cert": same_type_peer.node.cert},
        on_error=errors.append,
    )
    ring.sim.run(until=ring.sim.now + 10)
    assert errors == ["same-type fetch rejected"]


def test_fast_verdi_fetched_value_sealed_for_requester():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=15)
    layers = attach(ring, FastVerDiNode)
    value = b"sealed-in-transit"
    put = do_op(ring, layers[0].put, value)
    ring.sim.run(until=ring.sim.now + 10)
    holder = next(l for l in layers if put.key in l.store)
    opposite = next(
        l for l in layers if l.node.node_type is not holder.node.node_type
    )
    replies = []
    opposite.node.rpc.call(
        holder.node.address,
        "dht_fetch",
        {"key": put.key, "cert": opposite.node.cert},
        on_reply=replies.append,
    )
    ring.sim.run(until=ring.sim.now + 10)
    assert replies and replies[0]["found"]
    assert isinstance(replies[0]["value"], SealedPayload)
    assert replies[0]["value"].open(opposite.node.keys) == value


def test_secure_verdi_raw_dht_lookup_rejected():
    """In Secure-VerDi, address-returning DHT lookups do not exist."""
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=17)
    attach(ring, SecureVerDiNode)
    from repro.chord import LookupPurpose, LookupStyle

    node = ring.nodes[0]
    results = []
    node.lookup(
        0xABCDEF, on_done=results.append,
        style=LookupStyle.RECURSIVE, purpose=LookupPurpose.DHT,
    )
    ring.sim.run(until=ring.sim.now + 120)
    assert results and not results[0].success


def test_secure_verdi_get_returns_no_addresses():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=19)
    layers = attach(ring, SecureVerDiNode)
    value = b"addressless-get"
    put = do_op(ring, layers[0].put, value)
    assert put.ok
    # Instrument the client's lookup to inspect the raw result.
    from repro.chord import LookupPurpose

    client = layers[5]
    raw = []
    client.node.lookup(
        put.key,
        on_done=raw.append,
        purpose=LookupPurpose.DHT,
        request_meta={"op": "get", "suppress_entries": True, "op_tag": 0},
    )
    ring.sim.run(until=ring.sim.now + 240)
    assert raw and raw[0].success
    assert raw[0].entries == []  # no replica addresses disclosed
    assert raw[0].app_payload["found"]


def test_compromise_relay_performs_operation():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=21)
    layers = attach(ring, CompromiseVerDiNode)
    value = b"relayed-op"
    put = do_op(ring, layers[0].put, value)
    assert put.ok
    got = do_op(ring, layers[7].get, put.key)
    assert got.ok and got.value == value
    assert sum(l.relayed_operations for l in layers) >= 1


def test_compromise_relay_rejects_invalid_certificate():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=23)
    layers = attach(ring, CompromiseVerDiNode)
    client, relay = layers[0], layers[1]
    errors = []
    client.node.rpc.call(
        relay.node.address,
        "verdi_relay",
        {"op": "get", "key": 1, "cert": None, "statement": ("vouch",)},
        on_error=errors.append,
    )
    ring.sim.run(until=ring.sim.now + 10)
    assert errors == ["invalid initiator certificate"]


def test_compromise_relay_requires_statement():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=25)
    layers = attach(ring, CompromiseVerDiNode)
    client, relay = layers[0], layers[1]
    errors = []
    client.node.rpc.call(
        relay.node.address,
        "verdi_relay",
        {"op": "get", "key": 1, "cert": client.node.cert, "statement": None},
        on_error=errors.append,
    )
    ring.sim.run(until=ring.sim.now + 10)
    assert errors == ["missing signed statement"]


def test_verdi_requires_verme_node(chord_ring):
    with pytest.raises(TypeError):
        FastVerDiNode(chord_ring.nodes[0], DhtConfig())


def test_adjusted_key_always_opposite_type():
    ring = build_verme_ring(num_nodes=64, num_sections=8, seed=27)
    layers = attach(ring, FastVerDiNode)
    rng = random.Random(31)
    for layer in layers[:8]:
        for _ in range(10):
            key = rng.getrandbits(32)
            adjusted = layer.adjusted_key(key)
            assert ring.layout.type_of(adjusted) != int(layer.node.node_type)
            # Same in-section offset: the displaced position is "the same
            # position of the subsequent section".
            assert ring.layout.offset_in_section(adjusted) == ring.layout.offset_in_section(key)
