"""Protocol-level counterpart of ablation A2: a worm wipes out a whole
platform type.  What actually survives, on a live ring?

Findings this module pins down (also recorded in DESIGN.md §7):

* the surviving type's ring *heals in-band* — stabilization plus the
  predecessor fallback reconnects a B-only ring within a few rounds;
* every block survives in storage (§5.2's claim: an outbreak in one
  type cannot wipe out all copies);
* **Fast-VerDi's read path is nevertheless blocked**: its anti-harvest
  rule only lets clients fetch from *opposite-type* replicas, and those
  are exactly the dead ones — the same-type copies exist but are
  unreadable by design until the other type recovers;
* **Secure-VerDi loses roughly half the data outright**: it replicates
  in a single section (§5.3.2), so blocks whose key section was the
  dead type have no surviving copy — §5.2's "worm outbreak cannot wipe
  out all copies" guarantee belongs to the *two-section* variants.
  The keys that landed in surviving-type sections stay fully readable.
"""

import random

import pytest

from repro.dht import DhtConfig, FastVerDiNode, SecureVerDiNode
from repro.ids import NodeType

from conftest import build_verme_ring


def run_outbreak(dht_cls, seed):
    ring = build_verme_ring(num_nodes=128, num_sections=8, seed=seed)
    layers = [dht_cls(n, DhtConfig(num_replicas=6)) for n in ring.nodes]
    rng = random.Random(1)
    keys = []
    for i in range(10):
        value = bytes([i]) * 300
        results = []
        rng.choice(layers).put(value, results.append)
        ring.sim.run(until=ring.sim.now + 120)
        assert results and results[0].ok, results and results[0].error
        keys.append((results[0].key, value))
    ring.sim.run(until=ring.sim.now + 120)  # replication settles
    for node in ring.nodes:  # the outbreak
        if node.node_type is NodeType.A:
            node.crash()
    ring.sim.run(until=ring.sim.now + 300)  # several stabilize rounds
    return ring, layers, keys


@pytest.fixture(scope="module")
def fast_outbreak():
    return run_outbreak(FastVerDiNode, seed=401)


@pytest.fixture(scope="module")
def secure_outbreak():
    return run_outbreak(SecureVerDiNode, seed=403)


def test_surviving_ring_heals_in_band(fast_outbreak):
    """Stabilization plus the predecessor fallback reconnects the
    surviving type's ring: every survivor regains a live successor, and
    the overwhelming majority point at their exact ring successor."""
    ring, _layers, _keys = fast_outbreak
    survivors = [n for n in ring.nodes if n.alive]
    assert survivors and all(n.node_type is NodeType.B for n in survivors)
    import bisect

    live_ids = sorted(n.node_id for n in survivors)
    exact = 0
    for node in survivors:
        succ = node.successors.first
        assert succ is not None
        assert ring.network.is_registered(succ.address), "dead successor kept"
        expected = live_ids[
            bisect.bisect_right(live_ids, node.node_id) % len(live_ids)
        ]
        if succ.node_id == expected:
            exact += 1
    assert exact >= 0.9 * len(survivors)


def test_every_block_survives_in_storage(fast_outbreak):
    ring, layers, keys = fast_outbreak
    for key, value in keys:
        holders = [l for l in layers if l.node.alive and l.store.get(key) == value]
        assert holders, f"no live replica of {key:#x}"
        assert all(l.node.node_type is NodeType.B for l in holders)


def test_fast_verdi_reads_blocked_by_type_rule(fast_outbreak):
    """The trade-off: the anti-harvest fetch rule points surviving
    clients exclusively at the dead type's replicas."""
    ring, layers, keys = fast_outbreak
    survivors = [l for l in layers if l.node.alive]
    rng = random.Random(2)
    successes = 0
    for key, value in keys[:5]:
        results = []
        rng.choice(survivors).get(key, results.append)
        ring.sim.run(until=ring.sim.now + 240)
        if results and results[0].ok:
            successes += 1
    assert successes == 0


def test_secure_verdi_partial_survival_by_key_section(secure_outbreak):
    """Single-section replication partitions the keys by fate: blocks
    in dead-type sections lose every replica, blocks in surviving-type
    sections keep all of theirs and are readable once membership
    recovers.

    (End-to-end reads are checked after a membership re-bootstrap:
    in-band stabilization after a 50% correlated failure can heal the
    ring into shortcut loops — the classic Chord pathology — leaving
    some arcs unreachable until nodes re-join via a bootstrap service.)
    """
    ring, layers, keys = secure_outbreak
    layout = ring.layout
    # Storage fate, checked directly.
    for key, value in keys:
        holders = [l for l in layers if l.node.alive and l.store.get(key) == value]
        if layout.type_of(key) == int(NodeType.A):
            assert not holders, f"dead-section key {key:#x} kept a replica"
        else:
            assert holders, f"live-section key {key:#x} lost all replicas"
    # Read path after membership recovery.
    from repro.chord import instant_bootstrap

    survivors_nodes = [n for n in ring.nodes if n.alive]
    instant_bootstrap(survivors_nodes)
    ring.sim.run(until=ring.sim.now + 60)
    survivors = [l for l in layers if l.node.alive]
    rng = random.Random(3)
    for key, value in keys:
        results = []
        rng.choice(survivors).get(key, results.append)
        ring.sim.run(until=ring.sim.now + 240)
        ok = bool(results and results[0].ok and results[0].value == value)
        if layout.type_of(key) == int(NodeType.A):
            assert not ok, f"dead-section key {key:#x} readable?"
        else:
            assert ok, f"live-section key {key:#x} unreadable after recovery"
