"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_fifo_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    sim.schedule(5.5, lambda: None)
    sim.run()
    assert sim.now == 5.5


def test_zero_delay_runs_after_current_queue_front():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, fired.append, 1)
    sim.schedule(0.0, fired.append, 2)
    sim.run()
    assert fired == [1, 2]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1.0, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled
    assert not handle.fired


def test_cancel_is_idempotent_and_safe_after_fire():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert handle.fired
    handle.cancel()  # no error
    handle.cancel()


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_max_events_bounds_execution():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    sim.run(max_events=10)
    assert sim.events_processed == 10


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_step_processes_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


def test_step_skips_cancelled_events():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    handle.cancel()
    assert sim.step()
    assert fired == ["b"]


def test_clear_drops_pending_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.clear()
    sim.run()
    assert fired == []


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_pending_events_counts_queue():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2


def test_max_events_stops_then_resumes():
    sim = Simulator()
    fired = []
    for i in range(6):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]
    assert sim.now == 2.0
    sim.run(max_events=2)
    assert fired == [0, 1, 2, 3]
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_max_events_does_not_count_cancelled_events():
    sim = Simulator()
    fired = []
    handles = [sim.schedule(1.0, fired.append, i) for i in range(3)]
    sim.schedule(2.0, fired.append, "live")
    for handle in handles:
        handle.cancel()
    sim.run(max_events=1)
    assert fired == ["live"]
    assert sim.events_processed == 1


def test_callback_cancels_later_event_at_same_timestamp():
    """A handler may cancel a sibling scheduled for the same instant;
    the sibling must not fire even though it is already due."""
    sim = Simulator()
    fired = []
    victim = sim.schedule(1.0, fired.append, "victim")

    def killer():
        fired.append("killer")
        victim.cancel()

    # FIFO among ties would run the victim first if it had been
    # scheduled first - so schedule the killer ahead of it.
    sim2 = Simulator()
    fired2 = []

    def killer2():
        fired2.append("killer")
        victim2.cancel()

    sim2.schedule(1.0, killer2)
    victim2 = sim2.schedule(1.0, fired2.append, "victim")
    sim2.run()
    assert fired2 == ["killer"]
    assert victim2.cancelled and not victim2.fired

    # And the mirror image: scheduled first, the victim fires first.
    sim.schedule(1.0, killer)  # killer after victim: too late to stop it
    sim.run()
    assert fired == ["victim", "killer"]


def test_pending_live_excludes_cancelled():
    sim = Simulator()
    handles = [sim.schedule(1.0, lambda: None) for _ in range(3)]
    handles[0].cancel()
    # The cancelled entry stays queued (lazy removal) but is not live.
    assert sim.pending_events == 3
    assert sim.pending_live == 2


def test_pending_live_tracks_fires():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(max_events=1)
    assert sim.pending_live == 1
    sim.run()
    assert sim.pending_live == 0
    assert sim.pending_events == 0


def test_compaction_bounds_queue_growth():
    """Cancelling most of a large queue rebuilds it: the cancelled
    entries must not linger until their (possibly far-future) times."""
    sim = Simulator()
    handles = [sim.schedule(1e6 + i, lambda: None) for i in range(1000)]
    for handle in handles[:900]:
        handle.cancel()
    assert sim.pending_live == 100
    # >50% of the queue was cancelled: compaction kicked in.
    assert sim.pending_events < 500
    fired = []
    sim.schedule(0.5, fired.append, "live")
    sim.run(until=1.0)
    assert fired == ["live"]


def test_call_after_fires_fifo_with_schedule():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    assert sim.call_after(1.0, fired.append, "b") is None
    sim.schedule(1.0, fired.append, "c")
    sim.call_after(1.0, fired.append, "d")
    sim.run()
    assert fired == ["a", "b", "c", "d"]


def test_call_after_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().call_after(-0.1, lambda: None)


def test_call_after_zero_arg_and_step():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, lambda: fired.append("x"))
    assert sim.pending_live == 1
    assert sim.step()
    assert fired == ["x"]
    assert sim.pending_live == 0


def test_cancel_after_clear_keeps_counters_sane():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.clear()
    handle.cancel()
    assert sim.pending_live == 0
    sim.schedule(1.0, lambda: None)
    assert sim.pending_live == 1
    sim.run()
    assert sim.pending_live == 0


def test_cancel_same_timestamp_from_periodic_chain():
    """Cancelling inside a same-tick cascade leaves the queue usable."""
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        h_late.cancel()
        sim.schedule(0.0, fired.append, "chained")

    sim.schedule(1.0, first)
    h_late = sim.schedule(1.0, fired.append, "late")
    sim.run()
    assert fired == ["first", "chained"]
