"""Failure injection: message loss, crashes mid-operation, stale state."""

import random

import pytest

from repro.chord import LookupStyle
from repro.dht import DhtConfig, DHashNode, FastVerDiNode

from conftest import build_chord_ring, build_verme_ring, run_lookup


def test_lookups_survive_moderate_message_loss():
    ring = build_chord_ring(num_nodes=48, seed=71, loss_rate=0.05)
    rng = random.Random(1)
    successes = 0
    total = 25
    for _ in range(total):
        results = []
        node = rng.choice(ring.nodes)
        node.lookup(
            rng.getrandbits(32), on_done=results.append, style=LookupStyle.RECURSIVE
        )
        ring.sim.run(until=ring.sim.now + 60)
        if results and results[0].success:
            successes += 1
    assert successes >= 0.8 * total


def test_lookup_retries_counted_under_loss():
    ring = build_chord_ring(num_nodes=48, seed=73, loss_rate=0.15)
    rng = random.Random(2)
    retried = 0
    for _ in range(30):
        results = []
        node = rng.choice(ring.nodes)
        node.lookup(
            rng.getrandbits(32), on_done=results.append, style=LookupStyle.RECURSIVE
        )
        ring.sim.run(until=ring.sim.now + 60)
        if results and results[0].retries:
            retried += 1
    assert retried > 0


def test_initiator_crash_mid_lookup_no_crash():
    ring = build_chord_ring(num_nodes=32, seed=79)
    node = ring.nodes[0]
    results = []
    node.lookup(12345, on_done=results.append, style=LookupStyle.RECURSIVE)
    node.crash()  # before any reply can arrive
    ring.sim.run(until=ring.sim.now + 60)
    assert results == []  # callback suppressed, no exception raised


def test_responsible_node_crash_mid_fetch_fails_over():
    ring = build_chord_ring(num_nodes=48, seed=83)
    layers = [DHashNode(n, DhtConfig(num_replicas=4)) for n in ring.nodes]
    results = []
    layers[0].put(b"failover-block", results.append)
    ring.sim.run(until=ring.sim.now + 60)
    assert results and results[0].ok
    key = results[0].key
    ring.sim.run(until=ring.sim.now + 5)  # replicate
    # Crash the primary, then immediately get without waiting for
    # routing repair: the client retries the next replica.
    owner = ring.overlay.at(ring.overlay.owner(key).index)
    ring.node_for(owner.node_id).crash()
    got = []
    alive_layer = next(l for l in layers if l.node.alive)
    alive_layer.get(key, got.append)
    ring.sim.run(until=ring.sim.now + 120)
    assert got and got[0].ok
    assert got[0].value == b"failover-block"


def test_all_replicas_crashed_get_fails_cleanly():
    ring = build_chord_ring(num_nodes=48, seed=89)
    layers = [DHashNode(n, DhtConfig(num_replicas=3)) for n in ring.nodes]
    results = []
    layers[0].put(b"doomed-block", results.append)
    ring.sim.run(until=ring.sim.now + 60)
    key = results[0].key
    ring.sim.run(until=ring.sim.now + 5)
    holders = [l for l in layers if key in l.store]
    assert holders
    for holder in holders:
        holder.node.crash()
    got = []
    requester = next(l for l in layers if l.node.alive)
    requester.get(key, got.append)
    ring.sim.run(until=ring.sim.now + 200)
    assert got
    assert not got[0].ok
    assert got[0].error


def test_verme_lookup_survives_next_hop_crash():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=97)
    rng = random.Random(3)
    node = ring.nodes[0]
    # Crash half of the node's fingers: routing must fall back.
    fingers = node.fingers.entries()
    for victim_info in fingers[: len(fingers) // 2]:
        victim = ring.node_for(victim_info.node_id)
        if victim.alive:
            victim.crash()
    res = run_lookup(ring, node, rng.getrandbits(32))
    assert res.success


def test_stale_routing_state_corrected_by_stabilization():
    """Right after a crash a lookup may legitimately return the stale
    entry (clients fail over along the returned list); stabilization
    must purge it within a few rounds."""
    ring = build_chord_ring(num_nodes=32, seed=101)
    node = ring.nodes[0]
    first = node.successors.first
    ring.node_for(first.node_id).crash()
    key = first.node_id
    res = run_lookup(ring, node, key, style=LookupStyle.RECURSIVE)
    assert res.success  # not fatal even with stale state
    ring.sim.run(until=ring.sim.now + 120)  # several stabilize rounds
    res2 = run_lookup(ring, node, key, style=LookupStyle.RECURSIVE)
    assert res2.success
    assert all(e.node_id != first.node_id for e in res2.entries)


def test_crashed_node_rpc_layer_rejects_use():
    ring = build_chord_ring(num_nodes=8, seed=103)
    node = ring.nodes[0]
    node.crash()
    with pytest.raises(RuntimeError):
        node.rpc.call(ring.nodes[1].address, "ping", {})


def test_verdi_cross_copy_survives_loss():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=107)
    ring.network.loss_rate = 0.03
    ring.network._loss_rng = random.Random(11)
    layers = [FastVerDiNode(n, DhtConfig(num_replicas=4)) for n in ring.nodes]
    oks = 0
    rng = random.Random(13)
    for i in range(10):
        results = []
        rng.choice(layers).put(bytes([i]) * 200, results.append)
        ring.sim.run(until=ring.sim.now + 120)
        if results and results[0].ok:
            oks += 1
    assert oks >= 7
