"""Integration tests for the Fig. 8 scenarios at small scale: the
containment *ordering* must reproduce."""

import pytest

from repro.worm import (
    WormScenarioConfig,
    build_chord_population,
    build_verme_population,
    run_scenario,
)

CFG = WormScenarioConfig(num_nodes=1500, num_sections=64, seed=7)


@pytest.fixture(scope="module")
def results():
    horizons = {
        "chord": 200.0,
        "verme": 200.0,
        "verme-secure": 200.0,
        "verme-fast": 1500.0,
        "verme-compromise": 15000.0,
    }
    return {
        name: run_scenario(name, CFG, until=until)
        for name, until in horizons.items()
    }


def test_chord_worm_sweeps_vulnerable_population(results):
    r = results["chord"]
    assert r.final_infected >= 0.95 * r.vulnerable_count


def test_chord_worm_fast(results):
    t95 = results["chord"].time_to_fraction(0.95)
    assert t95 is not None and t95 < 60.0


def test_verme_confines_to_one_section(results):
    r = results["verme"]
    # Average section holds ~ num_nodes/num_sections nodes; allow 3x.
    section_avg = CFG.num_nodes / CFG.num_sections
    assert r.final_infected <= 3 * section_avg
    assert r.final_infected < 0.05 * r.vulnerable_count


def test_secure_impersonation_logarithmic_sections(results):
    r = results["verme-secure"]
    section_avg = CFG.num_nodes / CFG.num_sections
    # O(log N) sections' worth of nodes, nowhere near the population.
    assert r.final_infected <= 40 * section_avg
    assert r.final_infected < 0.25 * r.vulnerable_count
    # But strictly worse than no impersonation.
    assert r.final_infected > results["verme"].final_infected


def test_fast_impersonation_eventually_spreads(results):
    r = results["verme-fast"]
    assert r.time_to_fraction(0.5) is not None


def test_compromise_slower_than_fast(results):
    """At paper scale the gap is ~10x; the coupon-collector tail makes
    it robust at the 95% mark even in this scaled-down setting."""
    fast = results["verme-fast"].time_to_fraction(0.95)
    comp = results["verme-compromise"].time_to_fraction(0.95)
    assert fast is not None and comp is not None
    assert comp > 3.0 * fast


def test_ordering_chord_fastest(results):
    """Chord saturates in a handful of worm generations; the harvested
    scenarios drag a coupon-collector tail behind them."""
    chord = results["chord"].time_to_fraction(0.95)
    fast = results["verme-fast"].time_to_fraction(0.95)
    assert chord is not None and fast is not None
    assert chord < fast


# -- population construction -----------------------------------------------------


def test_verme_population_half_vulnerable():
    pop = build_verme_population(CFG, __import__("random").Random(1))
    assert abs(pop.vulnerable_count - CFG.num_nodes // 2) <= 1
    assert pop.impersonator_index is None


def test_verme_population_types_match_ids():
    import random

    pop = build_verme_population(CFG, random.Random(2))
    layout = pop.overlay.layout
    for idx in range(0, len(pop.overlay), 97):
        assert pop.node_types[idx] == layout.type_of(pop.overlay.ids[idx])


def test_impersonator_claims_opposite_type_and_not_vulnerable():
    import random

    pop = build_verme_population(CFG, random.Random(3), with_impersonator=True)
    imp = pop.impersonator_index
    assert imp is not None
    layout = pop.overlay.layout
    assert layout.type_of(pop.overlay.ids[imp]) == int(CFG.victim_type.opposite)
    assert not pop.vulnerable[imp]


def test_chord_population_roughly_half_vulnerable():
    import random

    pop = build_chord_population(CFG, random.Random(4))
    frac = pop.vulnerable_count / len(pop.overlay)
    assert 0.4 < frac < 0.6


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        run_scenario("nope", CFG)


def test_scenarios_deterministic_per_seed():
    cfg = WormScenarioConfig(num_nodes=400, num_sections=32, seed=5)
    a = run_scenario("verme", cfg, until=100.0)
    b = run_scenario("verme", cfg, until=100.0)
    assert a.curve.points == b.curve.points
