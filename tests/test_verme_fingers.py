"""Property tests for Verme finger-target placement (paper §4.4)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ids import IdSpace, VermeIdLayout
from repro.verme import is_verme_finger_target, verme_finger_target

SPACE = IdSpace(16)
LAYOUT = VermeIdLayout.for_sections(SPACE, 32)  # sections of length 2048

ids = st.integers(min_value=0, max_value=SPACE.size - 1)
fingers = st.integers(min_value=0, max_value=SPACE.bits - 1)


@given(ids, fingers)
def test_target_lands_in_own_section_or_opposite_type(node_id, k):
    """THE finger invariant: a target is either inside the node's own
    island or in a section of the opposite type — never in a distinct
    same-type section."""
    target = verme_finger_target(LAYOUT, node_id, k)
    same_section = LAYOUT.same_section(target, node_id)
    same_type = LAYOUT.type_of(target) == LAYOUT.type_of(node_id)
    assert same_section or not same_type


@given(ids, fingers)
def test_target_displacement_at_most_one_section(node_id, k):
    """The adjustment only ever adds a single section length."""
    raw = SPACE.wrap(node_id + (1 << k))
    target = verme_finger_target(LAYOUT, node_id, k)
    assert target in (raw, LAYOUT.advance_sections(raw, 1))


@given(ids, fingers)
def test_offset_in_section_preserved(node_id, k):
    raw = SPACE.wrap(node_id + (1 << k))
    target = verme_finger_target(LAYOUT, node_id, k)
    assert LAYOUT.offset_in_section(target) == LAYOUT.offset_in_section(raw)


@given(ids, fingers)
def test_nearby_targets_unshifted(node_id, k):
    """Targets in the node's own section or the subsequent one keep the
    plain Chord distance (the paper's "except for nearby nodes")."""
    raw = SPACE.wrap(node_id + (1 << k))
    own = LAYOUT.section_index(node_id)
    if LAYOUT.section_index(raw) in (own, (own + 1) % LAYOUT.num_sections):
        assert verme_finger_target(LAYOUT, node_id, k) == raw


@given(ids, fingers)
def test_every_target_is_recognized_as_legitimate(node_id, k):
    """The §4.5 verification must accept every genuine finger target."""
    target = verme_finger_target(LAYOUT, node_id, k)
    assert is_verme_finger_target(LAYOUT, node_id, target)


@given(ids)
def test_random_keys_mostly_rejected_as_finger_targets(node_id):
    """A crawling worm cannot pass off arbitrary keys as finger
    refreshes: only the ~bits genuine targets verify."""
    legitimate = {
        verme_finger_target(LAYOUT, node_id, k) for k in range(SPACE.bits)
    }
    rejected = 0
    for probe in range(0, SPACE.size, SPACE.size // 64):
        if probe not in legitimate and not is_verme_finger_target(
            LAYOUT, node_id, probe
        ):
            rejected += 1
    assert rejected >= 55  # nearly all arbitrary probes fail verification


def test_small_fingers_stay_in_section():
    node_id = LAYOUT.make_id(3, 0, 0)
    target = verme_finger_target(LAYOUT, node_id, 1)  # distance 2
    assert LAYOUT.same_section(target, node_id)


def test_far_finger_into_same_type_section_is_displaced():
    node_id = LAYOUT.make_id(0, 0, 0)
    # Distance of exactly 2 sections lands in a same-type section...
    k = LAYOUT.section_bits + 1
    raw = SPACE.wrap(node_id + (1 << k))
    assert LAYOUT.type_of(raw) == LAYOUT.type_of(node_id)
    target = verme_finger_target(LAYOUT, node_id, k)
    # ...so it must be displaced into the next (opposite-type) section.
    assert target == LAYOUT.advance_sections(raw, 1)
    assert LAYOUT.type_of(target) != LAYOUT.type_of(node_id)


def test_far_finger_into_opposite_type_section_unshifted():
    node_id = LAYOUT.make_id(0, 0, 0)
    k = LAYOUT.section_bits  # exactly one section ahead: opposite type
    raw = SPACE.wrap(node_id + (1 << k))
    assert LAYOUT.type_of(raw) != LAYOUT.type_of(node_id)
    assert verme_finger_target(LAYOUT, node_id, k) == raw
