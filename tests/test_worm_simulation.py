"""Tests for the worm propagation engine on hand-built graphs."""

import pytest

from repro.sim import Simulator
from repro.worm import WormParams, WormSimulation, WormState


class FixedKnowledge:
    """A hand-written knowledge graph for precise assertions."""

    def __init__(self, graph):
        self.graph = graph

    def targets_of(self, index):
        return list(self.graph.get(index, []))


def run_worm(graph, vulnerable, seed=0, params=None, until=1000.0):
    sim = Simulator()
    worm = WormSimulation(
        sim,
        num_nodes=len(vulnerable),
        vulnerable=vulnerable,
        knowledge=FixedKnowledge(graph),
        params=params or WormParams(),
    )
    worm.seed(seed)
    worm.run(until=until)
    return worm


def test_chain_infection_timing():
    """0 -> 1 -> 2, with the paper's semantics: the seed scans
    immediately (10 ms) and infects (100 ms); the *target* then waits
    the 1 s activation delay before scanning onward."""
    worm = run_worm({0: [1], 1: [2], 2: []}, [True] * 3)
    assert worm.infected_count == 3
    times = dict((count, t) for t, count in worm.curve.points)
    assert times[1] == pytest.approx(0.0)
    # Node 1: scan 0.01 + infect 0.1.
    assert times[2] == pytest.approx(0.11)
    # Node 2: node 1 activates at 0.11 + 1.0, then scan + infect.
    assert times[3] == pytest.approx(0.11 + 1.0 + 0.11)


def test_invulnerable_nodes_never_infected():
    worm = run_worm({0: [1, 2], 1: [], 2: []}, [True, False, True])
    assert worm.infected_count == 2
    assert worm.state[1] is WormState.NOT_INFECTED


def test_scan_of_invulnerable_costs_a_slot():
    """Probing a non-vulnerable target takes a scan interval."""
    worm = run_worm({0: [1, 2], 1: [], 2: []}, [True, False, True])
    times = dict((count, t) for t, count in worm.curve.points)
    # Two scans (miss on 1, hit on 2) plus the infection time.
    assert times[2] == pytest.approx(0.02 + 0.1)


def test_already_infected_target_skipped():
    worm = run_worm({0: [1], 1: [0, 2], 2: []}, [True] * 3)
    assert worm.infected_count == 3
    # No double counting.
    counts = [c for _t, c in worm.curve.points]
    assert counts == sorted(set(counts))


def test_disconnected_component_survives():
    worm = run_worm({0: [1], 1: [], 5: [6], 6: []}, [True] * 7)
    assert worm.infected_count == 2
    assert worm.state[5] is WormState.NOT_INFECTED


def test_fanout_infections_serialized_by_attacker():
    """One attacker infects many targets one at a time."""
    n = 11
    worm = run_worm({0: list(range(1, n))}, [True] * n)
    assert worm.infected_count == n
    times = [t for t, _c in worm.curve.points]
    assert times == sorted(times)
    # Each infection costs the attacker infect_time + a scan interval.
    assert times[-1] >= (n - 1) * 0.11 - 1e-9


def test_add_targets_wakes_idle_scanner():
    sim = Simulator()
    worm = WormSimulation(
        sim, 3, [True] * 3, FixedKnowledge({0: [], 1: [], 2: []})
    )
    worm.seed(0)
    sim.run(until=10)
    assert worm.infected_count == 1  # nothing to scan: idle
    worm.add_targets(0, [1])
    sim.run(until=20)
    assert worm.infected_count == 2
    worm.add_targets(0, [1])  # duplicate: ignored
    worm.add_targets(0, [2])
    sim.run(until=30)
    assert worm.infected_count == 3


def test_add_targets_to_uninfected_node_ignored():
    sim = Simulator()
    worm = WormSimulation(sim, 2, [True] * 2, FixedKnowledge({}))
    worm.add_targets(0, [1])
    sim.run(until=10)
    assert worm.infected_count == 0


def test_self_targets_ignored():
    worm = run_worm({0: [0, 1], 1: []}, [True, True])
    assert worm.infected_count == 2


def test_seed_idempotent():
    sim = Simulator()
    worm = WormSimulation(sim, 2, [True] * 2, FixedKnowledge({0: [1]}))
    worm.seed(0)
    worm.seed(0)
    sim.run(until=10)
    assert worm.infected_count == 2


def test_vulnerable_mask_length_checked():
    with pytest.raises(ValueError):
        WormSimulation(Simulator(), 3, [True], FixedKnowledge({}))


def test_concurrent_attackers_single_infection():
    """Two attackers racing for one target: exactly one infection."""
    worm = run_worm({0: [1, 2], 1: [2], 2: []}, [True] * 3)
    assert worm.infected_count == 3
    assert worm.infections_completed == 2  # 1 and 2, each once


def test_scans_counted():
    worm = run_worm({0: [1, 2, 3], 1: [], 2: [], 3: []}, [True, False, False, True])
    assert worm.scans_performed == 3


def test_infecting_attacker_loses_race_returns_to_scanning():
    """An attacker mid-INFECTING whose target is infected by a third
    node first must return to SCANNING without double-counting
    ``infections_completed`` or re-recording the curve."""
    sim = Simulator()
    worm = WormSimulation(
        sim, 4, [True] * 4, FixedKnowledge({0: [2], 1: [2, 3], 2: [], 3: []})
    )
    # Two seeds race for node 2: node 0 (seeded first, so its
    # _infection_done fires first among ties) wins; node 1 loses.
    worm.seed(0)
    worm.seed(1)

    # Both scan at t=0.01 and schedule infection completion at t=0.11.
    sim.run(until=0.105)
    assert worm.state[0] is WormState.INFECTING
    assert worm.state[1] is WormState.INFECTING
    assert worm.infections_completed == 0

    # At t=0.11 node 0 completes; node 1 finds 2 already infected.
    sim.run(until=0.115)
    assert worm.state[2] is not WormState.NOT_INFECTED
    assert worm.infections_completed == 1          # not double-counted
    assert worm.infected_count == 3                # 0, 1, 2
    assert worm.state[1] is WormState.SCANNING     # loser resumed scanning

    # The loser keeps working through its queue: it infects node 3.
    sim.run(until=10.0)
    assert worm.infected_count == 4
    assert worm.infections_completed == 2          # 2 and 3, once each
    # The curve records each infection exactly once, monotonically.
    counts = [c for _t, c in worm.curve.points]
    assert counts == [1, 2, 3, 4]
