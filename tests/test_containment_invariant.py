"""THE paper invariant (§3): no node's routing state may contain a node
of the same type from a *different* section — this is exactly what
confines a topological worm to its island.

Checked three ways: on converged protocol rings, on static snapshots at
scale, and as a hypothesis property over random populations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.state import NodeInfo
from repro.ids import IdSpace, VermeIdLayout
from repro.net import NodeAddress
from repro.overlay import VermeStaticOverlay
from repro.worm.knowledge import verme_knowledge

from conftest import build_verme_ring


def assert_containment(layout, node_id, known_ids):
    """No same-type knowledge outside the node's own section."""
    for known in known_ids:
        if known == node_id:
            continue
        same_type = layout.same_type(known, node_id)
        same_section = layout.same_section(known, node_id)
        adjacent = layout.section_index(known) in (
            layout.section_index(node_id),
            (layout.section_index(node_id) + 1) % layout.num_sections,
            (layout.section_index(node_id) - 1) % layout.num_sections,
        )
        # Successor/predecessor lists may spill into *adjacent* sections
        # (which are opposite-type by construction); fingers are either
        # in-section or opposite-type.  What must NEVER happen:
        assert not (same_type and not same_section), (
            f"node {node_id:#x} knows same-type node {known:#x} "
            f"in a different section"
        )
        del adjacent  # documented above; the assert is the invariant


def test_protocol_ring_routing_state_contained():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=3)
    for node in ring.nodes:
        known = (
            [e.node_id for e in node.successors]
            + [e.node_id for e in node.predecessors]
            + [e.node_id for e in node.fingers.entries()]
        )
        # Successor lists can legally cross into the next (opposite
        # type) section; the invariant is about same-type leakage only.
        assert_containment(ring.layout, node.node_id, known)


def test_protocol_ring_stays_contained_after_maintenance():
    ring = build_verme_ring(num_nodes=96, num_sections=8, seed=5)
    ring.sim.run(until=300)  # several stabilization + finger rounds
    for node in ring.nodes:
        known = (
            [e.node_id for e in node.successors]
            + [e.node_id for e in node.predecessors]
            + [e.node_id for e in node.fingers.entries()]
        )
        assert_containment(ring.layout, node.node_id, known)


def test_static_snapshot_contained_at_scale():
    space = IdSpace(32)
    layout = VermeIdLayout.for_sections(space, 64)
    rng = random.Random(7)
    used = set()
    infos = []
    for i in range(2000):
        nid = layout.random_id(rng, i % 2)
        while nid in used:
            nid = layout.random_id(rng, i % 2)
        used.add(nid)
        infos.append(NodeInfo(nid, NodeAddress(i)))
    overlay = VermeStaticOverlay(layout, infos)
    for idx in range(0, len(overlay), 37):  # sample nodes
        entries = overlay.routing_entries(idx, num_successors=10, num_predecessors=10)
        assert_containment(
            layout, overlay.ids[idx], [e.node_id for e in entries]
        )


def test_worm_knowledge_is_single_section():
    """The worm's (type-filtered) knowledge never leaves the island."""
    space = IdSpace(32)
    layout = VermeIdLayout.for_sections(space, 32)
    rng = random.Random(11)
    used = set()
    infos = []
    for i in range(800):
        nid = layout.random_id(rng, i % 2)
        while nid in used:
            nid = layout.random_id(rng, i % 2)
        used.add(nid)
        infos.append(NodeInfo(nid, NodeAddress(i)))
    overlay = VermeStaticOverlay(layout, infos)
    knowledge = verme_knowledge(overlay)
    for idx in range(0, len(overlay), 23):
        own_section = layout.section_index(overlay.ids[idx])
        for target in knowledge.targets_of(idx):
            assert layout.section_index(overlay.ids[target]) == own_section


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_containment_property_random_populations(seed):
    space = IdSpace(24)
    layout = VermeIdLayout.for_sections(space, 16)
    rng = random.Random(seed)
    used = set()
    infos = []
    for i in range(rng.randint(8, 120)):
        nid = layout.random_id(rng, rng.randint(0, 1))
        while nid in used:
            nid = layout.random_id(rng, rng.randint(0, 1))
        used.add(nid)
        infos.append(NodeInfo(nid, NodeAddress(i)))
    overlay = VermeStaticOverlay(layout, infos)
    for idx in range(len(overlay)):
        fingers = overlay.finger_table(idx)
        assert_containment(
            layout, overlay.ids[idx], [e.node_id for e in fingers.values()]
        )
