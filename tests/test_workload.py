"""The workload package: key models, arrival shapes, determinism."""

import math
import random
from collections import Counter

import pytest

from repro.workload import (
    ConstantShape,
    DiurnalShape,
    LookupGenerator,
    RampShape,
    SpikeShape,
    TraceKeys,
    UniformKeys,
    ZipfKeys,
    build_generator,
    overload_shape,
    rank_to_key,
)

BITS = 64


# -- determinism -------------------------------------------------------------


def _stream(generator, seed, n=2000):
    """(key, delay) pairs drawn the way the live engines draw them."""
    rng = random.Random(seed)
    out = []
    now = 0.0
    for _ in range(n):
        key = generator.draw_key(rng)
        delay = generator.next_delay(rng, now, 100)
        now += delay
        out.append((key, delay))
    return out


@pytest.mark.parametrize("workload", ["poisson", "zipf"])
@pytest.mark.parametrize("overload", ["none", "spike", "ramp", "diurnal"])
def test_generator_deterministic_per_seed(workload, overload):
    """Same seed, freshly built generators: byte-identical streams."""
    make = lambda: build_generator(  # noqa: E731
        workload, overload, BITS, 8.0, duration_s=600.0, warmup_s=60.0
    )
    a = _stream(make(), seed=7)
    b = _stream(make(), seed=7)
    assert a == b
    assert _stream(make(), seed=8) != a


def test_rank_to_key_stable_and_distinct():
    keys = [rank_to_key(r, BITS) for r in range(1, 2000)]
    assert len(set(keys)) == len(keys)
    assert all(0 <= k < 2**BITS for k in keys)
    # Stable across calls/processes (pure splitmix64, no RNG).
    assert keys[:3] == [rank_to_key(r, BITS) for r in (1, 2, 3)]
    wide = rank_to_key(1, 160)
    assert 0 <= wide < 2**160


# -- key-popularity models ----------------------------------------------------


def test_uniform_keys_span_space():
    rng = random.Random(0)
    keys = [UniformKeys(BITS).draw(rng) for _ in range(500)]
    assert all(0 <= k < 2**BITS for k in keys)
    assert len(set(keys)) == len(keys)  # 64-bit collisions ~impossible


def test_zipf_head_mass_matches_law():
    """Empirical head frequencies track the normalised 1/r^s weights."""
    zipf = ZipfKeys(BITS, s=0.99, universe=10_000)
    rng = random.Random(42)
    n = 60_000
    counts = Counter(zipf.draw(rng) for _ in range(n))
    for rank in (0, 1, 9):
        observed = counts[zipf.key_of(rank)] / n
        assert observed == pytest.approx(zipf.weight_of(rank), rel=0.15)
    # The head dominates: rank 0 beats rank 99 by ~100^0.99.
    assert counts[zipf.key_of(0)] > 10 * counts[zipf.key_of(99)]


def test_zipf_draws_stay_in_universe():
    zipf = ZipfKeys(BITS, s=0.99, universe=50)
    universe = {zipf.key_of(r) for r in range(50)}
    rng = random.Random(1)
    assert all(zipf.draw(rng) in universe for _ in range(2000))


def test_trace_keys_cycle_without_rng():
    trace = TraceKeys([11, 22, 33])
    rng = random.Random(5)
    state = rng.getstate()
    drawn = [trace.draw(rng) for _ in range(7)]
    assert drawn == [11, 22, 33, 11, 22, 33, 11]
    assert rng.getstate() == state  # consumed no randomness


# -- arrival shapes ------------------------------------------------------------


def test_spike_shape_window_and_multiplier():
    shape = SpikeShape(start=100.0, duration=50.0, factor=8.0)
    assert shape.multiplier(99.9) == 1.0
    assert shape.multiplier(100.0) == 8.0
    assert shape.multiplier(149.9) == 8.0
    assert shape.multiplier(150.0) == 1.0
    assert shape.window() == (100.0, 150.0)


def test_ramp_shape_is_linear():
    shape = RampShape(start=0.0, end=100.0, factor=4.0)
    assert shape.multiplier(0.0) == 1.0
    assert shape.multiplier(50.0) == pytest.approx(2.5)
    assert shape.multiplier(100.0) == 4.0


def test_diurnal_shape_oscillates_with_period():
    shape = DiurnalShape(period=100.0, amplitude=0.6)
    values = [shape.multiplier(t) for t in range(0, 100, 5)]
    assert max(values) == pytest.approx(1.6, abs=0.05)
    assert min(values) >= 0.05
    assert shape.multiplier(0.0) == pytest.approx(shape.multiplier(100.0))
    assert shape.window() is None


def test_constant_shape_is_stationary():
    shape = ConstantShape()
    assert shape.multiplier(0.0) == shape.multiplier(1e6) == 1.0
    assert shape.window() is None


def test_overload_shape_placement():
    spike = overload_shape("spike", duration_s=600.0, warmup_s=60.0)
    t0, t1 = spike.window()
    assert 60.0 < t0 < t1 <= 600.0
    with pytest.raises(ValueError, match="unknown overload"):
        overload_shape("tsunami", 600.0, 60.0)


def test_build_generator_validates_presets():
    with pytest.raises(ValueError, match="unknown workload"):
        build_generator("pareto", "none", BITS, 8.0, 600.0, 60.0)


def test_generator_rate_modulation():
    """Mean inter-arrival shrinks by the shape factor inside the spike."""
    gen = LookupGenerator(
        UniformKeys(BITS), SpikeShape(100.0, 50.0, 8.0), mean_interval_s=8.0
    )
    rng = random.Random(0)
    n = 4000
    pre = sum(gen.next_delay(rng, 10.0, 100) for _ in range(n)) / n
    dur = sum(gen.next_delay(rng, 120.0, 100) for _ in range(n)) / n
    assert pre == pytest.approx(8.0 / 100, rel=0.1)
    assert dur == pytest.approx(8.0 / 100 / 8.0, rel=0.1)
    assert math.isfinite(pre) and math.isfinite(dur)
