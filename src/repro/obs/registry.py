"""Metrics registry: named counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` holds every metric of a run, keyed by a
dotted name (``"net.drops.partition"``, ``"chord.lookup.hops"``).
Instruments are created on first use (`counter()` / `gauge()` /
`histogram()` are get-or-create) and the whole registry snapshots to a
plain dict whose JSON rendering is *byte-stable*: keys are sorted and
every value is deterministic for a deterministic run.  That stability
is load-bearing — ``tests/test_metrics_determinism.py`` asserts the
serial and multiprocess experiment paths produce identical bytes.

Parallel runs merge worker snapshots with :meth:`MetricsRegistry
.merge_snapshot` in a fixed cell order; counters add, gauges overwrite
(last merge wins), histograms add bucket-wise.  The serial path uses
the same per-cell snapshot-and-merge sequence so float accumulation
order is identical either way.

Nothing here touches the simulation hot path by itself — hot code
guards every call site with ``if OBS.metrics is not None`` (see
:mod:`repro.obs`), so a disabled run never constructs or updates an
instrument.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Default histogram bucket upper bounds (seconds-ish scale, but any
#: unit works); the last implicit bucket is +inf.
DEFAULT_BUCKETS: Sequence[float] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

#: Snapshot schema identifier, bumped on incompatible change.
SNAPSHOT_SCHEMA = "repro.obs.metrics/1"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A last-write-wins numeric value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the measured quantity."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets plus +inf overflow).

    ``counts[i]`` counts observations ``<= bounds[i]``; the final entry
    counts the overflow.  ``sum``/``min``/``max`` summarise the raw
    sample without retaining it.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = [float(b) for b in bounds]
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError("histogram bounds must be strictly increasing")
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: List[float] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        # Bucket i counts values <= bounds[i]; bisect_left sends an
        # exact bound hit into its own bucket and overflow to the end.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class MetricsRegistry:
    """All instruments of one run, keyed by dotted name."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (get-or-create) -----------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram under ``name``; ``bounds`` applies on creation
        only and must match on later calls that pass it."""
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(
                bounds if bounds is not None else DEFAULT_BUCKETS
            )
        elif bounds is not None and [float(b) for b in bounds] != h.bounds:
            raise ValueError(f"histogram {name!r} re-registered with new bounds")
        return h

    def _check_free(self, name: str, owner: Dict[str, Any]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not owner and name in kind:
                raise ValueError(
                    f"metric name {name!r} already registered as another kind"
                )

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The registry as a plain, JSON-serialisable dict."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "min": None if h.count == 0 else h.min,
                    "max": None if h.count == 0 else h.max,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def to_json(self) -> str:
        """Byte-stable JSON rendering of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def to_csv(self) -> str:
        """Flat CSV rendering: ``kind,name,field,value`` rows, sorted."""
        lines = ["kind,name,field,value"]
        for name, c in sorted(self._counters.items()):
            lines.append(f"counter,{name},value,{c.value}")
        for name, g in sorted(self._gauges.items()):
            lines.append(f"gauge,{name},value,{g.value!r}")
        for name, h in sorted(self._histograms.items()):
            lines.append(f"histogram,{name},count,{h.count}")
            lines.append(f"histogram,{name},sum,{h.sum!r}")
            for bound, count in zip(h.bounds, h.counts):
                lines.append(f"histogram,{name},le_{bound!r},{count}")
            lines.append(f"histogram,{name},overflow,{h.counts[-1]}")
        return "\n".join(lines) + "\n"

    # -- merging (parallel collection) ----------------------------------------

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (merge order is the fixed cell order, so "last write
        wins" is deterministic).
        """
        if snap.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(f"cannot merge snapshot schema {snap.get('schema')!r}")
        for name, value in snap["counters"].items():
            self.counter(name).inc(value)
        for name, value in snap["gauges"].items():
            self.gauge(name).set(value)
        for name, data in snap["histograms"].items():
            h = self.histogram(name, data["bounds"])
            if len(h.counts) != len(data["counts"]):
                raise ValueError(f"histogram {name!r} bucket shape mismatch")
            for i, c in enumerate(data["counts"]):
                h.counts[i] += c
            h.count += data["count"]
            h.sum += data["sum"]
            if data["min"] is not None and data["min"] < h.min:
                h.min = data["min"]
            if data["max"] is not None and data["max"] > h.max:
                h.max = data["max"]

    def reset(self) -> None:
        """Drop every registered instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def flatten(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a snapshot to ``{name: number}`` (histograms contribute
    ``<name>.count`` / ``<name>.sum``) — the shape benchmark records
    embed in their ``metrics`` block."""
    flat: Dict[str, float] = {}
    for name, value in snapshot.get("counters", {}).items():
        flat[name] = float(value)
    for name, value in snapshot.get("gauges", {}).items():
        flat[name] = float(value)
    for name, data in snapshot.get("histograms", {}).items():
        flat[name + ".count"] = float(data["count"])
        flat[name + ".sum"] = float(data["sum"])
    return flat


def iter_counters(snapshot: Dict[str, Any], prefix: str) -> Iterable[tuple]:
    """Yield ``(name, value)`` for snapshot counters under ``prefix``."""
    for name, value in snapshot.get("counters", {}).items():
        if name.startswith(prefix):
            yield name, value
