"""Observability: metrics registry, structured tracing, profiling hooks.

``repro.obs`` is the uniform way to see *why* a run behaved the way it
did — lookup hop counts, worm state transitions, drop causes, RPC
timeout storms — without paying for the instrumentation when it is off.

Three instruments, one switch:

* **Metrics** (:mod:`repro.obs.registry`) — named counters, gauges and
  fixed-bucket histograms, snapshot-able to byte-stable JSON or CSV.
  ``runner.py <figure> --metrics out.json`` writes one per run, and
  worker-process snapshots merge deterministically so serial and
  ``--workers N`` runs produce identical bytes.
* **Traces** (:mod:`repro.obs.trace`) — Chrome ``trace_event`` JSON on
  the *simulated* clock, viewable in Perfetto: kernel run spans, RPC
  call/reply/timeout/retransmit, lookup spans, DHT fetch phases, worm
  seed/activate/scan/infection events.  ``runner.py <figure> --trace
  out.trace.json``.
* **Profiling** (:mod:`repro.obs.profile`) — per-phase wall/CPU time,
  kernel event rates and peak RSS, printed in run reports (never in
  metrics snapshots, whose bytes must be deterministic).

**The zero-cost-when-disabled contract.**  All shared state lives in
the single module-level :data:`OBS` holder.  When observability is
disabled (the default) its ``metrics``/``trace``/``profile`` attributes
are all ``None``, and every instrumentation site in the hot paths is
guarded by one attribute load and an ``is not None`` test::

    from ..obs import OBS
    ...
    trace = OBS.trace
    if trace is not None:          # the whole cost when disabled
        trace.instant("rpc.call", sim.now, lane="rpc", ...)

No observability object is ever constructed, and no per-event
allocation happens, on the disabled path —
``tests/test_obs.py::test_disabled_mode_allocates_nothing`` pins that
with a tracemalloc audit.  ``scripts/compare_bench.py`` holds the
perf-gated benchmarks to the same story end to end.

See ``docs/observability.md`` for the user guide and worked examples.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional, Tuple

from .profile import PhaseProfiler, peak_rss_kib
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flatten,
)
from .trace import (
    LANES,
    TraceRecorder,
    validate_trace_file,
    validate_trace_obj,
)

__all__ = [
    "OBS",
    "ObsState",
    "enable",
    "disable",
    "enabled",
    "collecting",
    "cell_scope",
    "maybe_phase",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TraceRecorder",
    "PhaseProfiler",
    "flatten",
    "peak_rss_kib",
    "validate_trace_file",
    "validate_trace_obj",
    "DEFAULT_BUCKETS",
    "LANES",
]


class ObsState:
    """The module-level observability switch (see the module docstring).

    Exactly one instance exists (:data:`OBS`).  Each attribute is either
    ``None`` (that instrument is off) or the live instrument object.
    """

    __slots__ = ("metrics", "trace", "profile", "invariants")

    def __init__(self) -> None:
        self.metrics: Optional[MetricsRegistry] = None
        self.trace: Optional[TraceRecorder] = None
        self.profile: Optional[PhaseProfiler] = None
        #: The online invariant checker
        #: (:class:`repro.invariants.InvariantChecker`), installed
        #: explicitly by callers — e.g. ``runner.py --invariants`` —
        #: rather than by :func:`enable`, which manages only the three
        #: observability instruments.  Same contract: ``None`` = off,
        #: hot-path hooks pay one attribute load + ``is not None``.
        self.invariants: Optional[Any] = None


#: The one global observability state; hot paths read its attributes
#: directly.  All ``None`` = disabled = zero instrumentation cost.
OBS = ObsState()


def enabled() -> bool:
    """True if any observability instrument is currently on."""
    return (
        OBS.metrics is not None
        or OBS.trace is not None
        or OBS.profile is not None
        or OBS.invariants is not None
    )


def enable(
    metrics: bool = True, trace: bool = False, profile: bool = False
) -> ObsState:
    """Turn on the requested instruments (fresh instances) and return
    :data:`OBS`.  Instruments not requested are turned *off*."""
    OBS.metrics = MetricsRegistry() if metrics else None
    OBS.trace = TraceRecorder() if trace else None
    OBS.profile = PhaseProfiler() if profile else None
    return OBS


def disable() -> None:
    """Turn every instrument (and the invariant checker) off — the
    zero-cost default."""
    OBS.metrics = None
    OBS.trace = None
    OBS.profile = None
    OBS.invariants = None


@contextmanager
def collecting(metrics: bool = True, trace: bool = False, profile: bool = False):
    """Context manager: :func:`enable` on entry, restore the previous
    state on exit.  Yields :data:`OBS` with the fresh instruments."""
    previous = (OBS.metrics, OBS.trace, OBS.profile)
    try:
        yield enable(metrics=metrics, trace=trace, profile=profile)
    finally:
        OBS.metrics, OBS.trace, OBS.profile = previous


def cell_scope() -> Tuple[bool, bool]:
    """What an experiment *cell* should collect, derived from the
    caller's state: ``(metrics, trace)``.  Used by the parallel runner
    to replicate the driving process's collection mode inside workers."""
    return OBS.metrics is not None, OBS.trace is not None


def run_cell_collected(fn, args) -> Tuple[Any, Optional[Dict[str, Any]]]:
    """Run one experiment cell under a *fresh* metrics registry and
    return ``(result, snapshot)``.

    This is the unit of deterministic metrics collection: both the
    serial and the multiprocess experiment paths run every cell through
    this function and merge the snapshots in cell order, which is what
    makes ``--metrics`` output byte-identical at any worker count.  The
    caller's trace recorder (if any) keeps accumulating — traces are a
    serial-only feature.
    """
    previous = OBS.metrics
    OBS.metrics = MetricsRegistry()
    try:
        result = fn(*args)
        return result, OBS.metrics.snapshot()
    finally:
        OBS.metrics = previous


def maybe_phase(name: str, sim: Optional[Any] = None):
    """``OBS.profile.phase(...)`` when profiling is on, else a no-op
    context manager — callers bracket phases unconditionally."""
    profiler = OBS.profile
    if profiler is not None:
        return profiler.phase(name, sim)
    return _NULL_CONTEXT


class _NullContext:
    """Reusable no-op context manager (no allocation per use)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()
