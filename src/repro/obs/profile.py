"""Lightweight profiling hooks: per-phase wall/CPU time and peak RSS.

This is the third leg of :mod:`repro.obs`, unifying the timing and
memory accounting previously scattered across the perf harness
(``benchmarks/perf/perf_common.peak_rss_kib``) and the parallel runner
(``repro.experiments.parallel.last_worker_rss_kib``): a
:class:`PhaseProfiler` brackets named phases of a run
(``with profiler.phase("build"): ...``) and records wall seconds, CPU
seconds, and — when a phase is given a :class:`~repro.sim.engine
.Simulator` — the kernel event delta, from which it derives the phase's
event rate.

Profiling numbers are **wall-clock facts, not simulation facts**: they
differ run to run, so they are never part of a metrics snapshot (whose
bytes must be deterministic).  The runner prints them in the run report
instead, and benchmark records keep them in their own timing fields.
"""

from __future__ import annotations

import resource
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional


def peak_rss_kib() -> int:
    """High-water resident set size of this process (KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        rss //= 1024
    return int(rss)


class PhaseProfiler:
    """Accumulates per-phase wall/CPU time and event counts.

    Re-entering a phase name accumulates into the same record, so a
    loop of cells can be profiled under one phase.  Phases preserve
    first-entry order in :meth:`summary`.
    """

    __slots__ = ("_phases", "_order")

    def __init__(self) -> None:
        self._phases: Dict[str, Dict[str, float]] = {}
        self._order: List[str] = []

    @contextmanager
    def phase(self, name: str, sim: Optional[Any] = None):
        """Bracket one phase; ``sim`` adds kernel-event accounting."""
        record = self._phases.get(name)
        if record is None:
            record = self._phases[name] = {
                "wall_s": 0.0, "cpu_s": 0.0, "events": 0, "entries": 0,
            }
            self._order.append(name)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        events0 = sim.events_processed if sim is not None else 0
        try:
            yield record
        finally:
            record["wall_s"] += time.perf_counter() - wall0
            record["cpu_s"] += time.process_time() - cpu0
            if sim is not None:
                record["events"] += sim.events_processed - events0
            record["entries"] += 1

    def summary(self) -> Dict[str, Any]:
        """Phases in first-entry order plus the process's peak RSS."""
        phases = {}
        for name in self._order:
            record = dict(self._phases[name])
            wall = record["wall_s"]
            if record["events"] and wall > 0:
                record["events_per_s"] = record["events"] / wall
            phases[name] = record
        return {"phases": phases, "peak_rss_kib": peak_rss_kib()}

    def format_report(self) -> str:
        """Human-readable multi-line phase report for run summaries."""
        summary = self.summary()
        lines = []
        for name, record in summary["phases"].items():
            line = (f"  {name:<24} wall {record['wall_s']:8.2f}s"
                    f"  cpu {record['cpu_s']:8.2f}s")
            if "events_per_s" in record:
                line += (f"  {int(record['events']):,} events"
                         f" ({record['events_per_s']:,.0f}/s)")
            lines.append(line)
        lines.append(f"  peak RSS {summary['peak_rss_kib']:,} KiB")
        return "\n".join(lines)
