"""Structured trace recorder emitting Chrome ``trace_event`` JSON.

A :class:`TraceRecorder` accumulates events in the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``:
a top-level ``{"traceEvents": [...]}`` object whose events carry a
name, a phase (``"i"`` instant, ``"X"`` complete-with-duration, ``"C"``
counter), a timestamp in *microseconds*, and pid/tid lane ids.

Timestamps here are **simulated** time (``Simulator.now`` seconds
converted to µs), so the Perfetto timeline shows the experiment's
logical schedule, not wall clock: worm batch ticks, RPC
call→reply/timeout arcs, lookup spans and DHT fetch phases all land at
the instant they logically happened.  ``pid`` is always 0 (one
simulated world); ``tid`` groups events into lanes by subsystem
(:data:`LANES`).

Determinism: events append in callback execution order, which for a
fixed seed is fixed — two runs of the same experiment produce
byte-identical trace files.  ``tests/test_obs_trace.py`` relies on this
to assert the legacy and columnar worm engines emit *identical* logical
traces.

``python -m repro.obs.trace --validate run.trace.json`` checks a file
against the subset of the trace_event schema this module emits (CI's
trace-smoke job runs exactly that).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Trace lane (``tid``) per subsystem — stable small ints so Perfetto
#: shows one named row per layer.
LANES: Dict[str, int] = {
    "sim": 0,
    "net": 1,
    "rpc": 2,
    "lookup": 3,
    "dht": 4,
    "worm": 5,
    "faults": 6,
    "experiment": 7,
}

#: Phases this recorder emits (and the validator accepts).
_PHASES = frozenset({"i", "X", "C", "M"})


class TraceRecorder:
    """Accumulates trace events; one per run, written once at the end."""

    __slots__ = ("events", "metadata")

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self.metadata: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self.events)

    # -- emitters -------------------------------------------------------------

    def instant(
        self,
        name: str,
        ts_s: float,
        lane: str = "experiment",
        cat: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """One instantaneous event at simulated time ``ts_s`` seconds."""
        event: Dict[str, Any] = {
            "name": name,
            "ph": "i",
            "ts": ts_s * 1e6,
            "pid": 0,
            "tid": LANES.get(lane, LANES["experiment"]),
            "s": "t",
        }
        if cat is not None:
            event["cat"] = cat
        if args is not None:
            event["args"] = args
        self.events.append(event)

    def complete(
        self,
        name: str,
        ts_s: float,
        dur_s: float,
        lane: str = "experiment",
        cat: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A span: started at ``ts_s``, lasted ``dur_s`` (seconds)."""
        event: Dict[str, Any] = {
            "name": name,
            "ph": "X",
            "ts": ts_s * 1e6,
            "dur": dur_s * 1e6,
            "pid": 0,
            "tid": LANES.get(lane, LANES["experiment"]),
        }
        if cat is not None:
            event["cat"] = cat
        if args is not None:
            event["args"] = args
        self.events.append(event)

    def counter(
        self, name: str, ts_s: float, values: Dict[str, float],
        lane: str = "experiment",
    ) -> None:
        """A counter sample Perfetto renders as a stacked area track."""
        self.events.append({
            "name": name,
            "ph": "C",
            "ts": ts_s * 1e6,
            "pid": 0,
            "tid": LANES.get(lane, LANES["experiment"]),
            "args": dict(values),
        })

    # -- output ---------------------------------------------------------------

    def _lane_metadata(self) -> List[Dict[str, Any]]:
        used = {e["tid"] for e in self.events}
        return [
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": 0,
                "tid": tid,
                "args": {"name": lane},
            }
            for lane, tid in sorted(LANES.items(), key=lambda kv: kv[1])
            if tid in used
        ]

    def to_obj(self) -> Dict[str, Any]:
        """The full trace as a JSON-serialisable object."""
        return {
            "traceEvents": self._lane_metadata() + self.events,
            "displayTimeUnit": "ms",
            "otherData": dict(self.metadata),
        }

    def to_json(self) -> str:
        """Byte-stable JSON rendering of :meth:`to_obj`."""
        return json.dumps(self.to_obj(), sort_keys=True) + "\n"

    def write(self, path) -> Path:
        """Write the trace to ``path`` and return it."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json())
        return out


def validate_trace_obj(data: Any) -> List[str]:
    """Validate a parsed trace file; returns a list of problems
    (empty = valid against the emitted trace_event subset)."""
    errors: List[str] = []
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' array"]
    if not events:
        errors.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty 'name'")
        phase = event.get("ph")
        if phase not in _PHASES:
            errors.append(f"{where}: bad phase {phase!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: bad 'ts' {ts!r}")
        for lane_field in ("pid", "tid"):
            v = event.get(lane_field)
            if not isinstance(v, int) or isinstance(v, bool):
                errors.append(f"{where}: bad {lane_field!r} {v!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(f"{where}: complete event with bad 'dur' {dur!r}")
        if phase == "C" and not isinstance(event.get("args"), dict):
            errors.append(f"{where}: counter event without 'args'")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors


def validate_trace_file(path) -> List[str]:
    """Read + parse + validate one trace file; returns problems."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read trace: {exc}"]
    return validate_trace_obj(data)


def main(argv=None) -> int:
    """CLI: ``python -m repro.obs.trace --validate trace.json [...]``."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.trace",
        description="Validate Chrome trace_event JSON files.",
    )
    parser.add_argument("--validate", nargs="+", metavar="FILE", required=True,
                        help="trace files to check")
    args = parser.parse_args(argv)
    status = 0
    for path in args.validate:
        problems = validate_trace_file(path)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            count = len(json.loads(Path(path).read_text())["traceEvents"])
            print(f"ok: {path} ({count} events)")
    return status


if __name__ == "__main__":
    sys.exit(main())
