"""Shared construction helpers for the experiment drivers.

Builds complete Chord or Verme rings (nodes + network + instant
bootstrap) and provides the node factories the churn driver uses to
rejoin replacements through the real protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..chord.config import OverlayConfig
from ..chord.node import ChordNode
from ..chord.ring import Population, instant_bootstrap
from ..crypto.certificates import CertificateAuthority
from ..ids.assignment import NodeType
from ..ids.sections import VermeIdLayout
from ..net.addressing import NodeAddress
from ..net.network import Network
from ..sim import RngRegistry, Simulator
from ..verme.node import VermeNode


@dataclass
class BuiltRing:
    """A ready-to-run overlay: live nodes plus the pieces drivers need."""

    sim: Simulator
    network: Network
    config: OverlayConfig
    nodes: List[ChordNode]
    population: Population
    factory: "ChordNodeFactory"


class ChordNodeFactory:
    """Creates Chord nodes with fresh uniformly random ids."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: OverlayConfig,
        rngs: RngRegistry,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self.rngs = rngs
        self._id_rng = rngs.stream("node-ids")
        self._used_ids: Set[int] = set()

    def _fresh_id(self) -> int:
        while True:
            candidate = self._id_rng.getrandbits(self.config.space.bits)
            if candidate not in self._used_ids:
                self._used_ids.add(candidate)
                return candidate

    def create(self, host_slot: int, incarnation: int) -> ChordNode:
        address = NodeAddress(host_slot, incarnation)
        jitter = self.rngs.stream(f"jitter-{host_slot}-{incarnation}")
        return ChordNode(
            self.sim, self.network, self.config, self._fresh_id(), address, jitter
        )


class VermeNodeFactory(ChordNodeFactory):
    """Creates Verme nodes; each host slot has a fixed platform type
    (machines do not change platforms when their node restarts)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: OverlayConfig,
        rngs: RngRegistry,
        layout: VermeIdLayout,
        ca: Optional[CertificateAuthority] = None,
    ) -> None:
        super().__init__(sim, network, config, rngs)
        self.layout = layout
        self.ca = ca if ca is not None else CertificateAuthority()

    def type_for_host(self, host_slot: int) -> NodeType:
        return NodeType(host_slot % 2)

    def _fresh_typed_id(self, node_type: NodeType) -> int:
        while True:
            candidate = self.layout.random_id(self._id_rng, node_type)
            if candidate not in self._used_ids:
                self._used_ids.add(candidate)
                return candidate

    def create(self, host_slot: int, incarnation: int) -> VermeNode:
        node_type = self.type_for_host(host_slot)
        node_id = self._fresh_typed_id(node_type)
        cert, keys = self.ca.issue(node_id, node_type)
        address = NodeAddress(host_slot, incarnation)
        jitter = self.rngs.stream(f"jitter-{host_slot}-{incarnation}")
        return VermeNode(
            self.sim,
            self.network,
            self.config,
            self.layout,
            cert,
            keys,
            self.ca,
            address,
            jitter,
        )


def build_ring(
    sim: Simulator,
    network: Network,
    config: OverlayConfig,
    num_nodes: int,
    rngs: RngRegistry,
    layout: Optional[VermeIdLayout] = None,
) -> BuiltRing:
    """Create ``num_nodes`` nodes (Verme when ``layout`` is given) on
    host slots 0..n-1, instantly bootstrapped into a converged ring."""
    if layout is not None:
        factory: ChordNodeFactory = VermeNodeFactory(
            sim, network, config, rngs, layout
        )
    else:
        factory = ChordNodeFactory(sim, network, config, rngs)
    nodes = [factory.create(slot, 0) for slot in range(num_nodes)]
    instant_bootstrap(nodes)
    population = Population()
    for node in nodes:
        population.add(node)
    return BuiltRing(sim, network, config, nodes, population, factory)
