"""Parallel execution of independent experiment cells.

The figure drivers all decompose into *cells* — one (system or
scenario, parameter, run-index) simulation whose result depends only on
its own arguments, seed derivation included.  That makes the sweep
embarrassingly parallel: this module fans cells across a
:mod:`multiprocessing` pool and merges the results in a fixed cell
order, so the output is **bit-identical** to the serial path no matter
how many workers run or how they interleave.

Determinism contract:

* a cell function must be a module-level callable (picklable) whose
  result is a pure function of its arguments;
* results are collected with ``Pool.map`` (order-preserving) and
  aggregated in the same order the serial loops use;
* ``workers=None`` or ``workers <= 1`` short-circuits to an in-process
  loop — no pool, no pickling, exactly the code path the serial
  drivers run.

Metrics collection (``--metrics``) rides the same contract: when the
caller has ``repro.obs`` metrics enabled, every cell — serial or pooled
— runs under its own fresh registry and the per-cell snapshots merge
into the caller's registry in cell order, so the merged snapshot is
byte-identical at any worker count
(``tests/test_metrics_determinism.py``).  Traces are serial-only: a
pool worker's trace events would be lost, which is why the runner
forces ``--workers 1`` under ``--trace``.

``python -m repro.experiments.runner fig8 --workers 4`` is the CLI
entry point.
"""

from __future__ import annotations

import multiprocessing
import resource
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import OBS, run_cell_collected
from ..worm.model import InfectionCurve
from ..worm.scenarios import SCENARIOS, WormRunResult, WormScenarioConfig
from .ablations import (
    run_load_comparison,
    run_multitype_containment,
    run_naive_finger_ablation,
    run_replication_availability,
)
from .dht_ops import (
    DHT_SYSTEMS,
    DhtCellResult,
    DhtExperimentConfig,
    run_dht_cell,
)
from .fig5_lookup_latency import SYSTEMS as FIG5_SYSTEMS
from .fig5_lookup_latency import Fig5Config, average_fig5_rows, run_cell
from .fig8_worm_propagation import (
    Fig8Config,
    run_fig8_cell,
    summarise_fig8_runs,
)
from .records import Fig5Row, Fig8Row

#: A cell: (module-level function, argument tuple).
Cell = Tuple[Callable[..., Any], Tuple[Any, ...]]

#: Peak RSS (KiB) per executing process of the most recent
#: :func:`map_cells` call, keyed by process name (``MainProcess`` for
#: the serial path).  Purely observational — results are unaffected.
_last_worker_rss_kib: Dict[str, int] = {}


def _peak_rss_kib() -> int:
    """High-water resident set size of this process (KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        rss //= 1024
    return int(rss)


def _run_cell(cell: Cell) -> Any:
    fn, args = cell
    return fn(*args)


def _run_cell_rss(cell: Cell) -> Tuple[Any, str, int]:
    """Run one cell in a pool worker and report the worker's peak RSS."""
    fn, args = cell
    result = fn(*args)
    return result, multiprocessing.current_process().name, _peak_rss_kib()


def _run_cell_collected(cell: Cell) -> Tuple[Any, str, int, Dict[str, Any]]:
    """Like :func:`_run_cell_rss` but under a fresh metrics registry;
    the cell's snapshot travels back with the result for in-order
    merging by the parent."""
    fn, args = cell
    result, snap = run_cell_collected(fn, args)
    return result, multiprocessing.current_process().name, _peak_rss_kib(), snap


def last_worker_rss_kib() -> Dict[str, int]:
    """Per-process peak RSS of the most recent :func:`map_cells` sweep."""
    return dict(_last_worker_rss_kib)


def last_peak_rss_kib() -> Optional[int]:
    """Max peak RSS (KiB) across the most recent sweep's processes."""
    return max(_last_worker_rss_kib.values()) if _last_worker_rss_kib else None


def map_cells(cells: Sequence[Cell], workers: Optional[int] = None) -> List[Any]:
    """Run every cell and return results in cell order.

    Serial (in-process, no pool) when ``workers`` is ``None``/``<= 1``
    or there is at most one cell; otherwise a ``multiprocessing`` pool
    of ``min(workers, len(cells))`` processes.  ``chunksize=1`` keeps
    long cells from pinning a worker behind a prefetched batch.

    Each executing process's peak RSS is recorded as a side effect
    (readable via :func:`last_worker_rss_kib` / :func:`last_peak_rss_kib`
    until the next sweep overwrites it).
    """
    _last_worker_rss_kib.clear()
    registry = OBS.metrics
    if workers is None or workers <= 1 or len(cells) <= 1:
        if registry is not None:
            # Same per-cell snapshot-and-merge sequence as the pool
            # path, so float accumulation order matches exactly.
            results = []
            for fn, args in cells:
                result, snap = run_cell_collected(fn, args)
                registry.merge_snapshot(snap)
                results.append(result)
        else:
            results = [fn(*args) for fn, args in cells]
        _last_worker_rss_kib[multiprocessing.current_process().name] = (
            _peak_rss_kib()
        )
        return results
    pool_size = min(workers, len(cells))
    worker_fn = _run_cell_collected if registry is not None else _run_cell_rss
    with multiprocessing.Pool(pool_size) as pool:
        rows = pool.map(worker_fn, cells, chunksize=1)
    for row in rows:
        worker, rss = row[1], row[2]
        prev = _last_worker_rss_kib.get(worker, 0)
        if rss > prev:
            _last_worker_rss_kib[worker] = rss
    if registry is not None:
        for row in rows:
            registry.merge_snapshot(row[3])
    return [row[0] for row in rows]


# -- fig8 ----------------------------------------------------------------------


def run_fig8_cells(
    config: Fig8Config,
    scenarios: Sequence[str] = SCENARIOS,
    workers: Optional[int] = None,
) -> Dict[str, List[WormRunResult]]:
    """All (scenario, run) cells of Fig. 8, grouped by scenario."""
    cells: List[Cell] = [
        (run_fig8_cell, (config, scenario, run_index))
        for scenario in scenarios
        for run_index in range(config.runs)
    ]
    results = map_cells(cells, workers)
    grouped: Dict[str, List[WormRunResult]] = {}
    for i, scenario in enumerate(scenarios):
        grouped[scenario] = results[i * config.runs : (i + 1) * config.runs]
    return grouped


def run_fig8_parallel(
    config: Fig8Config,
    scenarios: Sequence[str] = SCENARIOS,
    workers: Optional[int] = None,
) -> List[Fig8Row]:
    """Drop-in parallel ``run_fig8``: same rows, same order."""
    grouped = run_fig8_cells(config, scenarios, workers)
    return [
        summarise_fig8_runs(scenario, grouped[scenario]) for scenario in scenarios
    ]


def fig8_curves(
    results_by_scenario: Dict[str, List[WormRunResult]],
) -> Dict[str, List[InfectionCurve]]:
    """Raw curves per scenario, for :func:`...fig8_worm_propagation.curve_series`."""
    return {
        scenario: [r.curve for r in results]
        for scenario, results in results_by_scenario.items()
    }


# -- fig5 ----------------------------------------------------------------------


def run_fig5_parallel(
    config: Fig5Config,
    systems: Sequence[str] = FIG5_SYSTEMS,
    lifetimes: Optional[Sequence[float]] = None,
    workers: Optional[int] = None,
) -> List[Fig5Row]:
    """Drop-in parallel ``run_fig5``: the (system, lifetime, run) grid
    fanned out cell-wise, averaged per (system, lifetime) in serial
    order."""
    lifetimes = (
        list(lifetimes) if lifetimes is not None else list(config.mean_lifetimes_s)
    )
    cells: List[Cell] = [
        (run_cell, (config, system, lifetime, run_index))
        for system in systems
        for lifetime in lifetimes
        for run_index in range(config.runs)
    ]
    flat = map_cells(cells, workers)
    rows: List[Fig5Row] = []
    index = 0
    for _system in systems:
        for _lifetime in lifetimes:
            rows.append(average_fig5_rows(flat[index : index + config.runs]))
            index += config.runs
    return rows


# -- fig6/7 (DHT operations) ---------------------------------------------------


def run_dht_parallel(
    config: DhtExperimentConfig,
    systems: Sequence[str] = tuple(DHT_SYSTEMS),
    workers: Optional[int] = None,
) -> List[DhtCellResult]:
    """Drop-in parallel ``run_dht_experiment``: one cell per system,
    results in system order."""
    cells: List[Cell] = [(run_dht_cell, (config, system)) for system in systems]
    return map_cells(cells, workers)


# -- ablations -----------------------------------------------------------------


def run_ablations_parallel(
    config: Optional[WormScenarioConfig] = None,
    until: float = 200.0,
    type_bits: Sequence[int] = (1, 2, 3),
    workers: Optional[int] = None,
) -> Dict[str, Any]:
    """The four ablation studies as independent cells.

    Returns ``{"naive_finger", "availability", "load", "multitype"}``
    with the same objects the serial :mod:`repro.experiments.ablations`
    functions produce (``multitype`` is one result per entry of
    ``type_bits``).
    """
    cfg = (
        config
        if config is not None
        else WormScenarioConfig(num_nodes=3000, num_sections=128, seed=9)
    )
    cells: List[Cell] = [
        (run_naive_finger_ablation, (cfg, until)),
        (run_replication_availability, (cfg,)),
        (run_load_comparison, ()),
    ]
    cells.extend(
        (run_multitype_containment, (4000, 256, tb)) for tb in type_bits
    )
    results = map_cells(cells, workers)
    return {
        "naive_finger": results[0],
        "availability": results[1],
        "load": results[2],
        "multitype": results[3:],
    }
