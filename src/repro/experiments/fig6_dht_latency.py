"""Figure 6: DHT get/put latency (a view over the shared DHT runner).

See :mod:`repro.experiments.dht_ops` for the setup; this module selects
the latency columns and checks the expected ordering.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .dht_ops import DhtExperimentConfig, run_dht_experiment
from .records import DhtOpRow


def run_fig6(
    config: DhtExperimentConfig,
    systems: Sequence[str] = ("dhash", "fast-verdi", "secure-verdi", "compromise-verdi"),
) -> List[DhtOpRow]:
    results = run_dht_experiment(config, systems)
    rows: List[DhtOpRow] = []
    for res in results:
        rows.extend(res.rows())
    return rows


def latency_by_system(rows: Sequence[DhtOpRow], operation: str) -> Dict[str, float]:
    """Mean latency per system for one operation (plot-ready)."""
    return {
        row.system: row.mean_latency_s
        for row in rows
        if row.operation == operation
    }
