"""Figure 7: DHT get/put bandwidth (a view over the shared DHT runner).

See :mod:`repro.experiments.dht_ops` for the setup; this module selects
the per-operation byte columns.  Background replica creation is not
tagged with operation ids, so — as in the paper — it is excluded.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .dht_ops import DhtExperimentConfig, run_dht_experiment
from .records import DhtOpRow


def run_fig7(
    config: DhtExperimentConfig,
    systems: Sequence[str] = ("dhash", "fast-verdi", "secure-verdi", "compromise-verdi"),
) -> List[DhtOpRow]:
    results = run_dht_experiment(config, systems)
    rows: List[DhtOpRow] = []
    for res in results:
        rows.extend(res.rows())
    return rows


def bytes_by_system(rows: Sequence[DhtOpRow], operation: str) -> Dict[str, float]:
    """Mean bytes per operation per system (plot-ready)."""
    return {
        row.system: row.mean_bytes for row in rows if row.operation == operation
    }
