"""Typed result rows for the reproduced figures.

Each experiment driver returns a list of these; the benchmark harnesses
print them as tables and EXPERIMENTS.md records them next to the
paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Fig5Row:
    """One point of Fig. 5 plus the §7.1 text metrics."""

    system: str                      # chord-transitive / chord-recursive / verme
    mean_lifetime_s: float
    mean_latency_s: float
    median_latency_s: float
    mean_hops: float
    failure_rate: float
    lookups: int
    maintenance_bytes_per_node_s: float


@dataclass(frozen=True)
class DhtOpRow:
    """One bar of Fig. 6 (latency) and Fig. 7 (bandwidth)."""

    system: str                      # dhash / fast-verdi / secure-verdi / compromise-verdi
    operation: str                   # get / put
    mean_latency_s: float
    median_latency_s: float
    mean_bytes: float
    operations: int
    failures: int


@dataclass(frozen=True)
class ResilienceRow:
    """One system's behaviour across a partition-and-heal scenario."""

    system: str                      # chord / verme
    pre_success_rate: float          # lookups before the partition
    partition_success_rate: float    # lookups during the partition
    post_success_rate: float         # lookups after the heal
    min_ring_coherence: float        # worst successor-ring integrity seen
    repair_time_s: Optional[float]   # heal -> ring coherence recovered
    lookups: int
    rpc_timeouts: int                # failure-detector timeouts, all nodes
    rpc_retransmits: int             # backoff retransmissions, all nodes
    max_suspected_peers: int         # most peers one node suspects at the end
    partition_drops: int             # messages the partition severed
    mean_recovery_s: float           # mean detector suspicion duration


@dataclass(frozen=True)
class OverloadRow:
    """One admission policy's serving quality across a load spike."""

    policy: str                      # shed / noshed
    lookups: int
    successes: int
    failures: int
    shed_rate: int                   # token-bucket rejections
    shed_queue: int                  # queue-depth rejections
    p50_latency_s: float
    p99_latency_s: float
    p999_latency_s: float
    goodput_pre_per_s: float         # before the overload window
    goodput_overload_per_s: float    # inside it
    goodput_post_per_s: float        # after it


@dataclass(frozen=True)
class Fig8Row:
    """One curve of Fig. 8, summarised."""

    scenario: str
    population: int
    vulnerable: int
    final_infected: int
    time_to_10pct_s: Optional[float]
    time_to_50pct_s: Optional[float]
    time_to_95pct_s: Optional[float]
