"""Overload experiment: goodput and tail latency across a flash crowd.

The paper never stresses the overlay's serving capacity — §7.1.1's
workload is one stationary Poisson process.  This experiment drives a
Zipf flash crowd (``repro.workload``) against a ring whose nodes have
finite service capacity (``repro.chord.admission``) and compares two
policies:

* ``shed`` — token-bucket + queue-depth admission at the lookup
  ingress: excess load is rejected immediately (``shed:rate`` /
  ``shed:queue``) and the initiator fails fast, so admitted requests
  still complete at pre-spike latency;
* ``noshed`` — the control: the same service queue with no admission
  limits, so the backlog (and with it latency, then timeouts and
  retries) grows without bound during the spike.

The headline criterion: under the spike, shedding keeps goodput within
20% of its pre-spike level while the no-shedding control degrades
measurably.  Churn is off — this cell isolates load, the fig5 grid
covers dynamics.  Both live engines run the cell bit-identically; the
cell seed deliberately excludes the engine name.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ..chord.admission import AdmissionStats, NodeAdmission, ServicePolicy
from ..chord.config import OverlayConfig
from ..chord.lookup import LookupStyle
from ..chord.ring import LookupWorkload
from ..ids.idspace import IdSpace
from ..ids.sections import VermeIdLayout
from ..net.king import KingCoordinates, king_matrix
from ..net.network import Network
from ..obs import OBS, maybe_phase
from ..sim import RngRegistry, Simulator
from ..workload import ServingStats, build_generator
from .builders import build_ring
from .records import OverloadRow

POLICIES = ("shed", "noshed")
SYSTEMS = ("chord-transitive", "chord-recursive", "verme")
ENGINES = ("object", "columnar")


@dataclass(frozen=True)
class OverloadConfig:
    """One overload cell; defaults sized to run in seconds.

    ``mean_lookup_interval_s`` 8 s at 120 nodes offers each node
    0.125 req/s of ingress — a quarter of its ``service_rate_per_s``
    capacity — so the 8x spike pushes offered load to twice capacity.
    ``lookup_timeout_s`` leaves headroom above the worst admitted
    queueing delay (``max_queue / service_rate_per_s``), so shed-policy
    lookups never time out spuriously; under ``noshed`` the unbounded
    backlog blows through it, which is the point.
    """

    num_nodes: int = 120
    num_sections: int = 16
    id_bits: int = 64
    duration_s: float = 600.0
    warmup_s: float = 60.0
    mean_lookup_interval_s: float = 8.0
    workload: str = "zipf"
    overload: str = "spike"
    system: str = "chord-recursive"
    engine: str = "object"
    latency_model: str = "king-matrix"
    mean_rtt_s: float = 0.198
    num_successors: int = 10
    num_predecessors: int = 10
    stabilize_interval_s: float = 30.0
    finger_interval_s: float = 60.0
    lookup_timeout_s: float = 20.0
    #: per-node virtual serving capacity (DHT forwards per second)
    service_rate_per_s: float = 0.5
    #: shed-policy queue bound; the noshed control is unbounded
    max_queue: int = 3
    #: shed-policy token bucket (sustained rate / burst allowance);
    #: set a notch above the service rate so sustained overload also
    #: exercises the queue-depth shed (both drop causes appear)
    bucket_rate_per_s: float = 0.6
    bucket_burst: float = 3.0
    seed: int = 0

    def overlay_config(self) -> OverlayConfig:
        return OverlayConfig(
            space=IdSpace(self.id_bits),
            num_successors=self.num_successors,
            num_predecessors=self.num_predecessors,
            stabilize_interval_s=self.stabilize_interval_s,
            finger_interval_s=self.finger_interval_s,
            lookup_timeout_s=self.lookup_timeout_s,
        )

    def policy(self, name: str) -> ServicePolicy:
        """The admission policy for one arm of the experiment."""
        if name == "shed":
            return ServicePolicy(
                service_rate_per_s=self.service_rate_per_s,
                max_queue=self.max_queue,
                bucket_rate_per_s=self.bucket_rate_per_s,
                bucket_burst=self.bucket_burst,
            )
        if name == "noshed":
            return ServicePolicy(service_rate_per_s=self.service_rate_per_s)
        raise ValueError(
            f"unknown policy {name!r} (available: {', '.join(POLICIES)})"
        )


def run_overload_cell(
    config: OverloadConfig, policy_name: str, run_index: int = 0
) -> Tuple[OverloadRow, int]:
    """One (policy, run) cell: build, spike, measure; returns the row
    and the kernel event count (for the perf harness)."""
    if config.system not in SYSTEMS:
        raise ValueError(f"unknown system {config.system!r}")
    if config.engine not in ENGINES:
        raise ValueError(
            f"unknown engine {config.engine!r} (available: {', '.join(ENGINES)})"
        )
    from ..sim.rng import derive_seed

    # The engine name stays out of the seed: both engines must replay
    # the identical cell (the equivalence tests gate on it).
    rngs = RngRegistry(
        derive_seed(config.seed, f"overload:{policy_name}:r{run_index}")
    )
    policy = config.policy(policy_name)
    adm_stats = AdmissionStats()
    sim = Simulator()
    with maybe_phase("overload.build"):
        king_seed = rngs.stream("king").randrange(2**31)
        if config.latency_model == "king-matrix":
            latency = king_matrix(
                num_hosts=config.num_nodes,
                mean_rtt_s=config.mean_rtt_s,
                seed=king_seed,
            )
        elif config.latency_model == "king-coords":
            latency = KingCoordinates(
                num_hosts=config.num_nodes,
                mean_rtt_s=config.mean_rtt_s,
                seed=king_seed,
            )
        else:
            raise ValueError(f"unknown latency model {config.latency_model!r}")
        network = Network(sim, latency)
        overlay_cfg = config.overlay_config()
        layout = None
        if config.system == "verme":
            layout = VermeIdLayout.for_sections(
                overlay_cfg.space, config.num_sections
            )
        style = (
            LookupStyle.TRANSITIVE
            if config.system == "chord-transitive"
            else LookupStyle.RECURSIVE
        )
        generator = build_generator(
            config.workload,
            config.overload,
            overlay_cfg.space.bits,
            config.mean_lookup_interval_s,
            config.duration_s,
            config.warmup_s,
        )
        stats = ServingStats(sim)
        engine = None
        if config.engine == "columnar":
            from ..chord.columnar import ColumnarEngine

            engine = ColumnarEngine(sim, network, overlay_cfg, layout)
            engine.set_admission(lambda: NodeAdmission(policy, adm_stats))
            engine.build(config.num_nodes, rngs)
            engine.start_workload(
                rngs.stream("workload"),
                style,
                config.mean_lookup_interval_s,
                stats,
                config.warmup_s,
                generator=generator,
            )
            population = engine.population
        else:
            ring = build_ring(
                sim, network, overlay_cfg, config.num_nodes, rngs, layout
            )
            for node in ring.population.nodes:
                node.admission = NodeAdmission(policy, adm_stats)
            workload = LookupWorkload(
                sim,
                ring.population,
                rngs.stream("workload"),
                style=style,
                mean_interval_s=config.mean_lookup_interval_s,
                stats=stats,
                warmup_s=config.warmup_s,
                generator=generator,
            )
            workload.start()
            population = ring.population
        inv = OBS.invariants
        if inv is not None:
            inv.watch(
                sim,
                population,
                layout=layout,
                until=config.duration_s,
                interval_s=max(
                    config.duration_s / 20.0, config.stabilize_interval_s
                ),
                cell=f"overload.{policy_name}.r{run_index}",
            )
    with maybe_phase("overload.run", sim):
        if engine is not None:
            from ..chord.columnar import frozen_gc

            with frozen_gc():
                sim.run(until=config.duration_s)
        else:
            sim.run(until=config.duration_s)

    events = (
        engine.logical_events(config.duration_s)
        if engine is not None
        else sim.events_processed
    )
    window = generator.overload_window
    if window is not None:
        t0, t1 = window
    else:
        t0, t1 = config.warmup_s, config.duration_s
    row = OverloadRow(
        policy=policy_name,
        lookups=stats.total,
        successes=stats.successes,
        failures=stats.failures,
        shed_rate=adm_stats.shed_rate,
        shed_queue=adm_stats.shed_queue,
        p50_latency_s=stats.p50_latency_s if stats.successes else 0.0,
        p99_latency_s=stats.p99_latency_s if stats.successes else 0.0,
        p999_latency_s=stats.p999_latency_s if stats.successes else 0.0,
        goodput_pre_per_s=stats.goodput_per_s(config.warmup_s, t0),
        goodput_overload_per_s=stats.goodput_per_s(t0, t1),
        goodput_post_per_s=stats.goodput_per_s(t1, config.duration_s),
    )
    metrics = OBS.metrics
    if metrics is not None:
        prefix = f"overload.{policy_name}.r{run_index}"
        metrics.counter(prefix + ".lookups").inc(stats.total)
        metrics.counter(prefix + ".lookup_failures").inc(stats.failures)
        metrics.counter(prefix + ".shed_rate").inc(adm_stats.shed_rate)
        metrics.counter(prefix + ".shed_queue").inc(adm_stats.shed_queue)
        metrics.counter(prefix + ".kernel_events").inc(events)
        if stats.successes:
            metrics.gauge(prefix + ".p50_latency_s").set(row.p50_latency_s)
            metrics.gauge(prefix + ".p99_latency_s").set(row.p99_latency_s)
            metrics.gauge(prefix + ".p999_latency_s").set(row.p999_latency_s)
        metrics.gauge(prefix + ".goodput_pre_per_s").set(row.goodput_pre_per_s)
        metrics.gauge(prefix + ".goodput_overload_per_s").set(
            row.goodput_overload_per_s
        )
        metrics.gauge(prefix + ".goodput_post_per_s").set(row.goodput_post_per_s)
    return row, events


def run_overload(config: OverloadConfig) -> List[OverloadRow]:
    """Both policy arms of the experiment, shed first."""
    return [run_overload_cell(config, policy)[0] for policy in POLICIES]


def smoke_config() -> OverloadConfig:
    """A seconds-scale cell for CI smoke runs."""
    return replace(
        OverloadConfig(),
        num_nodes=40,
        duration_s=240.0,
        warmup_s=30.0,
        mean_lookup_interval_s=4.0,
    )
