"""Figure 8: simulated worm propagation speeds.

Paper setup (§7.3): a 100,000-node static overlay, 50% of machines
vulnerable (one whole type), Verme configured with 4096 sections (~24
nodes each), scan rate 100/s, 100 ms infection time, 1 s activation
delay; the Fast-VerDi impersonator issues 10 lookups/s and in the
Compromise-VerDi scenario every node issues 1 lookup/s.  Each strategy
averaged over 10 runs.

Expected curves: Chord infects the whole system in ~32 s; Verme without
impersonation stays confined to a single section; Secure-VerDi with an
impersonator reaches only a logarithmic number of sections (~352
nodes); Fast-VerDi and Compromise-VerDi take ~160 s and ~1600 s to
infect half the vulnerable population.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.curves import average_curves, log_time_grid
from ..worm.model import InfectionCurve
from ..worm.scenarios import (
    SCENARIOS,
    WormRunResult,
    WormScenarioConfig,
    run_scenario,
)
from .records import Fig8Row

#: Time horizons per scenario: generous multiples of the expected
#: completion times so curves saturate without wasting events.
DEFAULT_HORIZONS: Dict[str, float] = {
    "chord": 300.0,
    "verme": 300.0,
    "verme-secure": 300.0,
    "verme-fast": 4000.0,
    "verme-compromise": 40000.0,
}


@dataclass(frozen=True)
class Fig8Config:
    """Scaled-down defaults; ``paper_scale()`` restores §7.3."""

    scenario_config: WormScenarioConfig = field(default_factory=WormScenarioConfig)
    runs: int = 2                          # paper: 10
    horizons: Optional[Dict[str, float]] = None

    def paper_scale(self) -> "Fig8Config":
        return replace(
            self,
            scenario_config=self.scenario_config.with_paper_scale(),
            runs=10,
        )


def run_fig8_cell(config: Fig8Config, scenario: str, run_index: int) -> WormRunResult:
    """One independent (scenario, run) cell of Fig. 8.

    The cell's result depends only on its arguments — seed derivation
    included — which is what lets :mod:`repro.experiments.parallel` fan
    cells across processes with bit-identical output.
    """
    horizons = config.horizons or DEFAULT_HORIZONS
    scen_cfg = replace(
        config.scenario_config,
        seed=config.scenario_config.seed + 1000 * run_index + 1,
    )
    return run_scenario(scenario, scen_cfg, until=horizons.get(scenario))


def summarise_fig8_runs(scenario: str, results: List[WormRunResult]) -> Fig8Row:
    """Aggregate all runs of one scenario into its table row."""
    return Fig8Row(
        scenario=scenario,
        population=results[0].population_size,
        vulnerable=results[0].vulnerable_count,
        final_infected=round(sum(r.final_infected for r in results) / len(results)),
        time_to_10pct_s=_mean_or_none([r.time_to_fraction(0.10) for r in results]),
        time_to_50pct_s=_mean_or_none([r.time_to_fraction(0.50) for r in results]),
        time_to_95pct_s=_mean_or_none([r.time_to_fraction(0.95) for r in results]),
    )


def run_fig8_scenario(
    config: Fig8Config, scenario: str
) -> Tuple[Fig8Row, List[InfectionCurve]]:
    """All runs of one scenario, summarised into a row + raw curves."""
    results = [
        run_fig8_cell(config, scenario, run_index)
        for run_index in range(config.runs)
    ]
    return summarise_fig8_runs(scenario, results), [r.curve for r in results]


def run_fig8(
    config: Fig8Config, scenarios: Sequence[str] = SCENARIOS
) -> List[Fig8Row]:
    return [run_fig8_scenario(config, s)[0] for s in scenarios]


def curve_series(
    curves_by_scenario: Dict[str, List[InfectionCurve]],
    horizons: Optional[Dict[str, float]] = None,
    grid_points: int = 50,
) -> Dict[str, List[Tuple[float, float]]]:
    """Resample already-computed curves onto the Fig. 8 log-time grid
    (so runners that hold raw results don't re-run the scenarios)."""
    horizons = horizons or DEFAULT_HORIZONS
    t_max = max(horizons.get(s, 300.0) for s in curves_by_scenario)
    grid = log_time_grid(0.1, t_max, grid_points)
    return {
        scenario: average_curves(curves, grid)
        for scenario, curves in curves_by_scenario.items()
    }


def averaged_curve_series(
    config: Fig8Config,
    scenarios: Sequence[str] = SCENARIOS,
    grid_points: int = 50,
) -> Dict[str, List[Tuple[float, float]]]:
    """The actual Fig. 8 plot data: averaged infected-count series on a
    logarithmic time grid, one series per scenario."""
    curves_by_scenario = {
        scenario: run_fig8_scenario(config, scenario)[1] for scenario in scenarios
    }
    return curve_series(
        curves_by_scenario, config.horizons or DEFAULT_HORIZONS, grid_points
    )


def _mean_or_none(values: List[Optional[float]]) -> Optional[float]:
    present = [v for v in values if v is not None]
    if not present:
        return None
    return sum(present) / len(present)
