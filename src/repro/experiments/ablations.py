"""Ablations of the design choices DESIGN.md calls out.

1. **Naive fingers** — Verme ids/ownership but plain Chord finger
   targets (no §4.4 displacement).  Shows that the worm escapes its
   island through same-type finger entries.
2. **Single- vs. two-section replication** — §5.2's cross-type replica
   split.  Measures data availability after a whole type is wiped out
   by an outbreak (the paper's reliability argument).
3. **Predecessor corner rule load** — §4.4 accepts a load imbalance at
   section edges; this quantifies it against Chord.
4. **Multi-type sections** — the paper assumes two types (§4.1,
   generalisation deferred to the thesis); the id layout supports any
   power-of-two type count, and this ablation measures containment as
   the number of types grows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..analysis.load import LoadReport, sample_ownership
from ..chord.state import NodeInfo
from ..ids.idspace import IdSpace
from ..ids.sections import VermeIdLayout
from ..net.addressing import NodeAddress
from ..overlay.snapshot import (
    NaiveFingerVermeOverlay,
    StaticOverlay,
    VermeStaticOverlay,
)
from ..sim import Simulator
from ..worm.knowledge import RoutingKnowledge
from ..worm.model import WormParams
from ..worm.scenarios import WormScenarioConfig, build_verme_population
from ..worm.simulation import WormSimulation


# -- 1. naive fingers -----------------------------------------------------------------


@dataclass(frozen=True)
class NaiveFingerResult:
    infected_with_displacement: int
    infected_naive_fingers: int
    vulnerable: int


def run_naive_finger_ablation(
    config: WormScenarioConfig, until: Optional[float] = 300.0
) -> NaiveFingerResult:
    """Run the plain Verme worm twice: with the paper's displaced
    fingers and with naive Chord fingers on the same population."""
    rng = random.Random(config.seed)
    pop = build_verme_population(config, rng)
    verme_overlay = pop.overlay
    assert isinstance(verme_overlay, VermeStaticOverlay)
    naive_overlay = NaiveFingerVermeOverlay(verme_overlay.layout, verme_overlay.infos)

    counts = []
    for overlay in (verme_overlay, naive_overlay):
        knowledge = RoutingKnowledge(
            overlay,
            num_successors=config.num_successors,
            num_predecessors=config.num_predecessors,
            same_type_only=True,
            layout=overlay.layout,
        )
        sim = Simulator()
        worm = WormSimulation(
            sim, len(overlay), pop.vulnerable, knowledge, config.params
        )
        seed_rng = random.Random(config.seed + 1)
        worm.seed(seed_rng.choice([i for i, v in enumerate(pop.vulnerable) if v]))
        worm.run(until=until)
        counts.append(worm.infected_count)
    return NaiveFingerResult(
        infected_with_displacement=counts[0],
        infected_naive_fingers=counts[1],
        vulnerable=pop.vulnerable_count,
    )


# -- 2. replication availability --------------------------------------------------------


@dataclass(frozen=True)
class AvailabilityResult:
    samples: int
    survivors_two_sections: float   # fraction of keys still readable
    survivors_single_section: float


def run_replication_availability(
    config: WormScenarioConfig,
    per_group: int = 3,
    samples: int = 2000,
) -> AvailabilityResult:
    """Wipe out every node of the victim type (a successful outbreak)
    and measure what fraction of keys keep at least one live replica
    under VerDi's two-section placement vs. single-section placement."""
    rng = random.Random(config.seed)
    pop = build_verme_population(config, rng)
    overlay = pop.overlay
    assert isinstance(overlay, VermeStaticOverlay)
    layout = overlay.layout
    dead_type = int(config.victim_type)

    def alive(info: NodeInfo) -> bool:
        return layout.type_of(info.node_id) != dead_type

    two_ok = single_ok = 0
    for _ in range(samples):
        key = layout.random_key(rng)
        g1, g2 = overlay.cross_type_replica_groups(key, per_group)
        if any(alive(e) for e in g1 + g2):
            two_ok += 1
        single = overlay.replica_group(key, 2 * per_group)
        if any(alive(e) for e in single):
            single_ok += 1
    return AvailabilityResult(
        samples=samples,
        survivors_two_sections=two_ok / samples,
        survivors_single_section=single_ok / samples,
    )


# -- 3. ownership load ------------------------------------------------------------------


@dataclass(frozen=True)
class LoadComparison:
    chord: LoadReport
    verme: LoadReport


def run_load_comparison(
    num_nodes: int = 2000,
    num_sections: int = 128,
    samples: int = 50_000,
    seed: int = 0,
    id_bits: int = 64,
) -> LoadComparison:
    """Ownership distribution: Chord's successor rule vs. Verme's
    section-bounded rule with the predecessor corner case."""
    space = IdSpace(id_bits)
    layout = VermeIdLayout.for_sections(space, num_sections)
    rng = random.Random(seed)
    used: set = set()
    infos = []
    for i in range(num_nodes):
        nid = layout.random_id(rng, i % 2)
        while nid in used:
            nid = layout.random_id(rng, i % 2)
        used.add(nid)
        infos.append(NodeInfo(nid, NodeAddress(i)))
    chord_overlay = StaticOverlay(space, infos)
    verme_overlay = VermeStaticOverlay(layout, infos)
    return LoadComparison(
        chord=sample_ownership(chord_overlay, samples, random.Random(seed + 1)),
        verme=sample_ownership(verme_overlay, samples, random.Random(seed + 1)),
    )


# -- 4. multi-type containment -------------------------------------------------------------


@dataclass(frozen=True)
class MultiTypeResult:
    type_bits: int
    num_types: int
    infected: int
    vulnerable: int

    @property
    def containment_fraction(self) -> float:
        return self.infected / self.vulnerable if self.vulnerable else 0.0


def run_multitype_containment(
    num_nodes: int = 4000,
    num_sections: int = 256,
    type_bits: int = 2,
    seed: int = 0,
    id_bits: int = 64,
    params: Optional[WormParams] = None,
    until: float = 300.0,
) -> MultiTypeResult:
    """Containment of the plain topological worm with ``2**type_bits``
    platform types (the thesis generalisation of §4.1).

    Nodes of type 0 are vulnerable.  With more types each island is as
    long but holds fewer vulnerable machines' worth of the population,
    and fingers remain cross-type by the same displacement rule.
    """
    space = IdSpace(id_bits)
    layout = VermeIdLayout.for_sections(space, num_sections, type_bits=type_bits)
    rng = random.Random(seed)
    used: set = set()
    infos = []
    for i in range(num_nodes):
        node_type = i % layout.num_types
        nid = layout.random_id(rng, node_type)
        while nid in used:
            nid = layout.random_id(rng, node_type)
        used.add(nid)
        infos.append(NodeInfo(nid, NodeAddress(i)))
    overlay = VermeStaticOverlay(layout, infos)
    vulnerable = [layout.type_of(nid) == 0 for nid in overlay.ids]
    knowledge = RoutingKnowledge(
        overlay,
        num_successors=10,
        num_predecessors=10,
        same_type_only=True,
        layout=layout,
    )
    sim = Simulator()
    worm = WormSimulation(
        sim, len(overlay), vulnerable, knowledge, params or WormParams()
    )
    worm.seed(rng.choice([i for i, v in enumerate(vulnerable) if v]))
    worm.run(until=until)
    return MultiTypeResult(
        type_bits=type_bits,
        num_types=layout.num_types,
        infected=worm.infected_count,
        vulnerable=sum(vulnerable),
    )
