"""Figure 5: lookup latency, Chord (transitive, recursive) vs. Verme.

Paper setup (§7.1.1): 1740 nodes on the King latency matrix (mean RTT
198 ms), 10 successors, stabilization every 30 s, finger stabilization
every 60 s, lookups with random keys per node at exponentially
distributed intervals of mean 30 s, 128 sections and 10 predecessors
for Verme, mean node lifetimes from 15 minutes to 8 hours, 12 simulated
hours, 8 runs.

The expected result: Verme's recursive lookups cost about the same as
recursive Chord, while transitive Chord is ~35% faster than both; node
dynamics barely move the comparison.  §7.1.2's text metrics (failure
rate, maintenance bandwidth) are reported alongside.

Defaults are scaled down so the driver runs in seconds; pass
``Fig5Config.paper_scale()`` for the full setup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..analysis.stats import LookupStats
from ..chord.config import OverlayConfig
from ..chord.lookup import LookupStyle
from ..chord.ring import ChurnDriver, LookupWorkload
from ..ids.idspace import IdSpace
from ..ids.sections import VermeIdLayout
from ..net.king import KingCoordinates, king_matrix
from ..net.network import Network
from ..obs import OBS, maybe_phase
from ..sim import RngRegistry, Simulator
from .builders import build_ring
from .records import Fig5Row

SYSTEMS = ("chord-transitive", "chord-recursive", "verme")
ENGINES = ("object", "columnar")


@dataclass(frozen=True)
class Fig5Config:
    """Scaled-down defaults; ``paper_scale()`` restores §7.1.1."""

    num_nodes: int = 120                   # paper: 1740
    num_sections: int = 16                 # paper: 128
    id_bits: int = 64                      # paper: 160
    mean_lifetimes_s: Tuple[float, ...] = (1800.0, 28800.0)
    # paper: (900, 1800, 3600, 14400, 28800)
    duration_s: float = 1800.0             # paper: 43200 (12 h)
    warmup_s: float = 120.0
    mean_lookup_interval_s: float = 30.0   # paper: 30 s
    mean_rtt_s: float = 0.198              # paper: King mean RTT
    num_successors: int = 10
    num_predecessors: int = 10
    stabilize_interval_s: float = 30.0
    finger_interval_s: float = 60.0
    runs: int = 1                          # paper: 8
    seed: int = 0
    #: ``"king-matrix"`` (dense, the default — exact historical
    #: behaviour) or ``"king-coords"`` (O(n)-state scalar model, the
    #: only feasible choice at >=10k nodes; see repro.net.king).
    latency_model: str = "king-matrix"
    #: ``"object"`` (the reference per-node protocol graph) or
    #: ``"columnar"`` (the flat-array engine of repro.chord.columnar;
    #: bit-identical metrics, required at >=100k nodes).
    engine: str = "object"
    #: key-popularity model: ``"poisson"`` (uniform keys, the paper's
    #: §7.1.1 process) or ``"zipf"`` (see repro.workload).
    workload: str = "poisson"
    #: arrival shape: ``"none"`` (stationary), ``"spike"``, ``"ramp"``
    #: or ``"diurnal"`` (see repro.workload.overload_shape).
    overload: str = "none"

    def paper_scale(self) -> "Fig5Config":
        return replace(
            self,
            num_nodes=1740,
            num_sections=128,
            mean_lifetimes_s=(900.0, 1800.0, 3600.0, 14400.0, 28800.0),
            duration_s=43200.0,
            runs=8,
        )

    def overlay_config(self) -> OverlayConfig:
        return OverlayConfig(
            space=IdSpace(self.id_bits),
            num_successors=self.num_successors,
            num_predecessors=self.num_predecessors,
            stabilize_interval_s=self.stabilize_interval_s,
            finger_interval_s=self.finger_interval_s,
        )


def run_cell(
    config: Fig5Config,
    system: str,
    mean_lifetime_s: float,
    run_index: int = 0,
) -> Fig5Row:
    """One (system, lifetime) cell of Fig. 5: build, churn, measure."""
    return run_cell_instrumented(config, system, mean_lifetime_s, run_index)[0]


def run_cell_instrumented(
    config: Fig5Config,
    system: str,
    mean_lifetime_s: float,
    run_index: int = 0,
) -> Tuple[Fig5Row, int]:
    """Like :func:`run_cell` but also returns the kernel event count,
    for the perf-regression harness's events/s metric."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}")
    if config.engine not in ENGINES:
        raise ValueError(
            f"unknown engine {config.engine!r} (available: {', '.join(ENGINES)})"
        )
    # str hashing is per-process randomised; derive_seed is stable.
    from ..sim.rng import derive_seed

    rngs = RngRegistry(
        derive_seed(config.seed, f"fig5:{system}:{mean_lifetime_s}:{run_index}")
    )
    sim = Simulator()
    with maybe_phase("fig5.build"):
        king_seed = rngs.stream("king").randrange(2**31)
        if config.latency_model == "king-matrix":
            latency = king_matrix(
                num_hosts=config.num_nodes,
                mean_rtt_s=config.mean_rtt_s,
                seed=king_seed,
            )
        elif config.latency_model == "king-coords":
            latency = KingCoordinates(
                num_hosts=config.num_nodes,
                mean_rtt_s=config.mean_rtt_s,
                seed=king_seed,
            )
        else:
            raise ValueError(f"unknown latency model {config.latency_model!r}")
        network = Network(sim, latency)
        overlay_cfg = config.overlay_config()
        layout = None
        if system == "verme":
            layout = VermeIdLayout.for_sections(overlay_cfg.space, config.num_sections)
        style = (
            LookupStyle.TRANSITIVE
            if system == "chord-transitive"
            else LookupStyle.RECURSIVE
        )
        # Non-default workload presets get a generator and serving
        # stats (tail latency / goodput); the defaults keep the plain
        # LookupStats and the exact historical RNG stream.
        generator = None
        if config.workload != "poisson" or config.overload != "none":
            from ..workload import ServingStats, build_generator

            generator = build_generator(
                config.workload,
                config.overload,
                overlay_cfg.space.bits,
                config.mean_lookup_interval_s,
                config.duration_s,
                config.warmup_s,
            )
            stats: LookupStats = ServingStats(sim)
        else:
            stats = LookupStats()
        engine = None
        if config.engine == "columnar":
            from ..chord.columnar import ColumnarEngine

            engine = ColumnarEngine(sim, network, overlay_cfg, layout)
            engine.build(config.num_nodes, rngs)
            engine.start_churn(rngs.stream("churn"), mean_lifetime_s)
            engine.start_workload(
                rngs.stream("workload"),
                style,
                config.mean_lookup_interval_s,
                stats,
                config.warmup_s,
                generator=generator,
            )
            population = engine.population
        else:
            ring = build_ring(
                sim, network, overlay_cfg, config.num_nodes, rngs, layout
            )

            churn = ChurnDriver(
                sim,
                ring.population,
                ring.factory,
                rngs.stream("churn"),
                mean_lifetime_s=mean_lifetime_s,
            )
            churn.start()

            workload = LookupWorkload(
                sim,
                ring.population,
                rngs.stream("workload"),
                style=style,
                mean_interval_s=config.mean_lookup_interval_s,
                stats=stats,
                warmup_s=config.warmup_s,
                generator=generator,
            )
            workload.start()
            population = ring.population

        inv = OBS.invariants
        if inv is not None:
            # Roughly 20 samples per cell, but never below the
            # stabilization period (checking faster than the protocol
            # repairs is noise).
            inv.watch(
                sim,
                population,
                layout=layout,
                until=config.duration_s,
                interval_s=max(
                    config.duration_s / 20.0, config.stabilize_interval_s
                ),
                cell=f"fig5.{system}.lt{mean_lifetime_s:g}.r{run_index}",
            )
    with maybe_phase("fig5.run", sim):
        if engine is not None:
            from ..chord.columnar import frozen_gc

            with frozen_gc():
                sim.run(until=config.duration_s)
        else:
            sim.run(until=config.duration_s)

    events = (
        engine.logical_events(config.duration_s)
        if engine is not None
        else sim.events_processed
    )
    maintenance_bytes = network.accounting.category_bytes("maintenance")
    per_node_per_s = maintenance_bytes / (config.num_nodes * config.duration_s)
    latency_summary = stats.latency_summary()
    hops_summary = stats.hops_summary()
    row = Fig5Row(
        system=system,
        mean_lifetime_s=mean_lifetime_s,
        mean_latency_s=latency_summary.mean,
        median_latency_s=latency_summary.median,
        mean_hops=hops_summary.mean,
        failure_rate=stats.failure_rate,
        lookups=stats.total,
        maintenance_bytes_per_node_s=per_node_per_s,
    )
    metrics = OBS.metrics
    if metrics is not None:
        # Post-run publication (never in the event loop).  The per-cell
        # prefix keeps grid cells distinct when snapshots merge.
        prefix = f"fig5.{system}.lt{mean_lifetime_s:g}.r{run_index}"
        metrics.counter(prefix + ".lookups").inc(stats.total)
        metrics.counter(prefix + ".lookup_failures").inc(stats.failures)
        metrics.counter(prefix + ".maintenance_bytes").inc(maintenance_bytes)
        metrics.counter(prefix + ".kernel_events").inc(events)
        if stats.total:
            metrics.gauge(prefix + ".failure_rate").set(stats.failure_rate)
        if stats.successes:
            metrics.gauge(prefix + ".mean_latency_s").set(latency_summary.mean)
            metrics.gauge(prefix + ".mean_hops").set(hops_summary.mean)
        if generator is not None and stats.successes:
            # Serving-quality snapshot: tail latency over the whole
            # cell, goodput over the measured interval, and the
            # pre/during/post split when the shape defines a window.
            metrics.gauge(prefix + ".p99_latency_s").set(stats.p99_latency_s)
            metrics.gauge(prefix + ".p999_latency_s").set(stats.p999_latency_s)
            metrics.gauge(prefix + ".goodput_per_s").set(
                stats.goodput_per_s(config.warmup_s, config.duration_s)
            )
            window = generator.overload_window
            if window is not None:
                t0, t1 = window
                metrics.gauge(prefix + ".goodput_pre_per_s").set(
                    stats.goodput_per_s(config.warmup_s, t0)
                )
                metrics.gauge(prefix + ".goodput_overload_per_s").set(
                    stats.goodput_per_s(t0, t1)
                )
                metrics.gauge(prefix + ".goodput_post_per_s").set(
                    stats.goodput_per_s(t1, config.duration_s)
                )
    return row, events


def run_fig5(
    config: Fig5Config,
    systems: Sequence[str] = SYSTEMS,
    lifetimes: Optional[Sequence[float]] = None,
) -> List[Fig5Row]:
    """The full grid, averaging ``config.runs`` repetitions per cell."""
    lifetimes = list(lifetimes) if lifetimes is not None else list(config.mean_lifetimes_s)
    rows: List[Fig5Row] = []
    for system in systems:
        for lifetime in lifetimes:
            cells = [
                run_cell(config, system, lifetime, run_index=r)
                for r in range(config.runs)
            ]
            rows.append(average_fig5_rows(cells))
    return rows


def average_fig5_rows(cells: List[Fig5Row]) -> Fig5Row:
    n = len(cells)
    first = cells[0]
    if n == 1:
        return first
    return Fig5Row(
        system=first.system,
        mean_lifetime_s=first.mean_lifetime_s,
        mean_latency_s=sum(c.mean_latency_s for c in cells) / n,
        median_latency_s=sum(c.median_latency_s for c in cells) / n,
        mean_hops=sum(c.mean_hops for c in cells) / n,
        failure_rate=sum(c.failure_rate for c in cells) / n,
        lookups=sum(c.lookups for c in cells),
        maintenance_bytes_per_node_s=sum(
            c.maintenance_bytes_per_node_s for c in cells
        )
        / n,
    )
