"""Experiment drivers, one per paper figure (see DESIGN.md §3)."""

from .ablations import (
    run_load_comparison,
    run_multitype_containment,
    run_naive_finger_ablation,
    run_replication_availability,
)
from .builders import BuiltRing, ChordNodeFactory, VermeNodeFactory, build_ring
from .dht_ops import (
    DHT_SYSTEMS,
    DhtCellResult,
    DhtExperimentConfig,
    run_dht_cell,
    run_dht_experiment,
)
from .fig5_lookup_latency import SYSTEMS as FIG5_SYSTEMS
from .fig5_lookup_latency import (
    Fig5Config,
    average_fig5_rows,
    run_cell,
    run_fig5,
)
from .fig6_dht_latency import latency_by_system, run_fig6
from .fig7_dht_bandwidth import bytes_by_system, run_fig7
from .fig8_worm_propagation import (
    DEFAULT_HORIZONS,
    Fig8Config,
    averaged_curve_series,
    curve_series,
    run_fig8,
    run_fig8_cell,
    run_fig8_scenario,
    summarise_fig8_runs,
)
from .parallel import (
    map_cells,
    run_ablations_parallel,
    run_fig5_parallel,
    run_fig8_cells,
    run_fig8_parallel,
)
from .records import DhtOpRow, Fig5Row, Fig8Row, ResilienceRow
from .resilience import SYSTEMS as RESILIENCE_SYSTEMS
from .resilience import (
    ResilienceConfig,
    run_resilience,
    run_resilience_cell,
)

__all__ = [
    "BuiltRing",
    "ChordNodeFactory",
    "DEFAULT_HORIZONS",
    "DHT_SYSTEMS",
    "DhtCellResult",
    "DhtExperimentConfig",
    "DhtOpRow",
    "FIG5_SYSTEMS",
    "Fig5Config",
    "Fig5Row",
    "Fig8Config",
    "Fig8Row",
    "RESILIENCE_SYSTEMS",
    "ResilienceConfig",
    "ResilienceRow",
    "VermeNodeFactory",
    "average_fig5_rows",
    "averaged_curve_series",
    "build_ring",
    "bytes_by_system",
    "curve_series",
    "latency_by_system",
    "map_cells",
    "run_ablations_parallel",
    "run_cell",
    "run_dht_cell",
    "run_dht_experiment",
    "run_fig5",
    "run_fig5_parallel",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig8_cell",
    "run_fig8_cells",
    "run_fig8_parallel",
    "run_fig8_scenario",
    "run_load_comparison",
    "run_multitype_containment",
    "run_naive_finger_ablation",
    "run_replication_availability",
    "run_resilience",
    "run_resilience_cell",
    "summarise_fig8_runs",
]
