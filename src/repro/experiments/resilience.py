"""Resilience experiment: lookup availability across a partition.

The paper argues about behaviour under adversity but only measures
churn; this driver measures what the fault layer unlocks.  A ring
(Chord recursive or Verme) runs a Poisson lookup workload while a
scripted :class:`~repro.faults.Partition` severs a minority of hosts
from the rest between ``partition_start_s`` and ``partition_heal_s``.
Reported per system:

* lookup success rate before / during / after the partition (the
  degradation concentrates at the onset: once each side has purged the
  other, lookups "succeed" against the degenerate sub-ring);
* **ring coherence** — the fraction of nodes whose first successor is
  the true ring neighbour, sampled every ``bucket_s`` — and the
  **ring-repair time**: how long after the heal until coherence is
  back to ``recovered_fraction`` of its pre-partition level (the
  partition is kept shorter than ``num_successors`` stabilization
  rounds, so surviving cross-group successor entries let the rings
  re-knit — Chord cannot merge two fully disjoint rings without a
  bootstrap);
* failure-detector aggregates (timeouts, retransmissions, peak
  suspected peers, mean suspicion duration) and the partition's
  cause-tagged drop count from the network.

Everything is deterministic from ``ResilienceConfig.seed``: the fault
plan, workload, ids and jitter all draw from derived streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..chord.config import OverlayConfig
from ..chord.lookup import LookupStyle
from ..chord.ring import LookupWorkload
from ..faults import FaultPlan, Partition
from ..ids.idspace import IdSpace
from ..ids.sections import VermeIdLayout
from ..net.latency import ConstantLatency
from ..net.network import Network
from ..obs import OBS, maybe_phase
from ..sim import RngRegistry, Simulator
from ..sim.rng import derive_seed
from .builders import build_ring
from .records import ResilienceRow

SYSTEMS = ("chord", "verme")


@dataclass(frozen=True)
class ResilienceConfig:
    """Scaled for seconds of wall time; ``paper_scale()`` grows it."""

    num_nodes: int = 64
    num_sections: int = 8
    id_bits: int = 64
    num_successors: int = 8
    num_predecessors: int = 8
    stabilize_interval_s: float = 30.0
    finger_interval_s: float = 60.0
    one_way_latency_s: float = 0.05
    mean_lookup_interval_s: float = 10.0
    # Partition a fifth of the hosts for ~3 stabilization rounds.
    partition_fraction: float = 0.2
    partition_start_s: float = 240.0
    partition_heal_s: float = 330.0
    duration_s: float = 900.0
    warmup_s: float = 60.0
    bucket_s: float = 30.0
    recovered_fraction: float = 0.95
    rpc_max_retransmits: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.partition_fraction < 1.0:
            raise ValueError("partition_fraction must be in (0, 1)")
        if not (
            self.warmup_s
            < self.partition_start_s
            < self.partition_heal_s
            < self.duration_s
        ):
            raise ValueError(
                "need warmup < partition start < heal < duration"
            )

    def paper_scale(self) -> "ResilienceConfig":
        return replace(
            self,
            num_nodes=1740,
            num_sections=128,
            id_bits=160,
            num_successors=10,
            num_predecessors=10,
            partition_start_s=1200.0,
            partition_heal_s=1440.0,
            duration_s=3600.0,
        )

    def overlay_config(self) -> OverlayConfig:
        return OverlayConfig(
            space=IdSpace(self.id_bits),
            num_successors=self.num_successors,
            num_predecessors=self.num_predecessors,
            stabilize_interval_s=self.stabilize_interval_s,
            finger_interval_s=self.finger_interval_s,
            rpc_max_retransmits=self.rpc_max_retransmits,
        )

    def minority_hosts(self) -> range:
        return range(int(self.num_nodes * self.partition_fraction))

    def fault_plan(self, seed: int) -> FaultPlan:
        minority = frozenset(self.minority_hosts())
        majority = frozenset(range(self.num_nodes)) - minority
        plan = FaultPlan(seed)
        plan.add_partition(
            Partition(
                (minority, majority),
                self.partition_start_s,
                self.partition_heal_s,
            )
        )
        return plan


def _success_rate(
    samples: Sequence[Tuple[float, bool]], start: float, end: float
) -> Tuple[float, int]:
    window = [ok for t, ok in samples if start <= t < end]
    if not window:
        return float("nan"), 0
    return sum(window) / len(window), len(window)


def _ring_coherence(population) -> float:
    """Fraction of alive nodes whose first successor is the true ring
    neighbour (the invariant Zave's Chord analysis centres on)."""
    nodes = sorted(population.nodes, key=lambda n: n.node_id)
    if len(nodes) < 2:
        return 1.0
    ok = 0
    for i, node in enumerate(nodes):
        expected = nodes[(i + 1) % len(nodes)]
        succ = node.successors.first
        if succ is not None and succ.node_id == expected.node_id:
            ok += 1
    return ok / len(nodes)


def _mean_in_window(
    series: Sequence[Tuple[float, float]], start: float, end: float
) -> float:
    window = [v for t, v in series if start <= t < end]
    return sum(window) / len(window) if window else float("nan")


def _repair_time(
    coherence: Sequence[Tuple[float, float]],
    config: ResilienceConfig,
    pre_level: float,
) -> Optional[float]:
    """First post-heal coherence sample back at the recovery bar."""
    target = config.recovered_fraction * pre_level
    for t, value in coherence:
        if t >= config.partition_heal_s and value >= target:
            return t - config.partition_heal_s
    return None


def run_resilience_cell(
    config: ResilienceConfig, system: str, run_index: int = 0
) -> ResilienceRow:
    """One system through the partition-and-heal scenario."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}")
    rngs = RngRegistry(
        derive_seed(config.seed, f"resilience:{system}:{run_index}")
    )
    sim = Simulator()
    plan = config.fault_plan(derive_seed(rngs.root_seed, "faults"))
    network = Network(
        sim,
        ConstantLatency(
            num_hosts=config.num_nodes, one_way=config.one_way_latency_s
        ),
        fault_plan=plan,
    )
    overlay_cfg = config.overlay_config()
    layout = None
    if system == "verme":
        layout = VermeIdLayout.for_sections(
            overlay_cfg.space, config.num_sections
        )
    ring = build_ring(
        sim, network, overlay_cfg, config.num_nodes, rngs, layout
    )

    samples: List[Tuple[float, bool]] = []
    workload = LookupWorkload(
        sim,
        ring.population,
        rngs.stream("workload"),
        style=LookupStyle.RECURSIVE,
        mean_interval_s=config.mean_lookup_interval_s,
        warmup_s=config.warmup_s,
        on_result=lambda res: samples.append((sim.now, res.success)),
    )
    workload.start()

    inv = OBS.invariants
    if inv is not None:
        inv.watch(
            sim,
            ring.population,
            layout=layout,
            fault_plan=plan,
            until=config.duration_s,
            interval_s=config.bucket_s,
            cell=f"resilience.{system}.r{run_index}",
        )

    coherence: List[Tuple[float, float]] = []

    def probe() -> None:
        coherence.append((sim.now, _ring_coherence(ring.population)))
        if sim.now + config.bucket_s <= config.duration_s:
            sim.schedule(config.bucket_s, probe)

    sim.schedule(config.bucket_s, probe)
    with maybe_phase("resilience.run", sim):
        sim.run(until=config.duration_s)

    pre_rate, pre_n = _success_rate(
        samples, config.warmup_s, config.partition_start_s
    )
    during_rate, during_n = _success_rate(
        samples, config.partition_start_s, config.partition_heal_s
    )
    post_rate, post_n = _success_rate(
        samples, config.partition_heal_s, config.duration_s
    )
    pre_coherence = _mean_in_window(
        coherence, config.warmup_s, config.partition_start_s
    )
    min_coherence = min(
        (
            v
            for t, v in coherence
            if config.partition_start_s <= t < config.partition_heal_s
        ),
        default=float("nan"),
    )
    detectors = [node.rpc.detector for node in ring.population.nodes]
    recoveries = [r for d in detectors for r in d.recovery_times_s]
    row = ResilienceRow(
        system=system,
        pre_success_rate=pre_rate,
        partition_success_rate=during_rate,
        post_success_rate=post_rate,
        min_ring_coherence=min_coherence,
        repair_time_s=_repair_time(coherence, config, pre_coherence),
        lookups=pre_n + during_n + post_n,
        rpc_timeouts=sum(d.timeouts for d in detectors),
        rpc_retransmits=sum(d.retransmits for d in detectors),
        max_suspected_peers=max(len(d.suspected) for d in detectors),
        partition_drops=network.dropped("partition"),
        mean_recovery_s=(
            sum(recoveries) / len(recoveries) if recoveries else 0.0
        ),
    )
    metrics = OBS.metrics
    if metrics is not None:
        prefix = f"resilience.{system}.r{run_index}"
        metrics.counter(prefix + ".lookups").inc(row.lookups)
        metrics.counter(prefix + ".rpc_timeouts").inc(row.rpc_timeouts)
        metrics.counter(prefix + ".rpc_retransmits").inc(row.rpc_retransmits)
        metrics.counter(prefix + ".partition_drops").inc(row.partition_drops)
        if not math.isnan(row.min_ring_coherence):
            metrics.gauge(prefix + ".min_ring_coherence").set(
                row.min_ring_coherence
            )
    return row


def run_resilience(
    config: ResilienceConfig, systems: Sequence[str] = SYSTEMS
) -> List[ResilienceRow]:
    return [run_resilience_cell(config, system) for system in systems]
