"""Command-line experiment runner.

Regenerate any paper figure (or the ablations) from the shell::

    python -m repro.experiments.runner fig5 [--paper-scale] [--workers N]
    python -m repro.experiments.runner fig6 [--workers N]
    python -m repro.experiments.runner fig7 [--workers N]
    python -m repro.experiments.runner fig8 [--runs 10] [--workers N]
    python -m repro.experiments.runner resilience
    python -m repro.experiments.runner ablations [--workers N]
    python -m repro.experiments.runner overload [--smoke]

Scaled-down parameters by default (seconds to minutes); ``--paper-scale``
switches to the paper's §7 configurations (minutes to an hour), and
``--preset`` picks a named population scale without changing anything
else (fig5: ``120``/``1k``/``10k``; fig8: ``1k``/``100k``/``1m`` —
the same scales the committed ``BENCH_*.json`` baselines use).

``--engine NAME`` selects the simulation engine: ``object`` (default)
or ``columnar`` for fig5/fig6/fig7 (the flat-array live-protocol
engine of :mod:`repro.chord.columnar`; bit-identical metrics, required
at >=100k nodes), and ``columnar`` (default) or ``legacy`` for fig8's
worm engines.  Unknown names are rejected with the available list.

``--workload NAME`` / ``--overload NAME`` (fig5 and overload) select
the key-popularity model (``poisson``, ``zipf``) and the arrival shape
(``none``, ``spike``, ``ramp``, ``diurnal``) of the lookup workload —
see :mod:`repro.workload` and ``docs/serving.md``.  The ``overload``
experiment compares admission policies (shed vs noshed) across the
shaped load and reports p99/p999 tail latency and goodput.

``--workers N`` fans the independent (system/scenario, seed) cells of
fig5/fig6/fig7/fig8/ablations across N processes (see
:mod:`repro.experiments.parallel`); the default of 1 runs everything
serially, in-process, and the output is bit-identical either way.

Observability (see :mod:`repro.obs` and ``docs/observability.md``):

* ``--metrics FILE`` collects the run's metrics registry and writes a
  snapshot (JSON, or CSV when FILE ends in ``.csv``).  Byte-identical
  at any ``--workers`` count.
* ``--trace FILE`` records a Chrome ``trace_event`` JSON viewable at
  https://ui.perfetto.dev.  Serial-only: forces ``--workers 1``.
* ``--profile`` runs under cProfile *and* prints a per-phase
  wall/CPU/event-rate report.

Correctness (see :mod:`repro.invariants` and ``docs/correctness.md``):

* ``--invariants sample`` (fig5 and resilience) samples the Zave ring
  invariants and the Verme containment invariant on the sim clock
  during the run and prints a violation summary.  Serial-only: forces
  ``--workers 1``.
* ``--invariants strict`` additionally writes
  ``invariants_<figure>.json`` (the structured violation report) and
  exits non-zero if any hard violation was recorded, printing a
  one-command repro line.
* ``--seed N`` overrides the experiment config's base seed, so a CI
  invariant failure reproduces locally with the printed command.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from ..analysis.export import write_rows_csv, write_series_csv
from ..analysis.tables import format_table
from ..obs import OBS, disable as obs_disable, enable as obs_enable
from ..worm import ENGINES as WORM_ENGINES, WormScenarioConfig
from .dht_ops import DhtExperimentConfig
from .fig5_lookup_latency import ENGINES as OVERLAY_ENGINES, Fig5Config
from .fig8_worm_propagation import Fig8Config, curve_series, summarise_fig8_runs
from .parallel import (
    fig8_curves,
    last_peak_rss_kib,
    last_worker_rss_kib,
    run_ablations_parallel,
    run_dht_parallel,
    run_fig5_parallel,
    run_fig8_cells,
)
from .resilience import ResilienceConfig, run_resilience


def _fig8_scaled(cfg: Fig8Config, num_nodes: int, num_sections: int) -> Fig8Config:
    return replace(
        cfg,
        scenario_config=replace(
            cfg.scenario_config,
            num_nodes=num_nodes,
            num_sections=num_sections,
        ),
    )


#: ``--preset`` tables: named population scales per figure, mirroring
#: the perf-harness presets (``benchmarks/perf/fig5_lookup.py`` and
#: ``benchmarks/perf/worm_propagation.py``) so runner output lines up
#: with the committed ``BENCH_*.json`` baselines.  The dense King
#: matrix is O(n^2) memory, hence king-coords at 1k nodes and up.
PRESETS = {
    "fig5": {
        "120": lambda cfg: cfg,
        "1k": lambda cfg: replace(
            cfg, num_nodes=1000, duration_s=600.0, latency_model="king-coords"
        ),
        "10k": lambda cfg: replace(
            cfg, num_nodes=10_000, duration_s=600.0, latency_model="king-coords"
        ),
    },
    "fig8": {
        "1k": lambda cfg: _fig8_scaled(cfg, 1000, 64),
        "100k": lambda cfg: _fig8_scaled(cfg, 100_000, 4096),
        "1m": lambda cfg: _fig8_scaled(cfg, 1_000_000, 4096),
    },
}


#: ``--engine`` tables: the simulation engines each figure can run on,
#: first entry = default.  fig5/6/7 share the overlay engines (object
#: node graph vs the columnar flat-array engine, bit-identical
#: metrics); fig8 has its own pair of worm engines.
ENGINE_CHOICES = {
    "fig5": OVERLAY_ENGINES,
    "fig6": OVERLAY_ENGINES,
    "fig7": OVERLAY_ENGINES,
    "fig8": ("columnar",) + tuple(e for e in sorted(WORM_ENGINES) if e != "columnar"),
    "overload": OVERLAY_ENGINES,
}


def _apply_preset(args, cfg):
    if args.preset is not None:
        cfg = PRESETS[args.figure][args.preset](cfg)
    return cfg


def _apply_engine(args, cfg):
    if args.engine is not None:
        cfg = replace(cfg, engine=args.engine)
    return cfg


def _apply_seed(args, cfg):
    if args.seed is not None:
        cfg = replace(cfg, seed=args.seed)
    return cfg


def _apply_workload(args, cfg):
    if args.workload is not None:
        cfg = replace(cfg, workload=args.workload)
    if args.overload is not None:
        cfg = replace(cfg, overload=args.overload)
    return cfg


def _fig5(args) -> None:
    cfg = Fig5Config()
    if args.paper_scale:
        cfg = cfg.paper_scale()
    cfg = _apply_preset(args, cfg)
    cfg = _apply_seed(args, cfg)
    cfg = _apply_engine(args, cfg)
    cfg = _apply_workload(args, cfg)
    rows = run_fig5_parallel(cfg, workers=args.workers)
    if args.csv:
        print(f"wrote {write_rows_csv(Path(args.csv) / 'fig5.csv', rows)}")
    print(format_table(
        ["system", "lifetime_s", "mean_lat_s", "hops", "fail_rate",
         "lookups", "maint_B/node/s"],
        [[r.system, r.mean_lifetime_s, round(r.mean_latency_s, 4),
          round(r.mean_hops, 2), round(r.failure_rate, 4), r.lookups,
          round(r.maintenance_bytes_per_node_s, 1)] for r in rows],
    ))


def _fig67(args, which: str) -> None:
    cfg = DhtExperimentConfig(num_nodes=400, num_sections=32)
    if args.paper_scale:
        cfg = cfg.paper_scale()
    cfg = _apply_seed(args, cfg)
    cfg = _apply_engine(args, cfg)
    results = run_dht_parallel(cfg, workers=args.workers)
    if args.csv:
        flat = [row for res in results for row in res.rows()]
        print(f"wrote {write_rows_csv(Path(args.csv) / (which + '.csv'), flat)}")
    rows = []
    for res in results:
        for row in res.rows():
            if which == "fig6":
                rows.append([row.system, row.operation,
                             round(row.mean_latency_s, 3),
                             round(row.median_latency_s, 3), row.operations])
            else:
                rows.append([row.system, row.operation,
                             round(row.mean_bytes / 1024, 1), row.operations])
    headers = (
        ["system", "op", "mean_lat_s", "median_lat_s", "ops"]
        if which == "fig6"
        else ["system", "op", "mean_KiB", "ops"]
    )
    print(format_table(headers, rows))


def _fig8(args) -> None:
    cfg = Fig8Config(runs=args.runs)
    if args.paper_scale:
        cfg = cfg.paper_scale()
    cfg = _apply_preset(args, cfg)
    if args.seed is not None:
        cfg = replace(
            cfg,
            scenario_config=replace(cfg.scenario_config, seed=args.seed),
        )
    if args.engine is not None and args.engine != cfg.scenario_config.engine:
        cfg = replace(
            cfg,
            scenario_config=replace(cfg.scenario_config, engine=args.engine),
        )
    grouped = run_fig8_cells(cfg, workers=args.workers)
    rows = [summarise_fig8_runs(s, results) for s, results in grouped.items()]
    if args.csv:
        print(f"wrote {write_rows_csv(Path(args.csv) / 'fig8.csv', rows)}")
        # Resample the curves already in hand instead of re-running.
        series = curve_series(fig8_curves(grouped), cfg.horizons)
        print(f"wrote {write_series_csv(Path(args.csv) / 'fig8_curves.csv', series)}")
        from ..analysis.asciiplot import strip_chart

        print(strip_chart(series))
    print(format_table(
        ["scenario", "population", "vulnerable", "final_infected",
         "t10%_s", "t50%_s", "t95%_s"],
        [[r.scenario, r.population, r.vulnerable, r.final_infected,
          _r(r.time_to_10pct_s), _r(r.time_to_50pct_s), _r(r.time_to_95pct_s)]
         for r in rows],
    ))


def _resilience(args) -> None:
    cfg = ResilienceConfig()
    if args.paper_scale:
        cfg = cfg.paper_scale()
    cfg = _apply_seed(args, cfg)
    rows = run_resilience(cfg)
    if args.csv:
        print(f"wrote {write_rows_csv(Path(args.csv) / 'resilience.csv', rows)}")
    print(format_table(
        ["system", "pre_ok", "part_ok", "post_ok", "min_coh", "repair_s",
         "lookups", "timeouts", "retransmits", "part_drops"],
        [[r.system, round(r.pre_success_rate, 3),
          round(r.partition_success_rate, 3), round(r.post_success_rate, 3),
          round(r.min_ring_coherence, 3), _r(r.repair_time_s), r.lookups,
          r.rpc_timeouts, r.rpc_retransmits, r.partition_drops]
         for r in rows],
    ))


def _ablations(args) -> None:
    cfg = WormScenarioConfig(num_nodes=3000, num_sections=128, seed=9)
    cfg = _apply_seed(args, cfg)
    out = run_ablations_parallel(cfg, until=200.0, workers=args.workers)
    nf = out["naive_finger"]
    print("finger displacement:")
    print(f"  displaced fingers : {nf.infected_with_displacement}/{nf.vulnerable} infected")
    print(f"  naive fingers     : {nf.infected_naive_fingers}/{nf.vulnerable} infected")
    av = out["availability"]
    print("replication vs type-wide outbreak:")
    print(f"  two sections   : {av.survivors_two_sections:.1%} keys readable")
    print(f"  single section : {av.survivors_single_section:.1%} keys readable")
    load = out["load"]
    print("ownership load (gini):"
          f" chord={load.chord.gini:.3f} verme={load.verme.gini:.3f}"
          f" (corner rule on {load.verme.predecessor_rule_fraction:.1%} of keys)")
    for mt in out["multitype"]:
        print(f"{mt.num_types} types: worm confined to "
              f"{mt.infected}/{mt.vulnerable} vulnerable nodes")


def _overload(args) -> None:
    from .overload import OverloadConfig, run_overload, smoke_config

    cfg = smoke_config() if args.smoke else OverloadConfig()
    cfg = _apply_seed(args, cfg)
    cfg = _apply_engine(args, cfg)
    cfg = _apply_workload(args, cfg)
    rows = run_overload(cfg)
    if args.csv:
        print(f"wrote {write_rows_csv(Path(args.csv) / 'overload.csv', rows)}")
    print(format_table(
        ["policy", "lookups", "ok", "shed_rate", "shed_queue", "p50_s",
         "p99_s", "p999_s", "gp_pre/s", "gp_over/s", "gp_post/s"],
        [[r.policy, r.lookups, r.successes, r.shed_rate, r.shed_queue,
          round(r.p50_latency_s, 3), round(r.p99_latency_s, 3),
          round(r.p999_latency_s, 3), round(r.goodput_pre_per_s, 2),
          round(r.goodput_overload_per_s, 2), round(r.goodput_post_per_s, 2)]
         for r in rows],
    ))
    shed = next((r for r in rows if r.policy == "shed"), None)
    noshed = next((r for r in rows if r.policy == "noshed"), None)
    if shed is not None and noshed is not None and shed.goodput_pre_per_s > 0:
        held = shed.goodput_overload_per_s >= 0.8 * shed.goodput_pre_per_s
        degraded = (
            noshed.goodput_post_per_s < 0.8 * noshed.goodput_pre_per_s
            or noshed.goodput_overload_per_s < 0.8 * shed.goodput_overload_per_s
        )
        print(f"criterion: shed goodput held within 20% of pre-spike: "
              f"{'yes' if held else 'NO'}; noshed control degraded: "
              f"{'yes' if degraded else 'NO'}")


def _r(v):
    return None if v is None else round(v, 1)


def main(argv=None) -> int:
    """Run one figure driver from CLI arguments and return the exit code.

    Parses ``argv`` (defaults to ``sys.argv[1:]``), applies scale flags
    (``--paper-scale`` / ``--preset``), enables the requested
    observability instruments around the figure dispatch, and writes the
    ``--metrics`` / ``--trace`` outputs plus the run summary afterwards.
    Observability is always restored to disabled on exit, so repeated
    in-process calls (tests) do not leak instruments into each other.
    """
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "figure",
        choices=["fig5", "fig6", "fig7", "fig8", "resilience", "ablations",
                 "overload"],
    )
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument(
        "--preset", metavar="NAME", default=None,
        help="named population scale (fig5: 120, 1k, 10k; fig8: 1k, "
             "100k, 1m) matching the perf-harness presets")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also export the figure's data as CSV into DIR")
    parser.add_argument("--runs", type=int, default=2, help="fig8 repetitions")
    parser.add_argument(
        "--engine", metavar="NAME", default=None,
        help="simulation engine (fig5/fig6/fig7: object, columnar; "
             "fig8: columnar, legacy); both engines of a figure emit "
             "bit-identical metrics, the default is the figure's "
             "reference engine (fig8: columnar)")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="processes for fig5/fig6/fig7/fig8/ablations cells (1 = "
             "serial, bit-identical output either way)")
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="collect a metrics snapshot and write it to FILE (JSON, "
             "or CSV when FILE ends in .csv); byte-identical at any "
             "--workers count")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a Chrome trace_event JSON to FILE (view at "
             "https://ui.perfetto.dev); forces --workers 1")
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile, write profile_<figure>.pstats, and "
             "print a per-phase wall/CPU/event-rate report (profiles "
             "this process only; combine with --workers 1)")
    parser.add_argument(
        "--invariants", choices=["sample", "strict"], default=None,
        help="check ring/containment invariants on the sim clock during "
             "fig5/resilience runs (see docs/correctness.md); strict "
             "writes invariants_<figure>.json and exits non-zero on "
             "hard violations; forces --workers 1")
    parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="override the experiment config's base seed (reproduce CI "
             "invariant failures locally)")
    parser.add_argument(
        "--workload", metavar="NAME", default=None,
        help="key-popularity model for fig5/overload lookups: poisson "
             "(uniform keys, the default) or zipf (see docs/serving.md)")
    parser.add_argument(
        "--overload", metavar="NAME", default=None,
        help="arrival shape for fig5/overload lookups: none (default), "
             "spike, ramp, or diurnal (see docs/serving.md)")
    parser.add_argument(
        "--smoke", action="store_true",
        help="overload only: the seconds-scale CI cell instead of the "
             "default scale")
    args = parser.parse_args(argv)
    if args.preset is not None:
        table = PRESETS.get(args.figure)
        if table is None:
            parser.error(f"--preset is not supported for {args.figure}")
        if args.preset not in table:
            parser.error(f"unknown {args.figure} preset {args.preset!r} "
                         f"(choices: {', '.join(table)})")
        if args.paper_scale:
            parser.error("--preset and --paper-scale are mutually exclusive")
    if args.engine is not None:
        engines = ENGINE_CHOICES.get(args.figure)
        if engines is None:
            parser.error(f"--engine is not supported for {args.figure}")
        if args.engine not in engines:
            parser.error(f"unknown {args.figure} engine {args.engine!r} "
                         f"(available: {', '.join(engines)})")
    if args.workload is not None or args.overload is not None:
        if args.figure not in ("fig5", "overload"):
            parser.error(
                "--workload/--overload are only supported for fig5 and "
                "overload"
            )
        from ..workload import OVERLOADS, WORKLOADS

        if args.workload is not None and args.workload not in WORKLOADS:
            parser.error(f"unknown workload {args.workload!r} "
                         f"(choices: {', '.join(WORKLOADS)})")
        if args.overload is not None and args.overload not in OVERLOADS:
            parser.error(f"unknown overload {args.overload!r} "
                         f"(choices: {', '.join(OVERLOADS)})")
    if args.smoke and args.figure != "overload":
        parser.error("--smoke is only supported for overload")
    if args.trace is not None and args.workers != 1:
        print("--trace is serial-only; forcing --workers 1", file=sys.stderr)
        args.workers = 1
    if args.invariants is not None:
        if args.figure not in ("fig5", "resilience", "overload"):
            parser.error(
                "--invariants is only supported for fig5, resilience and "
                "overload"
            )
        if args.workers != 1:
            print("--invariants is serial-only; forcing --workers 1",
                  file=sys.stderr)
            args.workers = 1
    started = time.time()
    dispatch = {
        "fig5": lambda: _fig5(args),
        "fig6": lambda: _fig67(args, "fig6"),
        "fig7": lambda: _fig67(args, "fig7"),
        "fig8": lambda: _fig8(args),
        "resilience": lambda: _resilience(args),
        "ablations": lambda: _ablations(args),
        "overload": lambda: _overload(args),
    }[args.figure]
    obs_on = (
        args.metrics is not None or args.trace is not None or args.profile
    )
    if obs_on:
        obs_enable(
            metrics=args.metrics is not None,
            trace=args.trace is not None,
            profile=args.profile,
        )
    checker = None
    if args.invariants is not None:
        from ..invariants import InvariantChecker

        checker = InvariantChecker(mode=args.invariants, seed=args.seed)
        OBS.invariants = checker
    try:
        if args.profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                dispatch()
            finally:
                profiler.disable()
                pstats_path = f"profile_{args.figure}.pstats"
                profiler.dump_stats(pstats_path)
                print(f"\nprofile written to {pstats_path} "
                      f"(inspect: python -m pstats {pstats_path})")
        else:
            dispatch()
        if args.metrics is not None:
            path = Path(args.metrics)
            text = (
                OBS.metrics.to_csv()
                if path.suffix == ".csv"
                else OBS.metrics.to_json()
            )
            path.write_text(text)
            print(f"metrics snapshot written to {path}")
        if args.trace is not None:
            OBS.trace.write(args.trace)
            print(f"trace written to {args.trace} "
                  f"(open at https://ui.perfetto.dev)")
        if args.profile:
            print("phase profile:")
            print(OBS.profile.format_report())
    finally:
        if obs_on:
            obs_disable()
        OBS.invariants = None
    exit_code = 0
    if checker is not None:
        exit_code = _report_invariants(args, checker)
    summary = f"\n[{args.figure} done in {time.time() - started:.1f}s"
    peak = last_peak_rss_kib()
    if peak is not None:
        summary += (f", peak worker RSS {peak:,} KiB"
                    f" across {len(last_worker_rss_kib())} process(es)")
    print(summary + "]")
    return exit_code


def _repro_command(args) -> str:
    """The one-command line that reproduces an invariant failure."""
    parts = ["python -m repro.experiments.runner", args.figure]
    if args.paper_scale:
        parts.append("--paper-scale")
    if args.preset is not None:
        parts.append(f"--preset {args.preset}")
    seed = args.seed
    if seed is None:
        if args.figure == "overload":
            from .overload import OverloadConfig

            seed = OverloadConfig().seed
        else:
            seed = {
                "fig5": Fig5Config().seed,
                "resilience": ResilienceConfig().seed,
            }.get(args.figure, 0)
    parts.append(f"--seed {seed}")
    if getattr(args, "smoke", False):
        parts.append("--smoke")
    parts.append("--invariants strict")
    return " ".join(parts)


def _report_invariants(args, checker) -> int:
    """Print the checker summary; in strict mode write the JSON report
    and return 1 (with a repro line) on hard violations."""
    print("\n" + checker.summary())
    errors = checker.errors
    if args.invariants == "strict":
        import json

        path = Path(f"invariants_{args.figure}.json")
        path.write_text(json.dumps(checker.report(), indent=2) + "\n")
        print(f"invariant report written to {path}")
        if errors:
            for violation in errors[:10]:
                print(f"  {violation}")
            if len(errors) > 10:
                print(f"  ... {len(errors) - 10} more (see {path})")
            print("reproduce with:")
            print(f"  {_repro_command(args)}")
            return 1
    elif errors:
        for violation in errors[:10]:
            print(f"  {violation}")
        print("re-run with --invariants strict for the full JSON report")
    return 0


if __name__ == "__main__":
    sys.exit(main())
