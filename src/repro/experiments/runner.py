"""Command-line experiment runner.

Regenerate any paper figure (or the ablations) from the shell::

    python -m repro.experiments.runner fig5 [--paper-scale] [--workers N]
    python -m repro.experiments.runner fig6 [--workers N]
    python -m repro.experiments.runner fig7 [--workers N]
    python -m repro.experiments.runner fig8 [--runs 10] [--workers N]
    python -m repro.experiments.runner resilience
    python -m repro.experiments.runner ablations [--workers N]

Scaled-down parameters by default (seconds to minutes); ``--paper-scale``
switches to the paper's §7 configurations (minutes to an hour).

``--workers N`` fans the independent (system/scenario, seed) cells of
fig5/fig6/fig7/fig8/ablations across N processes (see
:mod:`repro.experiments.parallel`); the default of 1 runs everything
serially, in-process, and the output is bit-identical either way.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from ..analysis.export import write_rows_csv, write_series_csv
from ..analysis.tables import format_table
from ..worm import ENGINES, WormScenarioConfig
from .dht_ops import DhtExperimentConfig
from .fig5_lookup_latency import Fig5Config
from .fig8_worm_propagation import Fig8Config, curve_series, summarise_fig8_runs
from .parallel import (
    fig8_curves,
    last_peak_rss_kib,
    last_worker_rss_kib,
    run_ablations_parallel,
    run_dht_parallel,
    run_fig5_parallel,
    run_fig8_cells,
)
from .resilience import ResilienceConfig, run_resilience


def _fig5(args) -> None:
    cfg = Fig5Config()
    if args.paper_scale:
        cfg = cfg.paper_scale()
    rows = run_fig5_parallel(cfg, workers=args.workers)
    if args.csv:
        print(f"wrote {write_rows_csv(Path(args.csv) / 'fig5.csv', rows)}")
    print(format_table(
        ["system", "lifetime_s", "mean_lat_s", "hops", "fail_rate",
         "lookups", "maint_B/node/s"],
        [[r.system, r.mean_lifetime_s, round(r.mean_latency_s, 4),
          round(r.mean_hops, 2), round(r.failure_rate, 4), r.lookups,
          round(r.maintenance_bytes_per_node_s, 1)] for r in rows],
    ))


def _fig67(args, which: str) -> None:
    cfg = DhtExperimentConfig(num_nodes=400, num_sections=32)
    if args.paper_scale:
        cfg = cfg.paper_scale()
    results = run_dht_parallel(cfg, workers=args.workers)
    if args.csv:
        flat = [row for res in results for row in res.rows()]
        print(f"wrote {write_rows_csv(Path(args.csv) / (which + '.csv'), flat)}")
    rows = []
    for res in results:
        for row in res.rows():
            if which == "fig6":
                rows.append([row.system, row.operation,
                             round(row.mean_latency_s, 3),
                             round(row.median_latency_s, 3), row.operations])
            else:
                rows.append([row.system, row.operation,
                             round(row.mean_bytes / 1024, 1), row.operations])
    headers = (
        ["system", "op", "mean_lat_s", "median_lat_s", "ops"]
        if which == "fig6"
        else ["system", "op", "mean_KiB", "ops"]
    )
    print(format_table(headers, rows))


def _fig8(args) -> None:
    cfg = Fig8Config(runs=args.runs)
    if args.paper_scale:
        cfg = cfg.paper_scale()
    if args.engine != cfg.scenario_config.engine:
        cfg = replace(
            cfg,
            scenario_config=replace(cfg.scenario_config, engine=args.engine),
        )
    grouped = run_fig8_cells(cfg, workers=args.workers)
    rows = [summarise_fig8_runs(s, results) for s, results in grouped.items()]
    if args.csv:
        print(f"wrote {write_rows_csv(Path(args.csv) / 'fig8.csv', rows)}")
        # Resample the curves already in hand instead of re-running.
        series = curve_series(fig8_curves(grouped), cfg.horizons)
        print(f"wrote {write_series_csv(Path(args.csv) / 'fig8_curves.csv', series)}")
        from ..analysis.asciiplot import strip_chart

        print(strip_chart(series))
    print(format_table(
        ["scenario", "population", "vulnerable", "final_infected",
         "t10%_s", "t50%_s", "t95%_s"],
        [[r.scenario, r.population, r.vulnerable, r.final_infected,
          _r(r.time_to_10pct_s), _r(r.time_to_50pct_s), _r(r.time_to_95pct_s)]
         for r in rows],
    ))


def _resilience(args) -> None:
    cfg = ResilienceConfig()
    if args.paper_scale:
        cfg = cfg.paper_scale()
    rows = run_resilience(cfg)
    if args.csv:
        print(f"wrote {write_rows_csv(Path(args.csv) / 'resilience.csv', rows)}")
    print(format_table(
        ["system", "pre_ok", "part_ok", "post_ok", "min_coh", "repair_s",
         "lookups", "timeouts", "retransmits", "part_drops"],
        [[r.system, round(r.pre_success_rate, 3),
          round(r.partition_success_rate, 3), round(r.post_success_rate, 3),
          round(r.min_ring_coherence, 3), _r(r.repair_time_s), r.lookups,
          r.rpc_timeouts, r.rpc_retransmits, r.partition_drops]
         for r in rows],
    ))


def _ablations(args) -> None:
    cfg = WormScenarioConfig(num_nodes=3000, num_sections=128, seed=9)
    out = run_ablations_parallel(cfg, until=200.0, workers=args.workers)
    nf = out["naive_finger"]
    print("finger displacement:")
    print(f"  displaced fingers : {nf.infected_with_displacement}/{nf.vulnerable} infected")
    print(f"  naive fingers     : {nf.infected_naive_fingers}/{nf.vulnerable} infected")
    av = out["availability"]
    print("replication vs type-wide outbreak:")
    print(f"  two sections   : {av.survivors_two_sections:.1%} keys readable")
    print(f"  single section : {av.survivors_single_section:.1%} keys readable")
    load = out["load"]
    print("ownership load (gini):"
          f" chord={load.chord.gini:.3f} verme={load.verme.gini:.3f}"
          f" (corner rule on {load.verme.predecessor_rule_fraction:.1%} of keys)")
    for mt in out["multitype"]:
        print(f"{mt.num_types} types: worm confined to "
              f"{mt.infected}/{mt.vulnerable} vulnerable nodes")


def _r(v):
    return None if v is None else round(v, 1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "figure",
        choices=["fig5", "fig6", "fig7", "fig8", "resilience", "ablations"],
    )
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also export the figure's data as CSV into DIR")
    parser.add_argument("--runs", type=int, default=2, help="fig8 repetitions")
    parser.add_argument(
        "--engine", choices=sorted(ENGINES), default="columnar",
        help="fig8 worm engine (identical curves; legacy = per-event "
             "reference implementation)")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="processes for fig5/fig6/fig7/fig8/ablations cells (1 = "
             "serial, bit-identical output either way)")
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and write profile_<figure>.pstats "
             "(profiles this process only; combine with --workers 1)")
    args = parser.parse_args(argv)
    started = time.time()
    dispatch = {
        "fig5": lambda: _fig5(args),
        "fig6": lambda: _fig67(args, "fig6"),
        "fig7": lambda: _fig67(args, "fig7"),
        "fig8": lambda: _fig8(args),
        "resilience": lambda: _resilience(args),
        "ablations": lambda: _ablations(args),
    }[args.figure]
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            dispatch()
        finally:
            profiler.disable()
            pstats_path = f"profile_{args.figure}.pstats"
            profiler.dump_stats(pstats_path)
            print(f"\nprofile written to {pstats_path} "
                  f"(inspect: python -m pstats {pstats_path})")
    else:
        dispatch()
    summary = f"\n[{args.figure} done in {time.time() - started:.1f}s"
    peak = last_peak_rss_kib()
    if peak is not None:
        summary += (f", peak worker RSS {peak:,} KiB"
                    f" across {len(last_worker_rss_kib())} process(es)")
    print(summary + "]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
