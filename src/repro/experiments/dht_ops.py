"""Figures 6 and 7: DHT get/put latency and bandwidth.

Paper setup (§7.2): same overlay parameters as Fig. 5 but on a GT-ITM
transit-stub topology (the King data set has no bandwidth values).
Four systems are compared: DHash over Chord and the three VerDi
variants over Verme.  One run measures both figures: per-operation
latency (Fig. 6) and per-operation bytes via message tagging (Fig. 7);
background replication is excluded, as in the paper.

Expected shape: get latency Fast ≈ DHash < Compromise (≤ ~31% over
DHash) < Secure; put latency DHash < Fast ≈ Compromise < Secure;
bandwidth DHash ≈ Fast, Compromise ≈ 2x on gets, Secure pays a data
transfer per hop, and Fast/Compromise puts add one cross-type copy.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence, Tuple, Type

from ..analysis.stats import OperationStats
from ..chord.config import OverlayConfig
from ..dht.base import DhtConfig, DhtNode, OpResult
from ..dht.compromise import CompromiseVerDiNode
from ..dht.dhash import DHashNode
from ..dht.fast import FastVerDiNode
from ..dht.secure import SecureVerDiNode
from ..ids.idspace import IdSpace
from ..ids.sections import VermeIdLayout
from ..net.gtitm import GtItmConfig, gtitm_topology
from ..net.message import DEFAULT_BLOCK_BYTES
from ..net.network import Network
from ..sim import RngRegistry, Simulator
from .builders import build_ring
from .records import DhtOpRow

DHT_SYSTEMS: Dict[str, Tuple[Type[DhtNode], bool]] = {
    # name -> (layer class, needs a Verme ring)
    "dhash": (DHashNode, False),
    "fast-verdi": (FastVerDiNode, True),
    "secure-verdi": (SecureVerDiNode, True),
    "compromise-verdi": (CompromiseVerDiNode, True),
}


@dataclass(frozen=True)
class DhtExperimentConfig:
    """Scaled-down defaults; ``paper_scale()`` restores §7.2's sizes."""

    num_nodes: int = 120                   # paper: 1740
    num_sections: int = 16                 # paper: 128
    id_bits: int = 64
    num_puts: int = 40
    num_gets: int = 40
    block_bytes: int = DEFAULT_BLOCK_BYTES
    num_replicas: int = 6
    num_successors: int = 10
    num_predecessors: int = 10
    op_interval_s: float = 2.0             # spacing between issued ops
    seed: int = 0
    engine: str = "object"                 # "object" | "columnar"

    def paper_scale(self) -> "DhtExperimentConfig":
        return replace(self, num_nodes=1740, num_sections=128, num_puts=200, num_gets=200)

    def overlay_config(self) -> OverlayConfig:
        return OverlayConfig(
            space=IdSpace(self.id_bits),
            num_successors=self.num_successors,
            num_predecessors=self.num_predecessors,
        )


@dataclass
class DhtCellResult:
    """Latency and bandwidth stats for one system's gets and puts."""

    system: str
    get_stats: OperationStats
    put_stats: OperationStats

    def rows(self) -> List[DhtOpRow]:
        out = []
        for op_name, stats in (("get", self.get_stats), ("put", self.put_stats)):
            lat = stats.latency_summary()
            byt = stats.bytes_summary()
            out.append(
                DhtOpRow(
                    system=self.system,
                    operation=op_name,
                    mean_latency_s=lat.mean,
                    median_latency_s=lat.median,
                    mean_bytes=byt.mean,
                    operations=stats.successes,
                    failures=stats.failures,
                )
            )
        return out


def run_dht_cell(config: DhtExperimentConfig, system: str) -> DhtCellResult:
    """Build one ring + DHT layer and drive the put/get workload."""
    return run_dht_cell_instrumented(config, system)[0]


def run_dht_cell_instrumented(
    config: DhtExperimentConfig, system: str
) -> Tuple[DhtCellResult, int]:
    """Like :func:`run_dht_cell` but also returns the kernel event
    count, for the perf-regression harness's events/s metric."""
    if system not in DHT_SYSTEMS:
        raise ValueError(f"unknown DHT system {system!r}")
    if config.engine not in ("object", "columnar"):
        raise ValueError(f"unknown engine {config.engine!r}")
    layer_cls, needs_verme = DHT_SYSTEMS[system]
    # str hashing is per-process randomised; derive_seed is stable.
    from ..sim.rng import derive_seed

    rngs = RngRegistry(derive_seed(config.seed, f"dht:{system}"))
    sim = Simulator()
    topology = gtitm_topology(
        GtItmConfig(num_hosts=config.num_nodes, seed=rngs.stream("gtitm").randrange(2**31))
    )
    # The scalar host models are numerically identical to the dense
    # matrices but keep memory at O(routers^2 + hosts), which is what
    # lets this cell run at 10k nodes.
    network = Network(
        sim, topology.host_latency, bandwidth_model=topology.host_bandwidth
    )
    overlay_cfg = config.overlay_config()
    layout = None
    if needs_verme:
        layout = VermeIdLayout.for_sections(overlay_cfg.space, config.num_sections)
    dht_cfg = DhtConfig(num_replicas=config.num_replicas)
    engine = None
    if config.engine == "columnar":
        from ..chord.columnar_dht import ColumnarDhtEngine

        engine = ColumnarDhtEngine(sim, network, overlay_cfg, layout)
        engine.build_dht(config.num_nodes, rngs)
        layers = [layer_cls(adapter, dht_cfg) for adapter in engine.adapters]
    else:
        ring = build_ring(sim, network, overlay_cfg, config.num_nodes, rngs, layout)
        layers = [layer_cls(node, dht_cfg) for node in ring.nodes]
    for layer in layers:
        layer.start()

    workload_rng = rngs.stream("ops")
    payload_rng = rngs.stream("payloads")
    get_stats = OperationStats()
    put_stats = OperationStats()
    accounting = network.accounting
    stored_keys: List[int] = []

    def record(stats: OperationStats) -> Callable[[OpResult], None]:
        def _cb(result: OpResult) -> None:
            stats.record(
                result.ok, result.latency_s, accounting.bytes_for_op(result.op_tag)
            )
            if result.ok and result.op == "put":
                stored_keys.append(result.key)

        return _cb

    # Phase 1: puts, spaced out so ops do not queue behind each other.
    values = [
        payload_rng.randbytes(config.block_bytes) for _ in range(config.num_puts)
    ]
    if engine is not None:
        from ..chord.columnar import frozen_gc

        run_gc = frozen_gc()
    else:
        run_gc = nullcontext()
    with run_gc:
        for i, value in enumerate(values):
            layer = workload_rng.choice(layers)
            sim.schedule(
                i * config.op_interval_s,
                lambda l=layer, v=value: l.put(v, record(put_stats)),
            )
        sim.run(until=config.num_puts * config.op_interval_s + 60.0)

        # Phase 2: gets of the stored blocks from random other clients.
        if stored_keys:
            base = sim.now
            for i in range(config.num_gets):
                key = workload_rng.choice(stored_keys)
                layer = workload_rng.choice(layers)
                sim.schedule(
                    base - sim.now + i * config.op_interval_s,
                    lambda l=layer, k=key: l.get(k, record(get_stats)),
                )
            sim.run(until=base + config.num_gets * config.op_interval_s + 60.0)

    for layer in layers:
        layer.stop()
    events = engine.logical_events(sim.now) if engine is not None else sim.events_processed
    return DhtCellResult(system, get_stats, put_stats), events


def run_dht_experiment(
    config: DhtExperimentConfig, systems: Sequence[str] = tuple(DHT_SYSTEMS)
) -> List[DhtCellResult]:
    return [run_dht_cell(config, system) for system in systems]


def rows_for_figure(results: Sequence[DhtCellResult]) -> List[DhtOpRow]:
    rows: List[DhtOpRow] = []
    for res in results:
        rows.extend(res.rows())
    return rows
