"""Scheduled crash/restart scripts.

:class:`OutageScript` crashes nodes at scripted times and restarts them
(next incarnation, through the real join protocol) when the outage
ends.  It operates on the same :class:`~repro.chord.ring.Population`
and ``NodeFactory`` the churn machinery uses, so scripted outages
compose freely with a running
:class:`~repro.chord.ring.ChurnDriver` — a host already killed by churn
simply has no node to crash when its outage starts, and a restarted
node is churned like any other.

Overlapping or abutting windows on the same host are merged into one
downtime interval before scheduling: a host cannot crash twice without
restarting in between, and a restart must never fire while a later
window still holds the host down.  A permanent outage (infinite
duration) absorbs every later window on its host.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import OBS


@dataclass(frozen=True)
class Outage:
    """One scripted downtime window for a host.

    An infinite ``duration_s`` is a permanent crash (no restart).
    """

    host_slot: int
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("outage duration must be positive")

    @property
    def restart_s(self) -> Optional[float]:
        if math.isinf(self.duration_s):
            return None
        return self.start_s + self.duration_s


def merge_outage_windows(
    outages: Sequence[Outage],
) -> List[Tuple[int, float, float]]:
    """Collapse each host's overlapping/abutting windows into disjoint
    ``(host_slot, start_s, end_s)`` intervals (``end_s`` may be
    ``inf``), sorted by start time then host."""
    by_host: Dict[int, List[Outage]] = {}
    for outage in outages:
        by_host.setdefault(outage.host_slot, []).append(outage)
    merged: List[Tuple[int, float, float]] = []
    for host, windows in by_host.items():
        windows.sort(key=lambda o: o.start_s)
        current_start = current_end = None
        for outage in windows:
            end = outage.start_s + outage.duration_s  # inf-safe
            if current_start is None:
                current_start, current_end = outage.start_s, end
            elif outage.start_s <= current_end:
                current_end = max(current_end, end)
            else:
                merged.append((host, current_start, current_end))
                current_start, current_end = outage.start_s, end
        if current_start is not None:
            merged.append((host, current_start, current_end))
    merged.sort(key=lambda w: (w[1], w[0]))
    return merged


class OutageScript:
    """Replays :class:`Outage` windows against a live population."""

    def __init__(
        self,
        sim,
        population,
        factory,
        rng: random.Random,
        outages: Sequence[Outage],
        retry_delay_s: float = 2.0,
    ) -> None:
        self.sim = sim
        self.population = population
        self.factory = factory
        self.rng = rng
        self.outages = sorted(outages, key=lambda o: o.start_s)
        self.windows = merge_outage_windows(self.outages)
        self.retry_delay_s = retry_delay_s
        self.crashes = 0
        self.restarts = 0
        self.failed_restarts = 0
        self.skipped = 0

    def start(self) -> None:
        for host_slot, start_s, end_s in self.windows:
            self.sim.schedule_at(start_s, self._crash, host_slot, end_s)

    def _node_on_host(self, host_slot: int):
        for node in self.population.nodes:
            if node.address.host_slot == host_slot:
                return node
        return None

    def _crash(self, host_slot: int, end_s: float) -> None:
        node = self._node_on_host(host_slot)
        if node is None or not node.alive:
            self.skipped += 1  # churn got there first
            return
        self.population.remove(node)
        node.crash()
        self.crashes += 1
        inv = OBS.invariants
        if inv is not None:
            inv.note_membership(self.sim)
        if not math.isinf(end_s):
            self.sim.schedule_at(
                end_s,
                self._restart,
                host_slot,
                node.address.incarnation + 1,
            )

    def _restart(self, host_slot: int, incarnation: int) -> None:
        bootstrap = self.population.pick(self.rng)
        if bootstrap is None:
            self.sim.schedule(self.retry_delay_s, self._restart, host_slot, incarnation)
            return
        node = self.factory.create(host_slot, incarnation)
        node.join(
            bootstrap.address,
            on_done=lambda ok: self._restarted(node, host_slot, incarnation, ok),
        )

    def _restarted(self, node, host_slot: int, incarnation: int, ok: bool) -> None:
        if ok:
            self.restarts += 1
            self.population.add(node)
            inv = OBS.invariants
            if inv is not None:
                inv.note_membership(self.sim)
        else:
            self.failed_restarts += 1
            self.sim.schedule(
                self.retry_delay_s, self._restart, host_slot, incarnation + 1
            )
