"""Scheduled crash/restart scripts.

:class:`OutageScript` crashes nodes at scripted times and restarts them
(next incarnation, through the real join protocol) when the outage
ends.  It operates on the same :class:`~repro.chord.ring.Population`
and ``NodeFactory`` the churn machinery uses, so scripted outages
compose freely with a running
:class:`~repro.chord.ring.ChurnDriver` — a host already killed by churn
simply has no node to crash when its outage starts, and a restarted
node is churned like any other.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Outage:
    """One scripted downtime window for a host.

    An infinite ``duration_s`` is a permanent crash (no restart).
    """

    host_slot: int
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("outage duration must be positive")

    @property
    def restart_s(self) -> Optional[float]:
        if math.isinf(self.duration_s):
            return None
        return self.start_s + self.duration_s


class OutageScript:
    """Replays :class:`Outage` windows against a live population."""

    def __init__(
        self,
        sim,
        population,
        factory,
        rng: random.Random,
        outages: Sequence[Outage],
        retry_delay_s: float = 2.0,
    ) -> None:
        self.sim = sim
        self.population = population
        self.factory = factory
        self.rng = rng
        self.outages = sorted(outages, key=lambda o: o.start_s)
        self.retry_delay_s = retry_delay_s
        self.crashes = 0
        self.restarts = 0
        self.failed_restarts = 0
        self.skipped = 0

    def start(self) -> None:
        for outage in self.outages:
            self.sim.schedule_at(outage.start_s, self._crash, outage)

    def _node_on_host(self, host_slot: int):
        for node in self.population.nodes:
            if node.address.host_slot == host_slot:
                return node
        return None

    def _crash(self, outage: Outage) -> None:
        node = self._node_on_host(outage.host_slot)
        if node is None or not node.alive:
            self.skipped += 1  # churn got there first
            return
        self.population.remove(node)
        node.crash()
        self.crashes += 1
        restart_at = outage.restart_s
        if restart_at is not None:
            self.sim.schedule_at(
                restart_at,
                self._restart,
                outage.host_slot,
                node.address.incarnation + 1,
            )

    def _restart(self, host_slot: int, incarnation: int) -> None:
        bootstrap = self.population.pick(self.rng)
        if bootstrap is None:
            self.sim.schedule(self.retry_delay_s, self._restart, host_slot, incarnation)
            return
        node = self.factory.create(host_slot, incarnation)
        node.join(
            bootstrap.address,
            on_done=lambda ok: self._restarted(node, host_slot, incarnation, ok),
        )

    def _restarted(self, node, host_slot: int, incarnation: int, ok: bool) -> None:
        if ok:
            self.restarts += 1
            self.population.add(node)
        else:
            self.failed_restarts += 1
            self.sim.schedule(
                self.retry_delay_s, self._restart, host_slot, incarnation + 1
            )
