"""Per-node failure-detector statistics.

The RPC timeout *is* the failure detector ("every time a node tried to
contact a node that had failed it chose another neighbor", paper
§7.1.2).  :class:`FailureDetectorStats` records what that detector
observed at one node: calls issued, retransmissions, timeouts, which
peers are currently suspected, and — when a suspected peer answers
again — how long the suspicion lasted.  Experiments aggregate these
across a ring to characterise detector behaviour under partitions and
gray failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.addressing import NodeAddress


@dataclass
class PeerRecord:
    """Detector state for one remote endpoint."""

    timeouts: int = 0
    suspected_at: Optional[float] = None
    last_recovery_s: Optional[float] = None


@dataclass
class FailureDetectorStats:
    """One node's view of its peers' health, fed by the RPC layer.

    A peer becomes *suspected* after ``suspect_after`` consecutive call
    timeouts and is cleared (recording the suspicion duration as a
    recovery time) by the next successful reply.
    """

    suspect_after: int = 1
    calls: int = 0
    timeouts: int = 0
    retransmits: int = 0
    peers: Dict[NodeAddress, PeerRecord] = field(default_factory=dict)
    recovery_times_s: List[float] = field(default_factory=list)

    def record_call(self) -> None:
        self.calls += 1

    def record_retransmit(self, dst: NodeAddress) -> None:
        self.retransmits += 1

    def record_timeout(self, dst: NodeAddress, now: float) -> None:
        self.timeouts += 1
        record = self.peers.setdefault(dst, PeerRecord())
        record.timeouts += 1
        if record.suspected_at is None and record.timeouts >= self.suspect_after:
            record.suspected_at = now

    def record_reply(self, dst: NodeAddress, now: float) -> None:
        record = self.peers.get(dst)
        if record is None:
            return
        if record.suspected_at is not None:
            record.last_recovery_s = now - record.suspected_at
            self.recovery_times_s.append(record.last_recovery_s)
            record.suspected_at = None
        record.timeouts = 0

    @property
    def suspected(self) -> List[NodeAddress]:
        """Peers currently considered failed, in insertion order."""
        return [
            addr
            for addr, record in self.peers.items()
            if record.suspected_at is not None
        ]
