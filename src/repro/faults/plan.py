"""Scriptable link- and host-level fault policies.

A :class:`FaultPlan` is consulted by :meth:`repro.net.network.Network.send`
once per message and returns a :class:`LinkVerdict`: deliver (possibly
with added latency) or drop (with a cause tag the network counts).  A
plan composes three fault families:

* :class:`Partition` — host groups that cannot reach each other between
  a scheduled onset and heal time;
* :class:`LinkFault` — per-link (or per-host-set) drop probability and
  added latency inside a time window; :meth:`LinkFault.burst` builds the
  common "total loss burst" special case;
* :class:`GrayFailure` — a host that stays registered but answers
  slowly (every message it sends is delayed) and/or silently loses a
  fraction of its inbound traffic.

Determinism: every probabilistic decision draws from a per-directed-link
``random.Random`` derived from the plan seed via
:func:`repro.sim.rng.derive_seed`, so the verdict sequence on one link
depends only on the traffic that link itself carried — adding faults or
traffic elsewhere never perturbs it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..sim.rng import derive_seed

#: Drop-cause tags a plan can attach to a verdict (the network counts
#: drops under these names, next to its own "loss"/"dead-destination").
CAUSE_PARTITION = "partition"
CAUSE_LINK = "link-fault"
CAUSE_GRAY = "gray-failure"

FAULT_CAUSES = (CAUSE_PARTITION, CAUSE_LINK, CAUSE_GRAY)


@dataclass(frozen=True)
class LinkVerdict:
    """The plan's decision for one message."""

    deliver: bool
    extra_latency_s: float = 0.0
    cause: Optional[str] = None


#: Shared "no fault applies" verdict (avoids one allocation per message).
DELIVER = LinkVerdict(True)


def _hosts(hosts: Optional[Iterable[int]]) -> Optional[FrozenSet[int]]:
    return None if hosts is None else frozenset(hosts)


@dataclass(frozen=True)
class Partition:
    """Host groups mutually unreachable during ``[start_s, heal_s)``.

    Hosts absent from every group keep full connectivity (useful for
    observers and for partitioning only a subset of the population);
    traffic within one group is unaffected.
    """

    groups: Tuple[FrozenSet[int], ...]
    start_s: float
    heal_s: float

    def __post_init__(self) -> None:
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        if self.heal_s <= self.start_s:
            raise ValueError("heal time must be after onset")
        seen: set = set()
        for group in self.groups:
            if seen & group:
                raise ValueError("partition groups must be disjoint")
            seen |= group

    @staticmethod
    def of(
        groups: Iterable[Iterable[int]], start_s: float, heal_s: float
    ) -> "Partition":
        return Partition(
            tuple(frozenset(g) for g in groups), start_s, heal_s
        )

    def _group_of(self, host: int) -> Optional[int]:
        for i, group in enumerate(self.groups):
            if host in group:
                return i
        return None

    def severs(self, src_host: int, dst_host: int, now: float) -> bool:
        if not self.start_s <= now < self.heal_s:
            return False
        a = self._group_of(src_host)
        if a is None:
            return False
        b = self._group_of(dst_host)
        return b is not None and a != b


@dataclass(frozen=True)
class LinkFault:
    """Degrades matching links during ``[start_s, end_s)``.

    ``src_hosts``/``dst_hosts`` of ``None`` match every host; with
    ``symmetric=True`` the reverse direction matches too.  Asymmetric
    links (A reaches B but not back) are the ``symmetric=False``
    default with distinct host sets.
    """

    src_hosts: Optional[FrozenSet[int]] = None
    dst_hosts: Optional[FrozenSet[int]] = None
    drop_prob: float = 0.0
    extra_latency_s: float = 0.0
    start_s: float = 0.0
    end_s: float = math.inf
    symmetric: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be a probability")
        if self.extra_latency_s < 0:
            raise ValueError("extra latency must be non-negative")
        if self.end_s <= self.start_s:
            raise ValueError("fault window must have positive duration")

    @staticmethod
    def between(
        src_hosts: Optional[Iterable[int]],
        dst_hosts: Optional[Iterable[int]],
        **kwargs,
    ) -> "LinkFault":
        return LinkFault(_hosts(src_hosts), _hosts(dst_hosts), **kwargs)

    @staticmethod
    def burst(
        start_s: float,
        duration_s: float,
        drop_prob: float = 1.0,
        hosts: Optional[Iterable[int]] = None,
    ) -> "LinkFault":
        """A loss burst: all (or the given hosts') traffic drops with
        ``drop_prob`` for ``duration_s`` seconds."""
        members = _hosts(hosts)
        return LinkFault(
            src_hosts=members,
            dst_hosts=members,
            drop_prob=drop_prob,
            start_s=start_s,
            end_s=start_s + duration_s,
            symmetric=True,
        )

    def _matches_directed(self, src_host: int, dst_host: int) -> bool:
        if self.src_hosts is not None and src_host not in self.src_hosts:
            return False
        return self.dst_hosts is None or dst_host in self.dst_hosts

    def matches(self, src_host: int, dst_host: int, now: float) -> bool:
        if not self.start_s <= now < self.end_s:
            return False
        if self._matches_directed(src_host, dst_host):
            return True
        return self.symmetric and self._matches_directed(dst_host, src_host)


@dataclass(frozen=True)
class GrayFailure:
    """A slow-but-alive host during ``[start_s, end_s)``.

    The host stays registered on the network (it is *not* crashed, so
    neighbours cannot distinguish it from a healthy peer except through
    timeouts): every message it sends is delayed by ``response_delay_s``
    and a fraction ``inbound_drop_prob`` of messages addressed to it
    silently vanishes.
    """

    host_slot: int
    start_s: float = 0.0
    end_s: float = math.inf
    inbound_drop_prob: float = 0.0
    response_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.inbound_drop_prob <= 1.0:
            raise ValueError("inbound_drop_prob must be a probability")
        if self.response_delay_s < 0:
            raise ValueError("response delay must be non-negative")
        if self.end_s <= self.start_s:
            raise ValueError("gray-failure window must have positive duration")

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass
class FaultPlanStats:
    """What the plan actually did (observability for experiments)."""

    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    delayed_messages: int = 0

    @property
    def total_drops(self) -> int:
        return sum(self.drops_by_cause.values())

    def _count_drop(self, cause: str) -> None:
        self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1


class FaultPlan:
    """A deterministic, scriptable fault schedule for one network."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.partitions: List[Partition] = []
        self.link_faults: List[LinkFault] = []
        self.gray_failures: List[GrayFailure] = []
        self.stats = FaultPlanStats()
        self._gray_by_host: Dict[int, List[GrayFailure]] = {}
        self._link_rngs: Dict[Tuple[int, int], random.Random] = {}

    # -- construction (chainable) --------------------------------------------

    def add_partition(self, partition: Partition) -> "FaultPlan":
        self.partitions.append(partition)
        return self

    def add_link_fault(self, fault: LinkFault) -> "FaultPlan":
        self.link_faults.append(fault)
        return self

    def add_gray_failure(self, gray: GrayFailure) -> "FaultPlan":
        self.gray_failures.append(gray)
        self._gray_by_host.setdefault(gray.host_slot, []).append(gray)
        return self

    # -- evaluation -----------------------------------------------------------

    def _link_rng(self, src_host: int, dst_host: int) -> random.Random:
        key = (src_host, dst_host)
        rng = self._link_rngs.get(key)
        if rng is None:
            rng = random.Random(
                derive_seed(self.seed, f"link:{src_host}->{dst_host}")
            )
            self._link_rngs[key] = rng
        return rng

    def verdict(self, src_host: int, dst_host: int, now: float) -> LinkVerdict:
        """Decide one message's fate; called by ``Network.send``."""
        for partition in self.partitions:
            if partition.severs(src_host, dst_host, now):
                self.stats._count_drop(CAUSE_PARTITION)
                return LinkVerdict(False, cause=CAUSE_PARTITION)
        extra = 0.0
        for fault in self.link_faults:
            if not fault.matches(src_host, dst_host, now):
                continue
            if fault.drop_prob and (
                fault.drop_prob >= 1.0
                or self._link_rng(src_host, dst_host).random() < fault.drop_prob
            ):
                self.stats._count_drop(CAUSE_LINK)
                return LinkVerdict(False, cause=CAUSE_LINK)
            extra += fault.extra_latency_s
        for gray in self._gray_by_host.get(dst_host, ()):
            if not gray.active(now):
                continue
            if gray.inbound_drop_prob and (
                gray.inbound_drop_prob >= 1.0
                or self._link_rng(src_host, dst_host).random()
                < gray.inbound_drop_prob
            ):
                self.stats._count_drop(CAUSE_GRAY)
                return LinkVerdict(False, cause=CAUSE_GRAY)
        for gray in self._gray_by_host.get(src_host, ()):
            if gray.active(now):
                extra += gray.response_delay_s
        if extra:
            self.stats.delayed_messages += 1
            return LinkVerdict(True, extra_latency_s=extra)
        return DELIVER
