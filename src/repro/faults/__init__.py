"""Deterministic fault injection: partitions, degraded links, gray
failures, scripted outages, and failure-detector statistics."""

from .detector import FailureDetectorStats, PeerRecord
from .plan import (
    CAUSE_GRAY,
    CAUSE_LINK,
    CAUSE_PARTITION,
    DELIVER,
    FAULT_CAUSES,
    FaultPlan,
    FaultPlanStats,
    GrayFailure,
    LinkFault,
    LinkVerdict,
    Partition,
)
from .script import Outage, OutageScript, merge_outage_windows

__all__ = [
    "CAUSE_GRAY",
    "CAUSE_LINK",
    "CAUSE_PARTITION",
    "DELIVER",
    "FAULT_CAUSES",
    "FailureDetectorStats",
    "FaultPlan",
    "FaultPlanStats",
    "GrayFailure",
    "LinkFault",
    "LinkVerdict",
    "Outage",
    "OutageScript",
    "Partition",
    "PeerRecord",
    "merge_outage_windows",
]
