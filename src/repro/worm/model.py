"""The worm propagation model (paper §7.3).

Nodes are in one of four states — *not infected*, *scanning*,
*infecting*, *inactive* — with the transitions the paper takes from
Staniford et al.'s Code-Red-derived model:

* a **scanning** machine probes known addresses at ``scan_rate``;
* hitting a vulnerable, not-yet-infected target moves the attacker to
  **infecting** for ``infect_time_s``;
* when the infection completes, the target becomes **inactive** (the
  worm is implanted but dormant), the attacker returns to scanning, and
  after ``activation_delay_s`` the worm activates on the target, which
  starts scanning in turn.

The default parameter values are the paper's: 100 scans/machine/second,
100 ms to infect, 1 s between implantation and activation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple


class WormState(enum.Enum):
    NOT_INFECTED = "not_infected"
    SCANNING = "scanning"
    INFECTING = "infecting"
    INACTIVE = "inactive"


@dataclass(frozen=True)
class WormParams:
    """Propagation parameters (defaults from §7.3)."""

    scan_rate_per_s: float = 100.0
    infect_time_s: float = 0.1
    activation_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.scan_rate_per_s <= 0:
            raise ValueError("scan rate must be positive")
        if self.infect_time_s < 0 or self.activation_delay_s < 0:
            raise ValueError("delays must be non-negative")

    @property
    def scan_interval_s(self) -> float:
        return 1.0 / self.scan_rate_per_s


@dataclass
class InfectionCurve:
    """Cumulative infections over time: the Fig. 8 y-axis."""

    points: List[Tuple[float, int]] = field(default_factory=list)

    def record(self, time_s: float, count: int) -> None:
        self.points.append((time_s, count))

    @property
    def final_count(self) -> int:
        return self.points[-1][1] if self.points else 0

    @property
    def final_time(self) -> float:
        return self.points[-1][0] if self.points else 0.0

    def count_at(self, time_s: float) -> int:
        """Infections completed at or before ``time_s``."""
        count = 0
        for t, c in self.points:
            if t > time_s:
                break
            count = c
        return count

    def time_to_count(self, target: int) -> float | None:
        """When the ``target``-th infection happened (None if never)."""
        for t, c in self.points:
            if c >= target:
                return t
        return None

    def time_to_fraction(self, population: int, fraction: float) -> float | None:
        return self.time_to_count(max(1, int(population * fraction)))
