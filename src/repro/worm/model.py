"""The worm propagation model (paper §7.3).

Nodes are in one of four states — *not infected*, *scanning*,
*infecting*, *inactive* — with the transitions the paper takes from
Staniford et al.'s Code-Red-derived model:

* a **scanning** machine probes known addresses at ``scan_rate``;
* hitting a vulnerable, not-yet-infected target moves the attacker to
  **infecting** for ``infect_time_s``;
* when the infection completes, the target becomes **inactive** (the
  worm is implanted but dormant), the attacker returns to scanning, and
  after ``activation_delay_s`` the worm activates on the target, which
  starts scanning in turn.

The default parameter values are the paper's: 100 scans/machine/second,
100 ms to infect, 1 s between implantation and activation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


class WormState(enum.Enum):
    NOT_INFECTED = "not_infected"
    SCANNING = "scanning"
    INFECTING = "infecting"
    INACTIVE = "inactive"


#: Columnar state codes: the array-backed engine stores states as small
#: ints in a byte array and only converts to :class:`WormState` at the
#: public API boundary.  ``NOT_INFECTED`` must stay 0 so a zeroed state
#: column means "nobody infected yet".
STATE_NOT_INFECTED = 0
STATE_SCANNING = 1
STATE_INFECTING = 2
STATE_INACTIVE = 3

#: Code -> enum, indexable by the columnar byte value.
STATE_TO_ENUM: Tuple[WormState, ...] = (
    WormState.NOT_INFECTED,
    WormState.SCANNING,
    WormState.INFECTING,
    WormState.INACTIVE,
)


def validate_population(num_nodes: int, vulnerable: Sequence[bool]) -> None:
    """Shared precondition checks for both worm engines.

    Rejects empty populations and non-boolean vulnerability masks: a
    stray ``None`` (or ``0``/``1``) in the mask would otherwise be
    silently counted as not-vulnerable/vulnerable, skewing every curve
    downstream.
    """
    if num_nodes <= 0:
        raise ValueError(
            f"a worm simulation needs at least one node (num_nodes={num_nodes})"
        )
    if len(vulnerable) != num_nodes:
        raise ValueError(
            f"vulnerable mask has {len(vulnerable)} entries for {num_nodes} nodes"
        )
    # One fast pass for the common (valid) case; re-scan for a precise
    # error message only on failure.
    if not all(type(v) is bool for v in vulnerable):
        for i, v in enumerate(vulnerable):
            if type(v) is not bool:
                raise TypeError(
                    f"vulnerable[{i}] is {v!r} ({type(v).__name__}); the mask "
                    "must contain only booleans"
                )


@dataclass(frozen=True)
class WormParams:
    """Propagation parameters (defaults from §7.3)."""

    scan_rate_per_s: float = 100.0
    infect_time_s: float = 0.1
    activation_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.scan_rate_per_s <= 0:
            raise ValueError("scan rate must be positive")
        if self.infect_time_s < 0 or self.activation_delay_s < 0:
            raise ValueError("delays must be non-negative")

    @property
    def scan_interval_s(self) -> float:
        return 1.0 / self.scan_rate_per_s


@dataclass
class InfectionCurve:
    """Cumulative infections over time: the Fig. 8 y-axis."""

    points: List[Tuple[float, int]] = field(default_factory=list)

    def record(self, time_s: float, count: int) -> None:
        self.points.append((time_s, count))

    @property
    def final_count(self) -> int:
        return self.points[-1][1] if self.points else 0

    @property
    def final_time(self) -> float:
        return self.points[-1][0] if self.points else 0.0

    def count_at(self, time_s: float) -> int:
        """Infections completed at or before ``time_s``."""
        count = 0
        for t, c in self.points:
            if t > time_s:
                break
            count = c
        return count

    def time_to_count(self, target: int) -> float | None:
        """When the ``target``-th infection happened (None if never)."""
        for t, c in self.points:
            if c >= target:
                return t
        return None

    def time_to_fraction(self, population: int, fraction: float) -> float | None:
        return self.time_to_count(max(1, int(population * fraction)))
