"""Worm propagation: model, knowledge, harvesters, scenarios (Fig. 8)."""

from .columnar import ColumnarWormSimulation
from .harvest import (
    CompromiseVerDiHarvester,
    FastVerDiHarvester,
    ImpersonatorKnowledge,
)
from .knowledge import RoutingKnowledge, chord_knowledge, verme_knowledge
from .model import InfectionCurve, WormParams, WormState
from .scenarios import (
    ENGINES,
    SCENARIOS,
    WormPopulation,
    WormRunResult,
    WormScenarioConfig,
    build_chord_population,
    build_verme_population,
    run_all_scenarios,
    run_scenario,
)
from .simulation import WormSimulation

__all__ = [
    "ColumnarWormSimulation",
    "CompromiseVerDiHarvester",
    "ENGINES",
    "FastVerDiHarvester",
    "ImpersonatorKnowledge",
    "InfectionCurve",
    "RoutingKnowledge",
    "SCENARIOS",
    "WormParams",
    "WormPopulation",
    "WormRunResult",
    "WormScenarioConfig",
    "WormSimulation",
    "WormState",
    "build_chord_population",
    "build_verme_population",
    "chord_knowledge",
    "run_all_scenarios",
    "run_scenario",
    "verme_knowledge",
]
