"""The five Fig. 8 worm scenarios, packaged for reuse.

``run_scenario`` reproduces one curve of the paper's Figure 8:

* ``chord`` — a p2p worm following routing state on plain Chord;
* ``verme`` — the same worm on Verme, no impersonation;
* ``verme-secure`` — Secure-VerDi with an impersonating seed;
* ``verme-fast`` — Fast-VerDi, impersonator issuing 10 lookups/s;
* ``verme-compromise`` — Compromise-VerDi, impersonator harvesting from
  relayed operations (every node issues 1 lookup/s).

The paper's configuration: 100,000 nodes, 50% vulnerable (one whole
type), 4096 sections (~24 nodes each).  Defaults here are scaled down
so tests run quickly; the benchmark drivers pass the full values.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..ids.assignment import NodeType
from ..ids.idspace import IdSpace
from ..ids.sections import VermeIdLayout
from ..obs import OBS, maybe_phase
from ..overlay.snapshot import StaticOverlay, VermeStaticOverlay
from ..sim import Simulator
from .columnar import ColumnarWormSimulation
from .harvest import (
    CompromiseVerDiHarvester,
    FastVerDiHarvester,
    ImpersonatorKnowledge,
)
from .knowledge import chord_knowledge, verme_knowledge
from .model import STATE_TO_ENUM, InfectionCurve, WormParams, WormState
from .simulation import WormSimulation

#: Engine selection for ``WormScenarioConfig.engine``.  ``columnar`` is
#: the default batch-ticked engine; ``legacy`` keeps the per-event
#: reference implementation (bit-for-bit identical curves).
ENGINES = {
    "columnar": ColumnarWormSimulation,
    "legacy": WormSimulation,
}

SCENARIOS = (
    "chord",
    "verme",
    "verme-secure",
    "verme-fast",
    "verme-compromise",
)


@dataclass(frozen=True)
class WormScenarioConfig:
    """Parameters of one Fig. 8 run (paper values in comments)."""

    num_nodes: int = 2000                  # paper: 100,000
    num_sections: int = 128                # paper: 4096
    id_bits: int = 64                      # paper: 160 (irrelevant to shape)
    victim_type: NodeType = NodeType.A
    num_successors: int = 10
    num_predecessors: int = 10
    params: WormParams = field(default_factory=WormParams)
    fast_lookups_per_s: float = 10.0       # paper §7.3
    node_lookup_rate_per_s: float = 1.0    # paper §7.3 (Compromise)
    # How many of the returned replica addresses the worm actually seeds
    # per lookup.  A lookup returns the whole n/2 replica group, but the
    # group shares a section, so seeding one node and letting the
    # intra-section spread do the rest is what an efficient worm does —
    # and is the rate the paper's curves imply (~1 impersonator-driven
    # infection per lookup).  Set to n/2 to model a naive worm that
    # pushes every returned address through the impersonator.
    replicas_per_lookup: int = 1
    # Fraction of victim-type machines that are patched/immune (Zhou et
    # al.'s observation that immune nodes slow propagation; 0.0 in the
    # paper's Fig. 8 setup, where the whole type is vulnerable).
    immune_fraction: float = 0.0
    seed: int = 0
    # Propagation engine: "columnar" (batch-ticked, array-backed) or
    # "legacy" (one kernel event per scan).  Both produce identical
    # curves; legacy remains as the readable reference implementation
    # and for debugging single events step by step.
    engine: str = "columnar"

    def __post_init__(self) -> None:
        if not 0.0 <= self.immune_fraction < 1.0:
            raise ValueError("immune_fraction must be in [0, 1)")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; pick from {sorted(ENGINES)}"
            )

    def with_paper_scale(self) -> "WormScenarioConfig":
        """The full 100k-node configuration from §7.3."""
        return replace(self, num_nodes=100_000, num_sections=4096)


@dataclass
class WormPopulation:
    """A generated static population ready for a worm run."""

    overlay: StaticOverlay
    vulnerable: List[bool]
    node_types: List[int]
    impersonator_index: Optional[int] = None

    @property
    def vulnerable_count(self) -> int:
        return sum(self.vulnerable)


@dataclass
class WormRunResult:
    """One scenario run: the curve plus context for reporting."""

    scenario: str
    curve: InfectionCurve
    population_size: int
    vulnerable_count: int
    config: WormScenarioConfig
    scans_performed: int = 0
    # Kernel events plus (for the columnar engine) logical worm events
    # drained inside batch ticks — comparable across engines.
    events: int = 0

    def time_to_fraction(self, fraction: float) -> Optional[float]:
        return self.curve.time_to_fraction(self.vulnerable_count, fraction)

    @property
    def final_infected(self) -> int:
        return self.curve.final_count


def _unique_ids(count: int, gen, used: set) -> List[int]:
    out = []
    while len(out) < count:
        candidate = gen()
        if candidate in used:
            continue
        used.add(candidate)
        out.append(candidate)
    return out


def build_verme_population(
    config: WormScenarioConfig,
    rng: random.Random,
    with_impersonator: bool = False,
) -> WormPopulation:
    """Half type-A / half type-B nodes on a Verme ring; the whole victim
    type is vulnerable.  The optional impersonator joins with an id of
    the opposite (claimed) type and is itself the infection seed."""
    space = IdSpace(config.id_bits)
    layout = VermeIdLayout.for_sections(space, config.num_sections)
    used: set = set()
    half = config.num_nodes // 2
    ids_a = _unique_ids(half, lambda: layout.random_id(rng, NodeType.A), used)
    ids_b = _unique_ids(
        config.num_nodes - half, lambda: layout.random_id(rng, NodeType.B), used
    )
    ids = ids_a + ids_b
    imp_id: Optional[int] = None
    if with_impersonator:
        claimed = config.victim_type.opposite
        imp_id = _unique_ids(1, lambda: layout.random_id(rng, claimed), used)[0]
        ids.append(imp_id)
    # from_ids skips NodeInfo materialisation (lazy on the overlay); the
    # RNG draw order above is unchanged, so populations are bit-identical
    # to the eager construction.
    overlay = VermeStaticOverlay.from_ids(layout, ids)
    # Id order was permuted by the overlay's sort; recompute per-index
    # attributes in overlay order.
    node_types = [layout.type_of(nid) for nid in overlay.ids]
    vulnerable = [
        t == int(config.victim_type)
        and (config.immune_fraction <= 0.0 or rng.random() >= config.immune_fraction)
        for t in node_types
    ]
    imp_index: Optional[int] = None
    if imp_id is not None:
        imp_index = overlay.index_of(imp_id)
        vulnerable[imp_index] = False  # the attacker's own machine
    return WormPopulation(overlay, vulnerable, node_types, imp_index)


def build_chord_population(
    config: WormScenarioConfig, rng: random.Random
) -> WormPopulation:
    """Random Chord ids; platform types assigned independently of the
    ids (Chord knows nothing of types), half of the machines vulnerable."""
    space = IdSpace(config.id_bits)
    used: set = set()
    ids = _unique_ids(config.num_nodes, lambda: rng.getrandbits(space.bits), used)
    overlay = StaticOverlay.from_ids(space, ids)
    node_types = [
        int(config.victim_type) if rng.random() < 0.5 else int(config.victim_type.opposite)
        for _ in range(len(overlay))
    ]
    vulnerable = [
        t == int(config.victim_type)
        and (config.immune_fraction <= 0.0 or rng.random() >= config.immune_fraction)
        for t in node_types
    ]
    return WormPopulation(overlay, vulnerable, node_types)


def run_scenario(
    scenario: str,
    config: WormScenarioConfig,
    until: Optional[float] = None,
    sim: Optional[Simulator] = None,
) -> WormRunResult:
    """Run one Fig. 8 scenario to completion (or ``until`` seconds)."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; pick from {SCENARIOS}")
    rng = random.Random(config.seed)
    sim = sim if sim is not None else Simulator()

    engine_cls = ENGINES[config.engine]
    if scenario == "chord":
        pop = build_chord_population(config, rng)
        knowledge = chord_knowledge(pop.overlay, config.num_successors)
        worm = engine_cls(
            sim, len(pop.overlay), pop.vulnerable, knowledge, config.params
        )
        seed_index = rng.choice(
            [i for i, v in enumerate(pop.vulnerable) if v]
        )
        worm.seed(seed_index)
        with maybe_phase("worm.run", sim):
            worm.run(until=until)
        return _result(scenario, worm, pop, config)

    with_imp = scenario != "verme"
    pop = build_verme_population(config, rng, with_impersonator=with_imp)
    assert isinstance(pop.overlay, VermeStaticOverlay)
    base_knowledge = verme_knowledge(
        pop.overlay, config.num_successors, config.num_predecessors
    )
    if with_imp:
        assert pop.impersonator_index is not None
        knowledge = ImpersonatorKnowledge(
            base_knowledge, pop.overlay, pop.impersonator_index, config.victim_type
        )
    else:
        knowledge = base_knowledge
    worm = engine_cls(
        sim, len(pop.overlay), pop.vulnerable, knowledge, config.params
    )
    if with_imp:
        worm.seed(pop.impersonator_index)
    else:
        seed_index = rng.choice([i for i, v in enumerate(pop.vulnerable) if v])
        worm.seed(seed_index)

    harvester = None
    if scenario == "verme-fast":
        harvester = FastVerDiHarvester(
            sim,
            worm,
            pop.overlay,
            pop.impersonator_index,
            config.victim_type,
            rng,
            rate_per_s=config.fast_lookups_per_s,
            replicas_per_lookup=config.replicas_per_lookup,
            vulnerable_total=pop.vulnerable_count,
        )
    elif scenario == "verme-compromise":
        claimed_count = len(pop.overlay) - pop.vulnerable_count
        rate = CompromiseVerDiHarvester.expected_rate(
            config.node_lookup_rate_per_s, pop.vulnerable_count, claimed_count
        )
        # The initiators relaying through the impersonator are the ~log2 N
        # victim-type nodes that hold it in their finger tables; sample a
        # pool of that size rather than computing reverse fingers exactly.
        pool_size = max(4, len(pop.overlay).bit_length())
        victim_indices = [i for i, v in enumerate(pop.vulnerable) if v]
        initiator_pool = rng.sample(
            victim_indices, min(pool_size, len(victim_indices))
        )
        harvester = CompromiseVerDiHarvester(
            sim,
            worm,
            pop.overlay,
            pop.impersonator_index,
            config.victim_type,
            rng,
            rate_per_s=rate,
            replicas_per_lookup=config.replicas_per_lookup,
            vulnerable_total=pop.vulnerable_count,
            initiator_pool=initiator_pool,
        )
    if harvester is not None:
        harvester.start()
    with maybe_phase("worm.run", sim):
        worm.run(until=until)
    if harvester is not None:
        harvester.stop()
    return _result(scenario, worm, pop, config, harvester)


def _result(
    scenario: str,
    worm,
    pop: WormPopulation,
    config: WormScenarioConfig,
    harvester=None,
) -> WormRunResult:
    result = WormRunResult(
        scenario=scenario,
        curve=worm.curve,
        population_size=len(pop.overlay),
        vulnerable_count=pop.vulnerable_count,
        config=config,
        scans_performed=worm.scans_performed,
        events=worm.sim.events_processed + getattr(worm, "logical_events", 0),
    )
    metrics = OBS.metrics
    if metrics is not None:
        _publish_run_metrics(metrics, worm, result, harvester)
    return result


def _final_state_counts(worm) -> Dict[str, int]:
    """Final per-state node counts of a finished run (every node is in
    exactly one state, so the values sum to the population)."""
    if isinstance(worm, ColumnarWormSimulation):
        # The byte column counts through Counter's C loop; materialising
        # the enum list would allocate one object per node.
        raw = Counter(worm._state)
        by_name = {STATE_TO_ENUM[code].name: n for code, n in raw.items()}
    else:
        by_name = {state.name: n for state, n in Counter(worm.state).items()}
    return {state.name: by_name.get(state.name, 0) for state in WormState}


def _publish_run_metrics(metrics, worm, result: WormRunResult, harvester) -> None:
    """Publish one run's worm metrics to the registry, after the run
    (zero cost on the engines' hot paths).  Names are prefixed with the
    scenario and seed so per-cell runs merge without colliding."""
    prefix = f"worm.{result.scenario}.s{result.config.seed}"
    for name, count in _final_state_counts(worm).items():
        metrics.counter(f"{prefix}.states.{name}").inc(count)
    metrics.counter(f"{prefix}.population").inc(result.population_size)
    metrics.counter(f"{prefix}.vulnerable").inc(result.vulnerable_count)
    metrics.counter(f"{prefix}.scans").inc(worm.scans_performed)
    # State-machine transition counts: every infection is one
    # NOT_INFECTED -> INACTIVE edge; seeds are the externally implanted
    # subset of them.
    metrics.counter(f"{prefix}.transitions.infected").inc(worm.infected_count)
    metrics.counter(f"{prefix}.transitions.completed").inc(
        worm.infections_completed
    )
    metrics.counter(f"{prefix}.transitions.seeded").inc(
        worm.infected_count - worm.infections_completed
    )
    if harvester is not None:
        metrics.counter(f"{prefix}.harvest.events").inc(harvester.harvest_events)
        metrics.counter(f"{prefix}.harvest.addresses").inc(
            harvester.addresses_harvested
        )


def run_all_scenarios(
    config: WormScenarioConfig,
    horizons: Optional[Dict[str, float]] = None,
) -> Dict[str, WormRunResult]:
    """Run every Fig. 8 scenario with per-scenario time horizons."""
    horizons = horizons or {}
    return {
        name: run_scenario(name, config, until=horizons.get(name))
        for name in SCENARIOS
    }
