"""Impersonation-attack harvesters (paper §5.3, driven in §7.3).

An impersonating node joins the overlay with an identity of the type
opposite to the one it attacks.  What it can then harvest depends on
the VerDi variant:

* **Secure-VerDi** — nothing beyond its own routing state: its finger
  entries point at O(log N) victim-type nodes, and that is the whole
  reachable surface (no harvester object needed; see
  :class:`ImpersonatorKnowledge`).
* **Fast-VerDi** — every get/put lookup it issues returns the
  victim-type replica group of a chosen key; the paper drives this at
  10 lookups/s (:class:`FastVerDiHarvester`).
* **Compromise-VerDi** — it cannot gain by issuing operations, but
  whenever an honest victim-type node relays an operation through it
  (every node issues 1 lookup/s), it sees the initiator's address and,
  while executing the relayed Fast-style get, the victim-type replica
  group of the requested key (:class:`CompromiseVerDiHarvester`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..ids.assignment import NodeType
from ..obs import OBS
from ..overlay.snapshot import VermeStaticOverlay
from ..sim import Simulator
from .knowledge import RoutingKnowledge

if False:  # typing only; both worm engines satisfy the interface used here
    from .simulation import WormSimulation


class ImpersonatorKnowledge:
    """Wraps a knowledge model so the impersonator targets the victim
    type (its fingers) instead of its own claimed type."""

    #: Both branches below return routing state, which is unique and
    #: self-free by construction.
    targets_unique = True

    def __init__(
        self,
        base: RoutingKnowledge,
        overlay: VermeStaticOverlay,
        impersonator_index: int,
        victim_type: NodeType,
    ) -> None:
        self.base = base
        self.overlay = overlay
        self.impersonator_index = impersonator_index
        self.victim_type = victim_type

    def targets_of(self, index: int) -> List[int]:
        if index != self.impersonator_index:
            return self.base.targets_of(index)
        layout = self.overlay.layout
        ids = self.overlay.ids
        indices = self.overlay.routing_target_indices(
            index, self.base.num_successors, self.base.num_predecessors
        )
        return [
            i
            for i in indices
            if NodeType(layout.type_of(ids[i])) is self.victim_type
        ]


class _SectionHarvester:
    """Shared engine: periodically harvest the victim-type replica group
    of a random key and feed it to the impersonator's worm instance."""

    def __init__(
        self,
        sim: Simulator,
        worm: "WormSimulation",
        overlay: VermeStaticOverlay,
        impersonator_index: int,
        victim_type: NodeType,
        rng: random.Random,
        rate_per_s: float,
        replicas_per_lookup: int,
        vulnerable_total: int,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("harvest rate must be positive")
        self.sim = sim
        self.worm = worm
        self.overlay = overlay
        self.impersonator_index = impersonator_index
        self.victim_type = victim_type
        self.rng = rng
        self.rate_per_s = rate_per_s
        self.replicas_per_lookup = replicas_per_lookup
        self.vulnerable_total = vulnerable_total
        self.harvest_events = 0
        self.addresses_harvested = 0
        self._stopped = False

    def start(self) -> None:
        self._stopped = False
        self.sim.call_after(self.rng.expovariate(self.rate_per_s), self._fire)

    def stop(self) -> None:
        self._stopped = True

    def _victim_position(self) -> int:
        """A replica position guaranteed to lie in a victim-type section."""
        layout = self.overlay.layout
        key = layout.random_key(self.rng)
        if NodeType(layout.type_of(key)) is not self.victim_type:
            key = layout.opposite_type_position(key)
        return key

    def _harvest_once(self) -> List[int]:
        position = self._victim_position()
        group = self.overlay.replica_group_indices(
            position, self.replicas_per_lookup
        )
        layout = self.overlay.layout
        ids = self.overlay.ids
        return [
            i
            for i in group
            if NodeType(layout.type_of(ids[i])) is self.victim_type
        ]

    def _extra_targets(self) -> List[int]:
        return []

    def _fire(self) -> None:
        if self._stopped:
            return
        # infected_count includes the (non-vulnerable) impersonator, so
        # only stop once it strictly exceeds the vulnerable population.
        if self.worm.infected_count > self.vulnerable_total:
            return  # everything vulnerable is infected; nothing to gain
        targets = self._harvest_once() + self._extra_targets()
        self.harvest_events += 1
        self.addresses_harvested += len(targets)
        # Harvest injections are traced here (engine-independent) rather
        # than in the engines' ``add_targets``, which the legacy engine
        # also calls internally on activation.
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "worm.harvest",
                self.sim.now,
                lane="worm",
                args={
                    "node": self.impersonator_index,
                    "count": len(targets),
                },
            )
        self.worm.add_targets(self.impersonator_index, targets)
        self.sim.call_after(self.rng.expovariate(self.rate_per_s), self._fire)


class FastVerDiHarvester(_SectionHarvester):
    """The impersonator issues its own lookups (10/s in the paper)."""


class CompromiseVerDiHarvester(_SectionHarvester):
    """Harvest is driven by *relayed* operations from honest nodes.

    The expected relay rate at one node is ``lookup_rate x
    (victim population / claimed-type population)`` — each honest node
    issues ``lookup_rate`` operations/s and spreads them over its
    fingers; summed over all victim-type nodes the impersonator serves,
    the mean is one relayed operation per second with the paper's
    parameters (see DESIGN.md §6).  Each relayed get also exposes the
    initiator's address.
    """

    def __init__(
        self,
        sim: Simulator,
        worm: "WormSimulation",
        overlay: VermeStaticOverlay,
        impersonator_index: int,
        victim_type: NodeType,
        rng: random.Random,
        rate_per_s: float,
        replicas_per_lookup: int,
        vulnerable_total: int,
        initiator_pool: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(
            sim,
            worm,
            overlay,
            impersonator_index,
            victim_type,
            rng,
            rate_per_s,
            replicas_per_lookup,
            vulnerable_total,
        )
        self.initiator_pool = list(initiator_pool) if initiator_pool else None

    @staticmethod
    def expected_rate(
        node_lookup_rate_per_s: float, victim_count: int, claimed_type_count: int
    ) -> float:
        """Mean relayed-operation rate at one claimed-type node."""
        if claimed_type_count <= 0:
            raise ValueError("claimed-type population must be positive")
        return node_lookup_rate_per_s * victim_count / claimed_type_count

    def _extra_targets(self) -> List[int]:
        if self.initiator_pool:
            return [self.rng.choice(self.initiator_pool)]
        # Approximation: the initiator is a random victim-type node
        # (the true pool is the ~log N victim nodes holding this relay
        # in their finger tables; one extra address per event is noise
        # next to the replica-group harvest either way).
        layout = self.overlay.layout
        for _ in range(16):
            idx = self.rng.randrange(len(self.overlay.ids))
            if NodeType(layout.type_of(self.overlay.ids[idx])) is self.victim_type:
                return [idx]
        return []
