"""The worm propagation engine.

Runs the four-state model of :mod:`repro.worm.model` as discrete events
over a static overlay population.  Each infected node maintains a queue
of known-but-unscanned targets (deduplicated); harvesters
(:mod:`repro.worm.harvest`) may inject fresh targets at any time, which
wakes idle scanners — this is how the impersonation attacks feed the
worm in the Fast-/Compromise-VerDi scenarios.

The engine deliberately scans each known address at most once per node:
on a static overlay rescanning gains nothing, and this keeps the
100,000-node runs tractable (the event count is bounded by the total
knowledge volume, not by simulated time).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set

from ..obs import OBS
from ..sim import Simulator
from .knowledge import KnowledgeModel
from .model import InfectionCurve, WormParams, WormState, validate_population

# Enum attribute lookups are surprisingly costly in the per-scan hot
# loop; bind the states once at module level.
_NOT_INFECTED = WormState.NOT_INFECTED
_SCANNING = WormState.SCANNING
_INFECTING = WormState.INFECTING
_INACTIVE = WormState.INACTIVE


class WormSimulation:
    """One propagation run over a fixed population."""

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        vulnerable: Sequence[bool],
        knowledge: KnowledgeModel,
        params: WormParams = WormParams(),
    ) -> None:
        validate_population(num_nodes, vulnerable)
        self.sim = sim
        self.num_nodes = num_nodes
        self.vulnerable = list(vulnerable)
        self.knowledge = knowledge
        self.params = params
        self.state: List[WormState] = [WormState.NOT_INFECTED] * num_nodes
        self.infected_count = 0
        self.curve = InfectionCurve()
        self._queues: Dict[int, Deque[int]] = {}
        self._known: Dict[int, Set[int]] = {}
        self._idle: Set[int] = set()
        self.scans_performed = 0
        self.infections_completed = 0
        # Hot-loop constants, hoisted out of the per-event path.  Worm
        # events are fire-and-forget, so scheduling goes through the
        # kernel's no-handle fast path.
        self._scan_interval = params.scan_interval_s
        self._infect_time = params.infect_time_s
        self._activation_delay = params.activation_delay_s
        self._call_after = sim.call_after

    # -- seeding and harvest injection ------------------------------------------

    def seed(self, index: int, delay_s: float = 0.0) -> None:
        """Implant the worm on ``index`` at the start of the run."""
        if self.state[index] is not WormState.NOT_INFECTED:
            return
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "worm.seed", self.sim.now, lane="worm", args={"node": index}
            )
        self._mark_infected(index)
        self._call_after(delay_s, self._activate, index)

    def add_targets(self, index: int, targets: Sequence[int]) -> None:
        """Inject harvested addresses into ``index``'s worm instance."""
        if self.state[index] is WormState.NOT_INFECTED:
            return
        queue = self._queues.setdefault(index, deque())
        known = self._known.setdefault(index, set())
        added = False
        for t in targets:
            if t == index or t in known:
                continue
            known.add(t)
            queue.append(t)
            added = True
        if added and index in self._idle:
            self._idle.discard(index)
            self._call_after(self._scan_interval, self._scan, index)

    def is_infected(self, index: int) -> bool:
        return self.state[index] is not WormState.NOT_INFECTED

    def pending_targets(self, index: int) -> int:
        """Known-but-unscanned queue length of one node."""
        queue = self._queues.get(index)
        return len(queue) if queue else 0

    # -- state machine ----------------------------------------------------------

    def _mark_infected(self, index: int) -> None:
        self.state[index] = _INACTIVE
        self.infected_count += 1
        self.curve.record(self.sim.now, self.infected_count)

    def _activate(self, index: int) -> None:
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "worm.activate", self.sim.now, lane="worm", args={"node": index}
            )
        self.state[index] = _SCANNING
        self.add_targets(index, self.knowledge.targets_of(index))
        queue = self._queues.get(index)
        if not queue:
            self._idle.add(index)
            return
        self._idle.discard(index)
        self._call_after(self._scan_interval, self._scan, index)

    def _scan(self, index: int) -> None:
        trace = OBS.trace
        queue = self._queues.get(index)
        if not queue:
            self._idle.add(index)
            if trace is not None:
                trace.instant(
                    "worm.idle", self.sim.now, lane="worm", args={"node": index}
                )
            return
        target = queue.popleft()
        self.scans_performed += 1
        state = self.state
        hit = self.vulnerable[target] and state[target] is _NOT_INFECTED
        if trace is not None:
            trace.instant(
                "worm.scan",
                self.sim.now,
                lane="worm",
                args={"node": index, "target": target, "hit": hit},
            )
        if hit:
            state[index] = _INFECTING
            self._call_after(self._infect_time, self._infection_done, index, target)
            return
        self._call_after(self._scan_interval, self._scan, index)

    def _infection_done(self, attacker: int, target: int) -> None:
        new = self.state[target] is _NOT_INFECTED
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "worm.infection",
                self.sim.now,
                lane="worm",
                args={"attacker": attacker, "target": target, "new": new},
            )
        if new:
            self._mark_infected(target)
            self.infections_completed += 1
            self._call_after(self._activation_delay, self._activate, target)
        self.state[attacker] = _SCANNING
        self._call_after(self._scan_interval, self._scan, attacker)

    # -- running -------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> InfectionCurve:
        """Drive the simulation and return the infection curve."""
        self.sim.run(until=until, max_events=max_events)
        return self.curve
