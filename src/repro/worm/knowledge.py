"""What a topological worm knows: routing-state knowledge extraction.

A worm on an infected node harvests the overlay routing state —
successor list, predecessor list, finger table — to choose its next
targets (paper §3: "use the routing state maintained by the application
to choose the next target to infect").

Target filtering: Verme ids *encode* the platform type in their middle
bits, so a worm on a Verme overlay skips opposite-type entries for free
(they cannot be vulnerable to it).  Chord ids carry no type
information, so a Chord worm must spend scan slots probing targets that
turn out to be invulnerable.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

from ..ids.sections import VermeIdLayout
from ..overlay.snapshot import StaticOverlay, VermeStaticOverlay


class KnowledgeModel(Protocol):
    """Maps a node index to the indices its worm instance can target."""

    def targets_of(self, index: int) -> List[int]: ...


class RoutingKnowledge:
    """Knowledge = the node's full routing state on a static overlay."""

    def __init__(
        self,
        overlay: StaticOverlay,
        num_successors: int = 10,
        num_predecessors: int = 0,
        same_type_only: bool = False,
        layout: Optional[VermeIdLayout] = None,
        node_types: Optional[Sequence[int]] = None,
    ) -> None:
        """``same_type_only`` models the worm reading types from ids
        (requires ``layout``); ``node_types`` supplies per-index types
        for overlays whose ids do not encode them (Chord)."""
        if same_type_only and layout is None:
            raise ValueError("same_type_only filtering needs a VermeIdLayout")
        self.overlay = overlay
        self.num_successors = num_successors
        self.num_predecessors = num_predecessors
        self.same_type_only = same_type_only
        self.layout = layout
        self.node_types = node_types

    def _type_of_index(self, index: int) -> Optional[int]:
        if self.layout is not None:
            return self.layout.type_of(self.overlay.ids[index])
        if self.node_types is not None:
            return self.node_types[index]
        return None

    def targets_of(self, index: int) -> List[int]:
        entries = self.overlay.routing_entries(
            index, self.num_successors, self.num_predecessors
        )
        indices = [self.overlay.index_of(e.node_id) for e in entries]
        if not self.same_type_only:
            return indices
        own_type = self._type_of_index(index)
        return [i for i in indices if self._type_of_index(i) == own_type]


def verme_knowledge(
    overlay: VermeStaticOverlay,
    num_successors: int = 10,
    num_predecessors: int = 10,
) -> RoutingKnowledge:
    """Standard knowledge model for a worm on Verme: routing state with
    type-filtering (the worm reads types straight from the ids)."""
    return RoutingKnowledge(
        overlay,
        num_successors=num_successors,
        num_predecessors=num_predecessors,
        same_type_only=True,
        layout=overlay.layout,
    )


def chord_knowledge(
    overlay: StaticOverlay,
    num_successors: int = 10,
) -> RoutingKnowledge:
    """Standard knowledge model for a worm on Chord: routing state,
    unfiltered (Chord ids reveal nothing about platform types)."""
    return RoutingKnowledge(overlay, num_successors=num_successors)
