"""What a topological worm knows: routing-state knowledge extraction.

A worm on an infected node harvests the overlay routing state —
successor list, predecessor list, finger table — to choose its next
targets (paper §3: "use the routing state maintained by the application
to choose the next target to infect").

Target filtering: Verme ids *encode* the platform type in their middle
bits, so a worm on a Verme overlay skips opposite-type entries for free
(they cannot be vulnerable to it).  Chord ids carry no type
information, so a Chord worm must spend scan slots probing targets that
turn out to be invulnerable.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

from ..ids.sections import VermeIdLayout
from ..overlay.snapshot import StaticOverlay, VermeStaticOverlay


class KnowledgeModel(Protocol):
    """Maps a node index to the indices its worm instance can target.

    Implementations may additionally declare ``targets_unique = True``
    (a class or instance attribute) to promise that every list returned
    by ``targets_of`` is duplicate-free and never contains ``index``
    itself; the columnar engine then skips per-target dedup on first
    knowledge injection.  They may also provide
    ``targets_of_many(indices) -> (flat, counts)`` — the concatenated
    target lists plus per-row lengths — which batch engines prefer.
    """

    def targets_of(self, index: int) -> List[int]: ...


class RoutingKnowledge:
    """Knowledge = the node's full routing state on a static overlay."""

    #: Routing state never references the node itself and is
    #: deduplicated by construction (see ``routing_target_indices``).
    targets_unique = True

    def __init__(
        self,
        overlay: StaticOverlay,
        num_successors: int = 10,
        num_predecessors: int = 0,
        same_type_only: bool = False,
        layout: Optional[VermeIdLayout] = None,
        node_types: Optional[Sequence[int]] = None,
    ) -> None:
        """``same_type_only`` models the worm reading types from ids
        (requires ``layout``); ``node_types`` supplies per-index types
        for overlays whose ids do not encode them (Chord)."""
        if same_type_only and layout is None:
            raise ValueError("same_type_only filtering needs a VermeIdLayout")
        self.overlay = overlay
        self.num_successors = num_successors
        self.num_predecessors = num_predecessors
        self.same_type_only = same_type_only
        self.layout = layout
        self.node_types = node_types

    def _type_of_index(self, index: int) -> Optional[int]:
        if self.layout is not None:
            return self.layout.type_of(self.overlay.ids[index])
        if self.node_types is not None:
            return self.node_types[index]
        return None

    def targets_of(self, index: int) -> List[int]:
        indices = self.overlay.routing_target_indices(
            index, self.num_successors, self.num_predecessors
        )
        if not self.same_type_only:
            return indices
        own_type = self._type_of_index(index)
        return [i for i in indices if self._type_of_index(i) == own_type]

    def targets_of_many(self, indices):
        """Batched :meth:`targets_of`: ``(flat, counts)`` with the
        concatenated per-node target lists and each row's length.
        Unfiltered knowledge delegates to the overlay's vectorised
        batch extraction; type-filtered knowledge falls back to the
        scalar path per node (the filter is per-target Python logic).
        """
        if not self.same_type_only:
            return self.overlay.routing_target_indices_many(
                indices, self.num_successors, self.num_predecessors
            )
        flat: List[int] = []
        counts: List[int] = []
        for index in indices:
            row = self.targets_of(index)
            flat.extend(row)
            counts.append(len(row))
        return flat, counts


def verme_knowledge(
    overlay: VermeStaticOverlay,
    num_successors: int = 10,
    num_predecessors: int = 10,
) -> RoutingKnowledge:
    """Standard knowledge model for a worm on Verme: routing state with
    type-filtering (the worm reads types straight from the ids)."""
    return RoutingKnowledge(
        overlay,
        num_successors=num_successors,
        num_predecessors=num_predecessors,
        same_type_only=True,
        layout=overlay.layout,
    )


def chord_knowledge(
    overlay: StaticOverlay,
    num_successors: int = 10,
) -> RoutingKnowledge:
    """Standard knowledge model for a worm on Chord: routing state,
    unfiltered (Chord ids reveal nothing about platform types)."""
    return RoutingKnowledge(overlay, num_successors=num_successors)
