"""Columnar batch-ticked worm propagation engine.

A drop-in replacement for :class:`repro.worm.simulation.WormSimulation`
built for million-node populations.  Three structural changes:

* **Columnar state** — worm states are small ints in a byte array
  (:data:`repro.worm.model.STATE_TO_ENUM` converts at the public API
  boundary), vulnerability and idleness are packed byte masks, and
  per-node knowledge queues live in a single shared ``array('i')``
  arena addressed by ``(start, head, end)`` cursors instead of one
  ``deque`` + ``set`` per node.
* **Batch ticks** — instead of one kernel event per scan, the engine
  keeps its own buckets of logical events keyed by exact fire time and
  schedules *one* cancellable kernel event (the tick) at the earliest
  bucket.  Each tick drains every bucket due within one
  ``scan_interval`` window, bounded by the kernel's
  :attr:`~repro.sim.engine.Simulator.horizon` and by the next foreign
  kernel event (:meth:`~repro.sim.engine.Simulator.peek_next_time`), so
  harvester injections still interleave exactly as they would with
  per-event scheduling and can wake idle scanners immediately.
* **Vectorised drains** — large scan/completion cohorts and knowledge
  extraction batches go through numpy gather/scatter over zero-copy
  ``frombuffer`` views of the byte columns and cursor arrays.

Equivalence with the legacy engine is bit-for-bit on the
:class:`~repro.worm.model.InfectionCurve` (asserted by
``tests/test_worm_columnar_equivalence.py``).  The argument, in brief:
the legacy kernel fires tied events in scheduling-seq order, which for
the three worm event kinds means descending scheduling lag
(activations scheduled ``activation_delay`` ago, completions
``infect_time`` ago, scans ``scan_interval`` ago).  Within one kind at
one timestamp events commute (scans perform no state writes,
completions for the same target collapse to one infection at the same
time/count, activations touch disjoint state), so only the
completion-vs-scan order is semantically visible — and bucketing by
the *exact float* fire time reproduces the legacy cohort structure,
because tied legacy events are precisely those whose float sums
collide.  The one caveat: when ``infect_time == scan_interval`` the
legacy engine interleaves the two kinds by seq, which a batch drain
cannot reproduce; the default parameters (0.1 s vs 0.01 s) and every
scenario in the repo keep them distinct.

Tracing (:mod:`repro.obs`): when a trace recorder is active the scan
and completion drains take their scalar paths unconditionally — the
vectorised paths reorder within a cohort (``np.unique``, mask
partitioning), and the scalar order is exactly the legacy engine's
firing order, which is what makes the two engines' logical traces
identical event for event (``tests/test_obs_trace.py``).  Events are
stamped with the *logical* bucket time ``t``, not the tick's kernel
time, matching when the legacy engine would have fired them.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Dict, List, Optional, Sequence, Set, Tuple

try:  # numpy accelerates bulk drains; every path has a scalar fallback
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    np = None  # type: ignore[assignment]

from ..obs import OBS
from ..sim import Simulator
from .knowledge import KnowledgeModel
from .model import (
    STATE_INACTIVE,
    STATE_INFECTING,
    STATE_NOT_INFECTED,
    STATE_SCANNING,
    STATE_TO_ENUM,
    InfectionCurve,
    WormParams,
    WormState,
    validate_population,
)

#: Cohorts at least this large are drained through numpy; below it the
#: scalar loop wins (array-creation overhead dominates tiny batches).
_VEC_MIN = 32

#: Knowledge extraction switches to ``targets_of_many`` at this cohort
#: size (the batched path beats scalar extraction almost immediately).
_BATCH_KNOWLEDGE_MIN = 2

#: The arena is only compacted once it is past this size *and* mostly
#: garbage; small arenas are never worth rewriting.
_COMPACT_MIN = 1 << 16

# Bucket kind tags (drain order is by descending scheduling lag).
_KIND_ACTIVATE = 0
_KIND_COMPLETE = 1
_KIND_SCAN = 2


class ColumnarWormSimulation:
    """One propagation run over a fixed population, array-backed.

    Public surface mirrors :class:`~repro.worm.simulation.WormSimulation`
    (``seed`` / ``add_targets`` / ``run`` / ``is_infected`` / counters /
    ``curve``); ``state`` materialises the enum list on access, with
    :meth:`state_of` as the cheap single-node accessor.
    """

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        vulnerable: Sequence[bool],
        knowledge: KnowledgeModel,
        params: WormParams = WormParams(),
    ) -> None:
        validate_population(num_nodes, vulnerable)
        self.sim = sim
        self.num_nodes = num_nodes
        self.vulnerable = list(vulnerable)
        self.knowledge = knowledge
        self.params = params
        self.infected_count = 0
        self.curve = InfectionCurve()
        self.scans_performed = 0
        self.infections_completed = 0
        #: Logical worm events drained (activations + completions +
        #: scans, idle-probe scans included) — the batch-tick analogue
        #: of the kernel callbacks the legacy engine would have fired.
        self.logical_events = 0

        # Columns.
        self._state = bytearray(num_nodes)
        self._vuln = bytearray(self.vulnerable)
        self._idle = bytearray(num_nodes)

        # Shared knowledge-queue arena.  A node's segment is
        # ``arena[q_start:q_end]`` with ``arena[q_head:q_end]`` still
        # unscanned; ``q_start == -1`` means no targets were ever added.
        self._arena = array("i")
        self._q_start = array("q", [-1]) * num_nodes
        self._q_head = array("q", [0]) * num_nodes
        self._q_end = array("q", [0]) * num_nodes
        # Dedup sets are built lazily on a node's *second* target
        # injection, reconstructed from its full segment history; until
        # then relocations keep the scanned prefix alive.
        self._known: Dict[int, Set[int]] = {}
        self._garbage = 0

        # Logical-event buckets, keyed by exact float fire time.
        self._act_buckets: Dict[float, List[int]] = {}
        self._done_buckets: Dict[float, Tuple[List[int], List[int]]] = {}
        self._scan_buckets: Dict[float, List[int]] = {}
        self._times: List[float] = []
        self._times_set: Set[float] = set()
        self._tick_handle = None
        self._tick_time = 0.0

        self._interval = params.scan_interval_s
        self._infect_time = params.infect_time_s
        self._activation_delay = params.activation_delay_s
        self._window = self._interval

        # Legacy fires tied events in scheduling-seq order == descending
        # scheduling lag (stable sort keeps completions before scans if
        # the lags are ever equal; see the module docstring caveat).
        lagged = sorted(
            (
                (self._activation_delay, _KIND_ACTIVATE),
                (self._infect_time, _KIND_COMPLETE),
                (self._interval, _KIND_SCAN),
            ),
            key=lambda pair: -pair[0],
        )
        self._kind_order = [kind for _lag, kind in lagged]

        self._targets_unique = bool(getattr(knowledge, "targets_unique", False))
        self._targets_of_many = getattr(knowledge, "targets_of_many", None)

        # Zero-copy numpy views.  The byte columns and cursor arrays
        # never resize, so these views stay valid for the whole run;
        # the arena reallocates on growth, so its view is versioned.
        if np is not None:
            self._state_np = np.frombuffer(self._state, dtype=np.uint8)
            self._vuln_np = np.frombuffer(self._vuln, dtype=np.uint8)
            self._idle_np = np.frombuffer(self._idle, dtype=np.uint8)
            self._qs_np = np.frombuffer(self._q_start, dtype=np.int64)
            self._qh_np = np.frombuffer(self._q_head, dtype=np.int64)
            self._qe_np = np.frombuffer(self._q_end, dtype=np.int64)
        self._arena_np = None
        self._arena_version = 0
        self._arena_np_version = -1

    # -- public API --------------------------------------------------------------

    def seed(self, index: int, delay_s: float = 0.0) -> None:
        """Implant the worm on ``index`` at the start of the run."""
        if self._state[index] != STATE_NOT_INFECTED:
            return
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "worm.seed", self.sim.now, lane="worm", args={"node": index}
            )
        self._state[index] = STATE_INACTIVE
        self.infected_count += 1
        self.curve.record(self.sim.now, self.infected_count)
        t = self.sim.now + delay_s
        self._act_buckets.setdefault(t, []).append(index)
        self._push_time(t)
        self._ensure_tick()

    def add_targets(self, index: int, targets: Sequence[int]) -> None:
        """Inject harvested addresses into ``index``'s worm instance."""
        if self._state[index] == STATE_NOT_INFECTED:
            return
        added = self._append_targets(index, targets, False)
        if added and self._idle[index]:
            self._idle[index] = 0
            t = self.sim.now + self._interval
            self._scan_buckets.setdefault(t, []).append(index)
            self._push_time(t)
            self._ensure_tick()

    def is_infected(self, index: int) -> bool:
        """True once the worm has been implanted on ``index``."""
        return self._state[index] != STATE_NOT_INFECTED

    def state_of(self, index: int) -> WormState:
        """The worm state of one node (cheap; no list materialisation)."""
        return STATE_TO_ENUM[self._state[index]]

    @property
    def state(self) -> List[WormState]:
        """The full enum state list (materialised; prefer
        :meth:`state_of` for single lookups on large populations)."""
        return [STATE_TO_ENUM[code] for code in self._state]

    def pending_targets(self, index: int) -> int:
        """Known-but-unscanned queue length of one node."""
        if self._q_start[index] == -1:
            return 0
        return self._q_end[index] - self._q_head[index]

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> InfectionCurve:
        """Drive the simulation and return the infection curve.

        ``max_events`` bounds *kernel* events here; with batch ticks
        that is ticks + foreign events, not logical worm events.
        """
        self.sim.run(until=until, max_events=max_events)
        return self.curve

    # -- arena -------------------------------------------------------------------

    def _arena_view(self):
        if self._arena_np_version != self._arena_version:
            self._arena_np = np.frombuffer(self._arena, dtype=np.intc)
            self._arena_np_version = self._arena_version
        return self._arena_np

    def _append_targets(
        self, index: int, targets: Sequence[int], assume_unique: bool
    ) -> bool:
        """Append ``targets`` to ``index``'s queue segment, preserving
        the legacy dedup semantics (each address enqueued at most once
        per node, never the node itself).  Returns True if anything was
        added."""
        arena = self._arena
        q_start = self._q_start
        q_end = self._q_end
        start = q_start[index]
        if start == -1:
            # First injection.  Knowledge-derived rows are unique and
            # self-free by construction, so the common case appends with
            # no per-target set work at all.
            if assume_unique:
                row = list(targets)
            else:
                seen: Set[int] = set()
                row = []
                for t in targets:
                    if t == index or t in seen:
                        continue
                    seen.add(t)
                    row.append(t)
            base = len(arena)
            if row:
                self._arena_np = None  # release the buffer export
                arena.extend(row)
                self._arena_version += 1
            q_start[index] = base
            self._q_head[index] = base
            q_end[index] = base + len(row)
            return bool(row)
        # Subsequent injection: build the dedup set from the segment's
        # full history (scanned entries included) if we don't have it.
        known = self._known.get(index)
        if known is None:
            known = set(arena[start : q_end[index]])
            self._known[index] = known
        fresh = []
        for t in targets:
            if t == index or t in known:
                continue
            known.add(t)
            fresh.append(t)
        if not fresh:
            return False
        self._arena_np = None
        if q_end[index] != len(arena):
            # Segment not at the arena tail: relocate.  The dedup set
            # now owns the history, so only the unscanned tail moves.
            head = self._q_head[index]
            segment = arena[head : q_end[index]]
            self._garbage += q_end[index] - start
            base = len(arena)
            arena.extend(segment)
            q_start[index] = base
            self._q_head[index] = base
            q_end[index] = base + len(segment)
        arena.extend(fresh)
        self._arena_version += 1
        q_end[index] += len(fresh)
        self._maybe_compact()
        return True

    def _maybe_compact(self) -> None:
        """Rewrite the arena without abandoned segments once more than
        half of a non-trivial arena is garbage."""
        arena = self._arena
        if len(arena) < _COMPACT_MIN or 2 * self._garbage < len(arena):
            return
        self._arena_np = None
        q_start, q_head, q_end = self._q_start, self._q_head, self._q_end
        known = self._known
        fresh = array("i")
        for i in range(self.num_nodes):
            start = q_start[i]
            if start == -1:
                continue
            # History is only needed until the dedup set exists.
            keep_from = q_head[i] if i in known else start
            segment = arena[keep_from : q_end[i]]
            base = len(fresh)
            fresh.extend(segment)
            q_start[i] = base
            q_head[i] = base + (q_head[i] - keep_from)
            q_end[i] = base + len(segment)
        self._arena = fresh
        self._garbage = 0
        self._arena_version += 1

    # -- tick scheduling ---------------------------------------------------------

    def _push_time(self, t: float) -> None:
        if t not in self._times_set:
            self._times_set.add(t)
            heapq.heappush(self._times, t)

    def _ensure_tick(self) -> None:
        """Keep exactly one kernel event pending, at (or before) the
        earliest logical bucket."""
        times = self._times
        if not times:
            return
        t0 = times[0]
        handle = self._tick_handle
        if handle is not None and handle.pending:
            if self._tick_time <= t0:
                return
            handle.cancel()
        now = self.sim.now
        fire_at = t0 if t0 > now else now
        self._tick_handle = self.sim.schedule_at(fire_at, self._tick)
        self._tick_time = fire_at

    def _tick(self) -> None:
        """One kernel event: drain every logical bucket due in this
        ``scan_interval`` window, stopping at the run horizon and at the
        next foreign kernel event so external injections (harvesters)
        interleave exactly as they would under per-event scheduling."""
        self._tick_handle = None
        sim = self.sim
        now = sim.now
        window_end = now + self._window
        horizon = sim.horizon
        # Drains only create logical buckets, never kernel events, so
        # one peek is valid for the whole window.
        next_foreign = sim.peek_next_time()
        times = self._times
        times_set = self._times_set
        heappop = heapq.heappop
        trace = OBS.trace
        events_before = self.logical_events
        buckets = 0
        last_t = now
        while times:
            t = times[0]
            if t > window_end:
                break
            if horizon is not None and t > horizon:
                break
            # Stop before a foreign event; the ``t > now`` guard lets a
            # bucket tied with one at the current instant drain rather
            # than livelock on rescheduling.
            if next_foreign is not None and t >= next_foreign and t > now:
                break
            heappop(times)
            times_set.discard(t)
            buckets += 1
            last_t = t
            for kind in self._kind_order:
                if kind == _KIND_ACTIVATE:
                    acts = self._act_buckets.pop(t, None)
                    if acts:
                        self._drain_activations(t, acts)
                elif kind == _KIND_COMPLETE:
                    done = self._done_buckets.pop(t, None)
                    if done:
                        self._drain_completions(t, done)
                else:
                    scans = self._scan_buckets.pop(t, None)
                    if scans:
                        self._drain_scans(t, scans)
        if trace is not None and buckets:
            # Engine-mechanical span (not part of the logical-event
            # contract shared with the legacy engine): one batch tick
            # and the window of logical time it drained.
            trace.complete(
                "worm.tick",
                now,
                last_t - now,
                lane="sim",
                args={
                    "buckets": buckets,
                    "logical_events": self.logical_events - events_before,
                },
            )
        self._ensure_tick()

    # -- drains ------------------------------------------------------------------

    def _drain_activations(self, t: float, cohort: List[int]) -> None:
        """Worms activating at ``t``: start scanning, harvest routing
        knowledge (batched through ``targets_of_many`` when the model
        offers it), then queue the first scan or go idle."""
        self.logical_events += len(cohort)
        trace = OBS.trace
        if trace is not None:
            # Cohort order is the legacy scheduling order on every path
            # below, so the activation events can be emitted up front.
            for i in cohort:
                trace.instant(
                    "worm.activate", t, lane="worm", args={"node": i}
                )
        state = self._state
        for i in cohort:
            state[i] = STATE_SCANNING
        scan_t = t + self._interval
        q_start, q_head, q_end = self._q_start, self._q_head, self._q_end
        idle = self._idle
        bucket: Optional[List[int]] = None
        batched = (
            self._targets_of_many is not None
            and self._targets_unique
            and len(cohort) >= _BATCH_KNOWLEDGE_MIN
        )
        if batched:
            flat, counts = self._targets_of_many(cohort)
            flat_is_np = np is not None and isinstance(flat, np.ndarray)
            arena = self._arena
            self._arena_np = None
            base = len(arena)
            if flat_is_np:
                arena.frombytes(flat.astype(np.intc, copy=False).tobytes())
            else:
                arena.extend(flat)
            self._arena_version += 1
            carr = None
            if (
                flat_is_np
                and isinstance(counts, np.ndarray)
                and len(cohort) >= _VEC_MIN
            ):
                carr = np.asarray(cohort, dtype=np.int64)
                if (self._qs_np[carr] != -1).any():
                    carr = None  # rare pre-fed node: take the scalar path
            if carr is not None:
                # Whole-cohort cursor assignment: every node is fresh, so
                # its segment is exactly its slice of the bulk copy.
                cnts = counts.astype(np.int64, copy=False)
                ends = base + np.cumsum(cnts)
                starts = ends - cnts
                self._qs_np[carr] = starts
                self._qh_np[carr] = starts
                self._qe_np[carr] = ends
                nonempty = cnts > 0
                act = carr[nonempty]
                if act.size:
                    bucket = self._scan_buckets.setdefault(scan_t, [])
                    bucket.extend(act.tolist())
                if act.size < carr.size:
                    self._idle_np[carr[~nonempty]] = 1
                if bucket is not None:
                    self._push_time(scan_t)
                return
            if np is not None and isinstance(counts, np.ndarray):
                counts = counts.tolist()
            offset = 0
            for r, i in enumerate(cohort):
                count = counts[r]
                seg = base + offset
                offset += count
                if q_start[i] == -1:
                    q_start[i] = seg
                    q_head[i] = seg
                    q_end[i] = seg + count
                else:
                    # Rare: the node was fed by a harvester before
                    # activating.  Its bulk copy becomes garbage and the
                    # row goes through the dedup path instead.
                    self._garbage += count
                    row = flat[offset - count : offset]
                    self._append_targets(
                        i, row.tolist() if flat_is_np else row, True
                    )
                if q_head[i] < q_end[i]:
                    if bucket is None:
                        bucket = self._scan_buckets.setdefault(scan_t, [])
                    bucket.append(i)
                else:
                    idle[i] = 1
        else:
            targets_of = self.knowledge.targets_of
            unique = self._targets_unique
            for i in cohort:
                self._append_targets(i, targets_of(i), unique)
                if q_head[i] < q_end[i]:
                    if bucket is None:
                        bucket = self._scan_buckets.setdefault(scan_t, [])
                    bucket.append(i)
                else:
                    idle[i] = 1
        if bucket is not None:
            self._push_time(scan_t)

    def _drain_completions(
        self, t: float, bucket: Tuple[List[int], List[int]]
    ) -> None:
        """Infections completing at ``t``: the first completion for a
        still-clean target implants the worm (recorded on the curve at
        the logical time ``t``); every attacker returns to scanning."""
        attackers, targets = bucket
        count = len(attackers)
        self.logical_events += count
        act_t = t + self._activation_delay
        scan_t = t + self._interval
        points = self.curve.points
        trace = OBS.trace
        if np is not None and count >= _VEC_MIN and trace is None:
            state_np = self._state_np
            att = np.array(attackers, dtype=np.int64)
            tgt = np.array(targets, dtype=np.int64)
            _uniq, first = np.unique(tgt, return_index=True)
            first.sort()
            candidates = tgt[first]
            new = candidates[state_np[candidates] == STATE_NOT_INFECTED]
            if new.size:
                state_np[new] = STATE_INACTIVE
                infected = self.infected_count
                new_list = new.tolist()
                for _ in new_list:
                    infected += 1
                    points.append((t, infected))
                self.infected_count = infected
                self.infections_completed += len(new_list)
                self._act_buckets.setdefault(act_t, []).extend(new_list)
                self._push_time(act_t)
            state_np[att] = STATE_SCANNING
            self._scan_buckets.setdefault(scan_t, []).extend(attackers)
            self._push_time(scan_t)
            return
        state = self._state
        scan_bucket = self._scan_buckets.setdefault(scan_t, [])
        act_bucket: Optional[List[int]] = None
        for k in range(count):
            target = targets[k]
            new = state[target] == STATE_NOT_INFECTED
            if trace is not None:
                trace.instant(
                    "worm.infection",
                    t,
                    lane="worm",
                    args={
                        "attacker": attackers[k],
                        "target": target,
                        "new": new,
                    },
                )
            if new:
                state[target] = STATE_INACTIVE
                self.infected_count += 1
                points.append((t, self.infected_count))
                self.infections_completed += 1
                if act_bucket is None:
                    act_bucket = self._act_buckets.setdefault(act_t, [])
                    self._push_time(act_t)
                act_bucket.append(target)
            attacker = attackers[k]
            state[attacker] = STATE_SCANNING
            scan_bucket.append(attacker)
        self._push_time(scan_t)

    def _drain_scans(self, t: float, cohort: List[int]) -> None:
        """Scans firing at ``t``: pop each scanner's next known address;
        a vulnerable clean target starts an infection, anything else
        costs the scan slot; an empty queue idles the scanner.  Scans
        within one cohort read state, never write it, so the gather is
        order-independent and safe to vectorise."""
        self.logical_events += len(cohort)
        trace = OBS.trace
        if np is not None and len(cohort) >= _VEC_MIN and trace is None:
            nodes = np.array(cohort, dtype=np.int64)
            qh_np = self._qh_np
            heads = qh_np[nodes]
            active_mask = heads < self._qe_np[nodes]
            if not active_mask.all():
                self._idle_np[nodes[~active_mask]] = 1
            active = nodes[active_mask]
            if active.size == 0:
                return
            heads = heads[active_mask]
            targets = self._arena_view()[heads].astype(np.int64, copy=False)
            qh_np[active] = heads + 1
            self.scans_performed += int(active.size)
            hit_mask = (self._vuln_np[targets] != 0) & (
                self._state_np[targets] == STATE_NOT_INFECTED
            )
            hits = active[hit_mask]
            if hits.size:
                self._state_np[hits] = STATE_INFECTING
                done_t = t + self._infect_time
                done = self._done_buckets.get(done_t)
                if done is None:
                    done = ([], [])
                    self._done_buckets[done_t] = done
                done[0].extend(hits.tolist())
                done[1].extend(targets[hit_mask].tolist())
                self._push_time(done_t)
            misses = active[~hit_mask]
            if misses.size:
                scan_t = t + self._interval
                self._scan_buckets.setdefault(scan_t, []).extend(misses.tolist())
                self._push_time(scan_t)
            return
        arena = self._arena
        q_head, q_end = self._q_head, self._q_end
        state = self._state
        vuln = self._vuln
        done_bucket: Optional[Tuple[List[int], List[int]]] = None
        scan_bucket: Optional[List[int]] = None
        for i in cohort:
            head = q_head[i]
            if head == q_end[i]:
                self._idle[i] = 1
                if trace is not None:
                    trace.instant(
                        "worm.idle", t, lane="worm", args={"node": i}
                    )
                continue
            target = arena[head]
            q_head[i] = head + 1
            self.scans_performed += 1
            hit = bool(vuln[target]) and state[target] == STATE_NOT_INFECTED
            if trace is not None:
                trace.instant(
                    "worm.scan",
                    t,
                    lane="worm",
                    args={"node": i, "target": target, "hit": hit},
                )
            if hit:
                state[i] = STATE_INFECTING
                if done_bucket is None:
                    done_t = t + self._infect_time
                    done_bucket = self._done_buckets.get(done_t)
                    if done_bucket is None:
                        done_bucket = ([], [])
                        self._done_buckets[done_t] = done_bucket
                    self._push_time(done_t)
                done_bucket[0].append(i)
                done_bucket[1].append(target)
            else:
                if scan_bucket is None:
                    scan_t = t + self._interval
                    scan_bucket = self._scan_buckets.setdefault(scan_t, [])
                    self._push_time(scan_t)
                scan_bucket.append(i)
