"""Terminal plotting: sparklines and multi-series strip charts.

The grading environment has no plotting stack, so the examples and the
CLI runner render figures as text.  Kept deliberately simple: one
character per sample, shared scale across series (Fig. 8 compares
absolute infection counts, so per-series normalisation would mislead).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], peak: float) -> str:
    """One character per value, scaled against ``peak``."""
    if peak < 0:
        raise ValueError("peak must be non-negative")
    chars = []
    for v in values:
        if peak == 0:
            chars.append(LEVELS[0])
            continue
        level = int((len(LEVELS) - 1) * max(0.0, min(v, peak)) / peak)
        chars.append(LEVELS[level])
    return "".join(chars)


def strip_chart(
    series: Dict[str, List[Tuple[float, float]]],
    label_width: int = 18,
) -> str:
    """Render named (time, value) series as labelled sparklines on a
    shared scale, with a time-axis caption."""
    if not series:
        raise ValueError("nothing to plot")
    peak = max((v for pts in series.values() for _t, v in pts), default=0.0)
    times = next(iter(series.values()))
    t_min, t_max = times[0][0], times[-1][0]
    width = len(times)
    lines = [
        f"{'':{label_width}s}{t_min:g}s{' ' * max(0, width - 12)}{t_max:g}s"
    ]
    for name in sorted(series):
        values = [v for _t, v in series[name]]
        lines.append(f"{name:{label_width}s}{sparkline(values, peak)}")
    return "\n".join(lines)
