"""Infection-curve utilities: resampling and averaging across runs.

The paper reports Fig. 8 as the average of 10 simulation runs; these
helpers resample step curves onto a common time grid so runs can be
averaged point-wise.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..worm.model import InfectionCurve


def resample(curve: InfectionCurve, grid: Sequence[float]) -> List[int]:
    """Cumulative count at each grid time (step interpolation)."""
    out: List[int] = []
    points = curve.points
    i = 0
    count = 0
    for t in grid:
        while i < len(points) and points[i][0] <= t:
            count = points[i][1]
            i += 1
        out.append(count)
    return out


def log_time_grid(t_min: float, t_max: float, points: int = 60) -> List[float]:
    """A logarithmic time grid (Fig. 8 uses a log x-axis)."""
    if t_min <= 0 or t_max <= t_min or points < 2:
        raise ValueError("need 0 < t_min < t_max and >= 2 points")
    ratio = (t_max / t_min) ** (1.0 / (points - 1))
    return [t_min * ratio**i for i in range(points)]


def average_curves(
    curves: Sequence[InfectionCurve], grid: Sequence[float]
) -> List[Tuple[float, float]]:
    """Point-wise mean of several runs on a common grid."""
    if not curves:
        return [(t, 0.0) for t in grid]
    samples = [resample(c, grid) for c in curves]
    return [
        (t, sum(s[i] for s in samples) / len(samples)) for i, t in enumerate(grid)
    ]
