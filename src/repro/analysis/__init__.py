"""Statistics, infection curves, and table rendering."""

from .asciiplot import sparkline, strip_chart
from .export import write_rows_csv, write_series_csv
from .curves import average_curves, log_time_grid, resample
from .load import LoadReport, sample_ownership
from .tables import format_table

from .stats import (
    LookupStats,
    OperationStats,
    Summary,
    mean_confidence_interval,
    percentile,
)

__all__ = [
    "LoadReport",
    "average_curves",
    "format_table",
    "log_time_grid",
    "resample",
    "sample_ownership",
    "sparkline",
    "strip_chart",
    "write_rows_csv",
    "write_series_csv",
    "LookupStats",
    "OperationStats",
    "Summary",
    "mean_confidence_interval",
    "percentile",
]
