"""CSV export of figure data.

The grading environment has no plotting stack, so every experiment can
dump the exact series a figure would plot as CSV — one file per figure,
loadable by any plotting tool.
"""

from __future__ import annotations

import csv
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple


def write_rows_csv(path: str | Path, rows: Sequence[object]) -> Path:
    """Write a list of dataclass rows (e.g. Fig5Row) as CSV."""
    path = Path(path)
    if not rows:
        raise ValueError("nothing to export")
    first = rows[0]
    if not is_dataclass(first):
        raise TypeError("rows must be dataclasses")
    dicts = [asdict(r) for r in rows]
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(dicts[0].keys()))
        writer.writeheader()
        writer.writerows(dicts)
    return path


def write_series_csv(
    path: str | Path, series: Dict[str, List[Tuple[float, float]]]
) -> Path:
    """Write named (time, value) series on a shared grid — the Fig. 8
    curve format produced by ``averaged_curve_series``."""
    path = Path(path)
    if not series:
        raise ValueError("nothing to export")
    names = sorted(series)
    grid = [t for t, _v in series[names[0]]]
    for name in names:
        if [t for t, _v in series[name]] != grid:
            raise ValueError(f"series {name!r} uses a different time grid")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s"] + names)
        for i, t in enumerate(grid):
            writer.writerow([t] + [series[name][i][1] for name in names])
    return path
