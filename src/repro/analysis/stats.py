"""Metric collection and summary statistics for the experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float

    @staticmethod
    def of(values: Sequence[float]) -> "Summary":
        if not values:
            return Summary(0, math.nan, math.nan, math.nan, math.nan, math.nan, math.nan)
        ordered = sorted(values)
        n = len(ordered)
        mean = sum(ordered) / n
        var = sum((v - mean) ** 2 for v in ordered) / n
        return Summary(
            count=n,
            mean=mean,
            std=math.sqrt(var),
            minimum=ordered[0],
            median=percentile(ordered, 50.0),
            p90=percentile(ordered, 90.0),
            maximum=ordered[-1],
        )


def percentile(ordered: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


def mean_confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> tuple[float, float]:
    """Normal-approximation confidence half-interval around the mean."""
    if not values:
        return math.nan, math.nan
    s = Summary.of(values)
    half = z * s.std / math.sqrt(max(1, s.count))
    return s.mean, half


@dataclass
class LookupStats:
    """Accumulates per-lookup outcomes from a workload driver."""

    latencies_s: List[float] = field(default_factory=list)
    hops: List[int] = field(default_factory=list)
    failures: int = 0
    successes: int = 0

    def record(self, success: bool, latency_s: float, hop_count: int) -> None:
        if success:
            self.successes += 1
            self.latencies_s.append(latency_s)
            self.hops.append(hop_count)
        else:
            self.failures += 1

    @property
    def total(self) -> int:
        return self.successes + self.failures

    @property
    def failure_rate(self) -> float:
        return self.failures / self.total if self.total else math.nan

    def latency_summary(self) -> Summary:
        return Summary.of(self.latencies_s)

    def hops_summary(self) -> Summary:
        return Summary.of([float(h) for h in self.hops])


@dataclass
class OperationStats:
    """Per-DHT-operation latency and bandwidth (paper Figs. 6 and 7)."""

    latencies_s: List[float] = field(default_factory=list)
    bytes_used: List[int] = field(default_factory=list)
    failures: int = 0

    def record(self, success: bool, latency_s: float, op_bytes: int) -> None:
        if success:
            self.latencies_s.append(latency_s)
            self.bytes_used.append(op_bytes)
        else:
            self.failures += 1

    @property
    def successes(self) -> int:
        return len(self.latencies_s)

    def latency_summary(self) -> Summary:
        return Summary.of(self.latencies_s)

    def bytes_summary(self) -> Summary:
        return Summary.of([float(b) for b in self.bytes_used])
