"""Plain-text table rendering for experiment reports.

The benchmark harnesses print the same rows the paper's figures plot;
this keeps the formatting in one place.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align ``rows`` under ``headers`` (numbers right, text left)."""
    cells: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        line = []
        for i, cell in enumerate(row):
            if _is_numeric(cell):
                line.append(cell.rjust(widths[i]))
            else:
                line.append(cell.ljust(widths[i]))
        lines.append("  ".join(line))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace("-", "").replace(".", "")
    return stripped.isdigit() and cell not in ("-", "")
