"""Key-ownership load analysis.

Paper §4.4 accepts a deliberate load imbalance: ids falling in the tail
gap of a section are assigned to the *predecessor* (the last node of
the section), which therefore owns more of the key space than a Chord
node would, compensated by a lighter first node.  The paper discusses
this qualitatively; this module measures it, for the ablation bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..overlay.snapshot import StaticOverlay


@dataclass(frozen=True)
class LoadReport:
    """Distribution of key ownership over nodes."""

    samples: int
    num_nodes: int
    max_share: float          # heaviest node's fraction of keys
    mean_share: float         # 1/num_nodes by construction
    gini: float               # 0 = perfectly even
    top_decile_share: float   # fraction owned by the busiest 10% of nodes
    predecessor_rule_fraction: float  # keys assigned via the corner rule

    @property
    def max_over_mean(self) -> float:
        return self.max_share / self.mean_share if self.mean_share else float("nan")


def sample_ownership(
    overlay: StaticOverlay, samples: int, rng: random.Random
) -> LoadReport:
    """Sample uniform keys and attribute each to its owner."""
    counts = [0] * len(overlay)
    via_pred = 0
    for _ in range(samples):
        key = rng.getrandbits(overlay.space.bits)
        decision = overlay.owner(key)
        counts[decision.index] += 1
        if decision.via_predecessor_rule:
            via_pred += 1
    return _report(counts, samples, via_pred)


def _report(counts: Sequence[int], samples: int, via_pred: int) -> LoadReport:
    n = len(counts)
    shares = sorted(c / samples for c in counts)
    mean = 1.0 / n
    # Gini from the sorted shares.
    cumulative = 0.0
    weighted = 0.0
    for i, share in enumerate(shares, start=1):
        cumulative += share
        weighted += i * share
    gini = (2.0 * weighted) / (n * cumulative) - (n + 1.0) / n if cumulative else 0.0
    top_decile = sum(shares[-max(1, n // 10):])
    return LoadReport(
        samples=samples,
        num_nodes=n,
        max_share=shares[-1],
        mean_share=mean,
        gini=gini,
        top_decile_share=top_decile,
        predecessor_rule_fraction=via_pred / samples if samples else 0.0,
    )
