"""Continuous correctness: ring + containment invariants checked online.

Zave's "How to Make Chord Correct" analysis shows that Chord's ordered
ring — one successor cycle, every node connected to it, ordered
duplicate-free successor lists — is exactly what breaks under churn,
and Verme's containment argument (§4.3) adds the section-typing
invariant on top.  This package turns those into executable predicates
and runs them *during* simulations, not just after:

* :mod:`~repro.invariants.snapshot` — plain-integer captures of live
  routing state (:class:`RingSnapshot`);
* :mod:`~repro.invariants.predicates` — the predicate library and its
  three-level severity model (hard structural errors, transient ring
  invariants, conditional containment sizing);
* :mod:`~repro.invariants.checker` — :class:`InvariantChecker`, the
  sim-clock sampler installed at ``OBS.invariants`` (zero-cost when
  off) and surfaced as ``runner.py ... --invariants sample|strict``;
* :mod:`~repro.invariants.harness` — the small-N exhaustive /
  randomized interleaving stress harness
  (``python -m repro.invariants.harness``).

``docs/correctness.md`` is the user guide.
"""

from .checker import (
    EDGE_SETTLE_S,
    MODES,
    InvariantChecker,
    InvariantViolationError,
)
from .predicates import (
    PREDICATES,
    SEVERITY_CONDITIONAL,
    SEVERITY_ERROR,
    SEVERITY_TRANSIENT,
    ContainmentViolation,
    Violation,
    check_containment,
    check_finger_ranges,
    check_neighbor_lists,
    check_predecessor_coherence,
    check_ring,
    containment_violations,
    evaluate,
)
from .harness import (
    OPS,
    StressConfig,
    StressResult,
    run_interleavings,
    run_stress,
)
from .snapshot import NodeRecord, RingSnapshot

__all__ = [
    "EDGE_SETTLE_S",
    "MODES",
    "OPS",
    "PREDICATES",
    "SEVERITY_CONDITIONAL",
    "SEVERITY_ERROR",
    "SEVERITY_TRANSIENT",
    "ContainmentViolation",
    "InvariantChecker",
    "InvariantViolationError",
    "NodeRecord",
    "RingSnapshot",
    "StressConfig",
    "StressResult",
    "Violation",
    "check_containment",
    "check_finger_ranges",
    "check_neighbor_lists",
    "check_predecessor_coherence",
    "check_ring",
    "containment_violations",
    "evaluate",
    "run_interleavings",
    "run_stress",
]
