"""Plain-data snapshots of live overlay routing state.

The invariant predicates (:mod:`repro.invariants.predicates`) never
touch protocol nodes directly: a :class:`RingSnapshot` captures the
routing ids of every alive node in one pass — via
:meth:`~repro.chord.node.ChordNode.routing_state`, which reads the
internal entry lists without copying per-entry objects — and the
predicates then run over integers only.  That keeps checking cheap,
keeps the checker decoupled from node internals, and makes snapshots
trivially constructible by hand in tests (corrupt a record, assert the
predicate fires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from ..ids.sections import VermeIdLayout


@dataclass(frozen=True)
class NodeRecord:
    """One node's routing ids at capture time.

    ``fingers`` holds ``(k, target_id, entry_id)`` triples sorted by
    ``k`` — the target is what :meth:`finger_target` computed for the
    node (Chord power-of-two or Verme displaced), the entry is the id
    the table currently stores for it.
    """

    node_id: int
    successors: Tuple[int, ...]
    predecessors: Tuple[int, ...]
    fingers: Tuple[Tuple[int, int, int], ...]


class RingSnapshot:
    """Routing state of a whole population at one sim instant."""

    __slots__ = ("bits", "mask", "time_s", "records", "members", "layout")

    def __init__(
        self,
        bits: int,
        time_s: float,
        records: Sequence[NodeRecord],
        layout: Optional[VermeIdLayout] = None,
    ) -> None:
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.time_s = time_s
        self.records: Tuple[NodeRecord, ...] = tuple(records)
        self.members: FrozenSet[int] = frozenset(
            r.node_id for r in self.records
        )
        self.layout = layout

    def __len__(self) -> int:
        return len(self.records)

    @classmethod
    def capture(
        cls,
        nodes: Sequence,
        now: float = 0.0,
        layout: Optional[VermeIdLayout] = None,
    ) -> "RingSnapshot":
        """Snapshot every alive node in ``nodes``.

        ``layout`` defaults to the first node's ``layout`` attribute
        (present on Verme nodes, absent on plain Chord), so callers can
        pass a mixed source like ``population.nodes`` untouched.
        """
        alive = [n for n in nodes if n.alive]
        if not alive:
            return cls(1, now, (), layout)
        first = alive[0]
        if layout is None:
            layout = getattr(first, "layout", None)
        records = []
        for node in alive:
            succs, preds, fingers = node.routing_state()
            records.append(
                NodeRecord(node.node_id, succs, preds, tuple(sorted(fingers)))
            )
        records.sort(key=lambda r: r.node_id)
        return cls(first.space.bits, now, records, layout)

    @classmethod
    def from_arrays(
        cls,
        bits: int,
        now: float,
        node_ids: Sequence[int],
        successors: Sequence[Sequence[int]],
        predecessors: Sequence[Sequence[int]],
        fingers: Sequence[Sequence[Tuple[int, int, int]]],
        layout: Optional[VermeIdLayout] = None,
    ) -> "RingSnapshot":
        """Snapshot from parallel per-node id arrays (the columnar
        engine's state layout): row ``i`` of each sequence describes one
        alive node — its id, successor/predecessor ids clockwise-nearest
        first, and ``(k, target_id, entry_id)`` finger triples in any
        order.  Produces exactly what :meth:`capture` would for the
        equivalent object-graph population, so ``--invariants`` modes
        behave identically on both engines."""
        if not node_ids:
            return cls(1, now, (), layout)
        records = [
            NodeRecord(
                node_ids[i],
                tuple(successors[i]),
                tuple(predecessors[i]),
                tuple(sorted(fingers[i])),
            )
            for i in range(len(node_ids))
        ]
        records.sort(key=lambda r: r.node_id)
        return cls(bits, now, records, layout)
