"""The online invariant checker: sim-clock sampling during live runs.

An :class:`InvariantChecker` is installed at ``OBS.invariants`` (see
:mod:`repro.obs` — the same zero-cost-when-disabled switch the metrics
and trace instruments use; the attribute is ``None`` by default and
every hot-path hook is one attribute load + ``is not None``).  An
experiment driver that supports checking calls :meth:`watch` once per
cell, and the checker then:

* samples the ring every ``interval_s`` of *simulated* time;
* samples just after every fault-window edge (partition start/heal,
  link-fault and gray-failure start/end) from the cell's
  :class:`~repro.faults.FaultPlan`;
* re-samples on churn events (node killed / replacement joined,
  reported by :class:`~repro.chord.ring.ChurnDriver` and
  :class:`~repro.faults.script.OutageScript` via
  :meth:`note_membership`), rate-limited to one extra sample per
  interval;
* runs a **final** evaluation at the cell's end time, where the
  transient ring invariants escalate to errors
  (:mod:`repro.invariants.predicates` explains the severity model).

Violations accumulate on the checker as structured
:class:`~repro.invariants.predicates.Violation` records carrying sim
time, node ids, offending entries, the cell label and the seed;
:meth:`report` renders them as a JSON-able document and the runner's
``--invariants strict`` mode turns any ``error`` into a non-zero exit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..obs import OBS
from .predicates import (
    SEVERITY_CONDITIONAL,
    SEVERITY_ERROR,
    SEVERITY_TRANSIENT,
    Violation,
    evaluate,
)
from .snapshot import RingSnapshot

#: Seconds after a fault-window edge before sampling, so in-flight
#: messages settle into the post-edge regime first.
EDGE_SETTLE_S = 1.0

MODES = ("sample", "strict")


class InvariantViolationError(AssertionError):
    """Raised by :meth:`InvariantChecker.raise_if_errors` in strict
    harnesses when hard violations were recorded."""


class _Watch:
    """Per-cell sampling state (one live sim + population)."""

    __slots__ = (
        "sim", "population", "layout", "cell", "until", "interval_s",
        "last_sample_s",
    )

    def __init__(self, sim, population, layout, cell, until, interval_s):
        self.sim = sim
        self.population = population
        self.layout = layout
        self.cell = cell
        self.until = until
        self.interval_s = interval_s
        self.last_sample_s = float("-inf")


class InvariantChecker:
    """Accumulates invariant evaluations across one run's cells."""

    def __init__(
        self,
        mode: str = "sample",
        interval_s: float = 60.0,
        seed: Optional[int] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown invariants mode {mode!r}")
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.mode = mode
        self.interval_s = interval_s
        self.seed = seed
        self.violations: List[Violation] = []
        self.checks = 0
        self.churn_samples = 0
        self._watches: Dict[int, _Watch] = {}

    # -- direct evaluation -------------------------------------------------

    def check_population(
        self,
        nodes: Sequence,
        now: float = 0.0,
        *,
        layout=None,
        final: bool = False,
        cell: str = "",
    ) -> List[Violation]:
        """Snapshot ``nodes`` and run every predicate; record and return
        the violations found."""
        snap = RingSnapshot.capture(nodes, now, layout=layout)
        return self.check_snapshot(snap, final=final, cell=cell)

    def check_snapshot(
        self,
        snap: RingSnapshot,
        *,
        final: bool = False,
        cell: str = "",
    ) -> List[Violation]:
        """Run every predicate over an already-captured snapshot (the
        columnar engine builds its own via ``RingSnapshot.from_arrays``)."""
        found = evaluate(snap, final=final, cell=cell, seed=self.seed)
        self.checks += 1
        self.violations.extend(found)
        metrics = OBS.metrics
        if metrics is not None:
            metrics.counter("invariants.checks").inc()
            if found:
                for violation in found:
                    metrics.counter(
                        f"invariants.{violation.severity}."
                        f"{violation.predicate}"
                    ).inc()
        return found

    # -- scheduled sampling ------------------------------------------------

    def watch(
        self,
        sim,
        population,
        *,
        layout=None,
        fault_plan=None,
        until: Optional[float] = None,
        interval_s: Optional[float] = None,
        cell: str = "",
    ) -> None:
        """Schedule sampling for one experiment cell on its sim clock."""
        interval = interval_s if interval_s is not None else self.interval_s
        watch = _Watch(sim, population, layout, cell, until, interval)
        self._watches[id(sim)] = watch

        def periodic() -> None:
            self._sample(watch)
            if until is None or sim.now + interval <= until:
                sim.schedule(interval, periodic)

        sim.schedule(interval, periodic)
        for edge in self._fault_edges(fault_plan):
            at = edge + EDGE_SETTLE_S
            if 0.0 < at and (until is None or at < until):
                sim.schedule_at(at, self._sample, watch)
        if until is not None:
            sim.schedule_at(until, self._final, watch)

    @staticmethod
    def _fault_edges(fault_plan) -> List[float]:
        if fault_plan is None:
            return []
        edges: List[float] = []
        for partition in getattr(fault_plan, "partitions", ()):
            edges.extend((partition.start_s, partition.heal_s))
        for fault in getattr(fault_plan, "link_faults", ()):
            edges.extend((fault.start_s, fault.end_s))
        for gray in getattr(fault_plan, "gray_failures", ()):
            edges.extend((gray.start_s, gray.end_s))
        return sorted({e for e in edges if e != float("inf")})

    def note_membership(self, sim) -> None:
        """Churn hook (node crashed or joined): re-sample the watched
        cell, at most once per sampling interval beyond the schedule."""
        watch = self._watches.get(id(sim))
        if watch is None:
            return
        if sim.now - watch.last_sample_s >= watch.interval_s:
            self.churn_samples += 1
            self._sample(watch)

    def _sample(self, watch: _Watch, final: bool = False) -> None:
        watch.last_sample_s = watch.sim.now
        # Populations that can snapshot themselves (the columnar
        # engine's flat state arrays) expose ``ring_snapshot``; object
        # populations are captured node by node.
        snapshot_hook = getattr(watch.population, "ring_snapshot", None)
        if snapshot_hook is not None:
            self.check_snapshot(
                snapshot_hook(watch.sim.now), final=final, cell=watch.cell
            )
        else:
            self.check_population(
                watch.population.nodes,
                watch.sim.now,
                layout=watch.layout,
                final=final,
                cell=watch.cell,
            )

    def _final(self, watch: _Watch) -> None:
        self._sample(watch, final=True)
        self._watches.pop(id(watch.sim), None)

    # -- results -----------------------------------------------------------

    @property
    def errors(self) -> List[Violation]:
        """Hard violations (the ones strict mode fails on)."""
        return [
            v for v in self.violations if v.severity == SEVERITY_ERROR
        ]

    def counts(self) -> Dict[str, int]:
        """Violation counts by severity."""
        out = {
            SEVERITY_ERROR: 0,
            SEVERITY_TRANSIENT: 0,
            SEVERITY_CONDITIONAL: 0,
        }
        for violation in self.violations:
            out[violation.severity] += 1
        return out

    def summary(self) -> str:
        """One status line for run reports."""
        counts = self.counts()
        return (
            f"invariants: {self.checks} checks "
            f"({self.churn_samples} churn-triggered), "
            f"{counts['error']} errors, "
            f"{counts['transient']} transient, "
            f"{counts['conditional']} conditional"
        )

    def report(self) -> Dict[str, Any]:
        """The JSON violation report strict mode writes on failure."""
        return {
            "schema": "repro.invariants/1",
            "mode": self.mode,
            "seed": self.seed,
            "checks": self.checks,
            "churn_samples": self.churn_samples,
            "counts": self.counts(),
            "violations": [v.to_record() for v in self.violations],
        }

    def raise_if_errors(self, context: str = "") -> None:
        """Raise :class:`InvariantViolationError` if hard violations
        were recorded (the stress harness's assertion primitive)."""
        errors = self.errors
        if not errors:
            return
        lines = "\n  ".join(str(v) for v in errors[:20])
        suffix = "" if len(errors) <= 20 else f"\n  ... {len(errors) - 20} more"
        where = f" in {context}" if context else ""
        raise InvariantViolationError(
            f"{len(errors)} invariant violation(s){where}:\n  {lines}{suffix}"
        )
