"""``python -m repro.invariants`` — the interleaving stress harness CLI
(see :mod:`repro.invariants.harness` for the flags)."""

import sys

from .harness import main

sys.exit(main())
