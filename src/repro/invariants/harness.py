"""Small-N interleaving stress harness for the protocol invariants.

Drives join / crash / rejoin / stabilize steps directly against live
``repro.chord``/``repro.verme`` nodes and asserts the invariant
predicates after *every* step — the classic model-checking recipe at
simulation scale.  Two modes:

* **random** — one long walk: ``steps`` operations drawn from a
  deterministic RNG, a settle window after each, a hard-predicate
  check per step and a full (final) check at the end.
* **exhaustive** — every operation sequence of length ``depth``
  (``ops^depth`` fresh rings), checked the same way.  At the default
  depth of 3 over crash/join/rejoin/settle this is 64 sequences and a
  few seconds of wall time.

Also runnable from the shell (the CI ``invariant-smoke`` job does)::

    python -m repro.invariants.harness --system verme --steps 40
    python -m repro.invariants.harness --system chord --mode exhaustive --depth 3

Exit status 1 if any sequence recorded a hard violation.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .checker import InvariantChecker
from .predicates import SEVERITY_ERROR, Violation

#: The operations a step can take.  ``rejoin`` restarts a previously
#: crashed host (next incarnation, real join protocol); ``settle`` just
#: advances the sim through more stabilization rounds.
OPS = ("crash", "join", "rejoin", "settle")


@dataclass(frozen=True)
class StressConfig:
    """Scale and pacing of one stress run; defaults finish in seconds."""

    system: str = "chord"               # "chord" | "verme"
    num_nodes: int = 8
    num_sections: int = 4               # verme only
    id_bits: int = 32
    seed: int = 0
    steps: int = 24                     # random mode
    depth: int = 3                      # exhaustive mode
    settle_s: float = 35.0              # after each step
    final_settle_s: float = 240.0       # before the final check
    stabilize_interval_s: float = 10.0
    finger_interval_s: float = 20.0
    min_alive: int = 4                  # crash ops keep this many up

    def __post_init__(self) -> None:
        if self.system not in ("chord", "verme"):
            raise ValueError(f"unknown system {self.system!r}")
        if self.num_nodes < self.min_alive:
            raise ValueError("num_nodes must be at least min_alive")


@dataclass
class StressResult:
    """What a stress run did and found."""

    sequences: int = 0
    steps: int = 0
    checks: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def errors(self) -> List[Violation]:
        """Hard violations only (what :meth:`assert_clean` fails on)."""
        return [v for v in self.violations if v.severity == SEVERITY_ERROR]

    def assert_clean(self) -> None:
        """Raise if any hard violation was recorded."""
        errors = self.errors
        if errors:
            lines = "\n  ".join(str(v) for v in errors[:20])
            raise AssertionError(
                f"stress harness found {len(errors)} hard violation(s):"
                f"\n  {lines}"
            )


class _StressRun:
    """One live ring plus the bookkeeping to mutate it step by step."""

    def __init__(self, config: StressConfig, label: str) -> None:
        # Imported lazily: repro.experiments pulls in every driver, and
        # the experiment drivers import repro.invariants via repro.obs
        # consumers — keep package import light and cycle-free.
        from ..chord.config import OverlayConfig
        from ..experiments.builders import build_ring
        from ..ids.idspace import IdSpace
        from ..ids.sections import VermeIdLayout
        from ..net.latency import ConstantLatency
        from ..net.network import Network
        from ..sim import RngRegistry, Simulator
        from ..sim.rng import derive_seed

        self.config = config
        self.label = label
        space = IdSpace(config.id_bits)
        overlay_cfg = OverlayConfig(
            space=space,
            num_successors=3,
            num_predecessors=3,
            stabilize_interval_s=config.stabilize_interval_s,
            finger_interval_s=config.finger_interval_s,
        )
        self.layout = (
            VermeIdLayout.for_sections(space, config.num_sections)
            if config.system == "verme"
            else None
        )
        rngs = RngRegistry(derive_seed(config.seed, f"stress:{label}"))
        self.sim = Simulator()
        # Enough host slots for every join the walk can make.
        max_hosts = config.num_nodes + max(config.steps, config.depth) + 2
        network = Network(
            self.sim, ConstantLatency(num_hosts=max_hosts, one_way=0.02)
        )
        ring = build_ring(
            self.sim, network, overlay_cfg, config.num_nodes, rngs,
            self.layout,
        )
        self.population = ring.population
        self.factory = ring.factory
        self.rng = rngs.stream("ops")
        self.next_host = config.num_nodes
        self.crashed: List[Tuple[int, int]] = []  # (host_slot, incarnation)

    def apply(self, op: str) -> str:
        """Apply one operation; returns the op actually applied (an
        infeasible op — crash below min_alive, rejoin with nothing
        crashed — degrades to ``settle``)."""
        if op == "crash" and len(self.population) > self.config.min_alive:
            node = self.population.pick(self.rng)
            self.population.remove(node)
            node.crash()
            self.crashed.append(
                (node.address.host_slot, node.address.incarnation)
            )
            return op
        if op == "join":
            self._start_join(self.next_host, 0)
            self.next_host += 1
            return op
        if op == "rejoin" and self.crashed:
            host, incarnation = self.crashed.pop(
                self.rng.randrange(len(self.crashed))
            )
            self._start_join(host, incarnation + 1)
            return op
        return "settle"

    def _start_join(self, host_slot: int, incarnation: int) -> None:
        bootstrap = self.population.pick(self.rng)
        node = self.factory.create(host_slot, incarnation)
        node.join(
            bootstrap.address,
            on_done=lambda ok: self.population.add(node) if ok else None,
        )

    def settle(self, seconds: float) -> None:
        """Advance the sim through ``seconds`` of stabilization."""
        self.sim.run(until=self.sim.now + seconds)


def _run_sequence(
    config: StressConfig,
    checker: InvariantChecker,
    ops: List[str],
    label: str,
) -> int:
    """Drive one operation sequence; returns the number of steps."""
    run = _StressRun(config, label)
    for index, op in enumerate(ops):
        applied = run.apply(op)
        run.settle(config.settle_s)
        checker.check_population(
            run.population.nodes,
            run.sim.now,
            layout=run.layout,
            cell=f"{label}.step{index}:{applied}",
        )
    run.settle(config.final_settle_s)
    checker.check_population(
        run.population.nodes,
        run.sim.now,
        layout=run.layout,
        final=True,
        cell=f"{label}.final",
    )
    return len(ops)


def run_stress(config: StressConfig) -> StressResult:
    """Random mode: one ``config.steps``-long walk over :data:`OPS`."""
    checker = InvariantChecker(mode="strict", seed=config.seed)
    walk_rng = random.Random(config.seed)
    ops = [walk_rng.choice(OPS) for _ in range(config.steps)]
    steps = _run_sequence(
        config, checker, ops, f"stress.{config.system}.random"
    )
    return StressResult(
        sequences=1,
        steps=steps,
        checks=checker.checks,
        violations=checker.violations,
    )


def run_interleavings(
    config: StressConfig, ops: Tuple[str, ...] = OPS
) -> StressResult:
    """Exhaustive mode: every ``ops``-sequence of length ``config.depth``
    against a fresh ring each."""
    checker = InvariantChecker(mode="strict", seed=config.seed)
    sequences = 0
    steps = 0
    for index, seq in enumerate(itertools.product(ops, repeat=config.depth)):
        sequences += 1
        steps += _run_sequence(
            config, checker, list(seq),
            f"stress.{config.system}.seq{index}:{'-'.join(seq)}",
        )
    return StressResult(
        sequences=sequences,
        steps=steps,
        checks=checker.checks,
        violations=checker.violations,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see the module docstring)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.invariants.harness", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--system", choices=["chord", "verme"],
                        default="chord")
    parser.add_argument("--mode", choices=["random", "exhaustive"],
                        default="random")
    parser.add_argument("--steps", type=int, default=24,
                        help="walk length in random mode")
    parser.add_argument("--depth", type=int, default=3,
                        help="sequence length in exhaustive mode")
    parser.add_argument("--nodes", type=int, default=8,
                        help="initial ring size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    config = StressConfig(
        system=args.system,
        num_nodes=args.nodes,
        steps=args.steps,
        depth=args.depth,
        seed=args.seed,
    )
    if args.mode == "random":
        result = run_stress(config)
    else:
        result = run_interleavings(config)
    counts = {"error": 0, "transient": 0, "conditional": 0}
    for violation in result.violations:
        counts[violation.severity] += 1
    print(
        f"{args.system} {args.mode}: {result.sequences} sequence(s), "
        f"{result.steps} steps, {result.checks} checks — "
        f"{counts['error']} errors, {counts['transient']} transient, "
        f"{counts['conditional']} conditional"
    )
    for violation in result.errors[:20]:
        print(f"  {violation}")
    return 1 if result.errors else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
