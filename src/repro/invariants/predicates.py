"""The invariant predicate library (Zave ring invariants + Verme §4.3).

Each predicate takes a :class:`~repro.invariants.snapshot.RingSnapshot`
and returns structured :class:`Violation` records.  Predicates fall
into three severity classes, because not every invariant *can* hold at
every instant of a faulty run:

* ``error`` — must hold on every snapshot, churn or not.  Successor and
  predecessor lists ordered, duplicate-free and never self-referential
  (the :class:`~repro.chord.state.NeighborList` contract), and — for
  Verme — no *finger* entry of the node's own type outside its section
  (``VermeNode._finger_fixed`` refuses such entries, so one appearing
  means corrupted state).
* ``transient`` — Zave's ring invariants.  The *inductive* core — one
  successor cycle traversing the id space exactly once, every alive
  node connected to it — legitimately breaks during a partition or
  churn burst (that is Zave's whole point) and must be restored by
  stabilization: those predicates escalate to ``error`` on a **final**
  (end-of-run, post-heal) evaluation.  The *eventual* pointer ideals —
  the predecessor of your first successor is you, Chord fingers at or
  past their power-of-two targets — converge only one walked-back node
  per stabilization round, so a bounded post-heal window cannot
  guarantee them; they stay ``transient`` even on final evaluations
  (Zave's appendage states) and are reported for inspection.
* ``conditional`` — Verme containment via successor/predecessor lists.
  The paper's guarantee is probabilistic: lists stay within two
  sections only when sections are sized against the list length
  (:func:`~repro.verme.audit.max_safe_neighbor_list`).  An undersized
  ring violates this *by construction* — e.g. the default resilience
  config (64 nodes, 8 sections, 8-entry lists) reports dozens of
  spills at bootstrap.  These are recorded, never escalate, and are
  exactly the condition an operator should check before trusting the
  containment story (see ``docs/correctness.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..ids.sections import VermeIdLayout
from .snapshot import NodeRecord, RingSnapshot

SEVERITY_ERROR = "error"
SEVERITY_TRANSIENT = "transient"
SEVERITY_CONDITIONAL = "conditional"

#: Every predicate name ``evaluate`` can emit.
PREDICATES = (
    "successor-list",
    "predecessor-list",
    "finger-range",
    "containment",
    "ring-stranded",
    "ring-split",
    "ring-order",
    "pred-coherence",
)


@dataclass(frozen=True)
class Violation:
    """One invariant violation, with enough context to reproduce it."""

    predicate: str
    severity: str
    time_s: float
    node_id: int
    detail: str
    entries: Tuple[int, ...] = ()
    cell: str = ""
    seed: Optional[int] = None

    def to_record(self) -> dict:
        """JSON-serialisable form (ids as hex strings for readability)."""
        return {
            "predicate": self.predicate,
            "severity": self.severity,
            "time_s": self.time_s,
            "node_id": f"{self.node_id:#x}",
            "detail": self.detail,
            "entries": [f"{e:#x}" for e in self.entries],
            "cell": self.cell,
            "seed": self.seed,
        }

    def __str__(self) -> str:
        where = f" [{self.cell}]" if self.cell else ""
        return (
            f"t={self.time_s:.1f}s {self.predicate} ({self.severity}) "
            f"node {self.node_id:#x}: {self.detail}{where}"
        )


@dataclass(frozen=True)
class ContainmentViolation:
    """One same-type routing entry that crosses a section boundary.

    ``node_section``/``entry_section``/``node_type`` default to ``-1``
    for backward compatibility with records constructed before the
    fields existed; :func:`containment_violations` always fills them.
    """

    node_id: int
    entry_id: int
    table: str  # "successors" | "predecessors" | "fingers"
    node_section: int = -1
    entry_section: int = -1
    node_type: int = -1

    def __str__(self) -> str:
        sections = ""
        if self.node_section >= 0:
            sections = (
                f", section {self.node_section} -> {self.entry_section}"
            )
        return (
            f"{self.node_id:#x} -> {self.entry_id:#x} "
            f"(same type, different section, via {self.table}{sections})"
        )


def containment_violations(
    layout: VermeIdLayout,
    node_id: int,
    successors: Iterable[int],
    predecessors: Iterable[int],
    fingers: Iterable[int],
) -> List[ContainmentViolation]:
    """THE paper invariant (§4.3), single implementation: every routing
    entry of the node's own type outside its own section."""
    out: List[ContainmentViolation] = []
    node_section = layout.section_index(node_id)
    node_type = layout.type_of(node_id)
    for table, ids in (
        ("successors", successors),
        ("predecessors", predecessors),
        ("fingers", fingers),
    ):
        for entry in ids:
            if entry == node_id:
                continue
            if layout.same_type(entry, node_id) and not layout.same_section(
                entry, node_id
            ):
                out.append(
                    ContainmentViolation(
                        node_id,
                        entry,
                        table,
                        node_section=node_section,
                        entry_section=layout.section_index(entry),
                        node_type=node_type,
                    )
                )
    return out


def _list_violations(
    record: NodeRecord, ids: Tuple[int, ...], mask: int, clockwise: bool,
    predicate: str, time_s: float,
) -> List[Violation]:
    """Ordered (strictly, by ring distance), duplicate-free, no self."""
    out: List[Violation] = []
    table = "successor" if clockwise else "predecessor"
    prev_dist = 0
    for i, entry in enumerate(ids):
        if entry == record.node_id:
            out.append(Violation(
                predicate, SEVERITY_ERROR, time_s, record.node_id,
                f"{table} list contains the node itself at index {i}",
                entries=ids,
            ))
            continue
        if clockwise:
            dist = (entry - record.node_id) & mask
        else:
            dist = (record.node_id - entry) & mask
        if dist == prev_dist and i > 0:
            out.append(Violation(
                predicate, SEVERITY_ERROR, time_s, record.node_id,
                f"duplicate {table} entry {entry:#x} at index {i}",
                entries=ids,
            ))
        elif dist < prev_dist:
            out.append(Violation(
                predicate, SEVERITY_ERROR, time_s, record.node_id,
                f"{table} list out of ring order at index {i} "
                f"(entry {entry:#x})",
                entries=ids,
            ))
        prev_dist = dist
    return out


def check_neighbor_lists(snap: RingSnapshot) -> List[Violation]:
    """Structural NeighborList invariants for every node (``error``)."""
    out: List[Violation] = []
    for rec in snap.records:
        out.extend(_list_violations(
            rec, rec.successors, snap.mask, True, "successor-list",
            snap.time_s,
        ))
        out.extend(_list_violations(
            rec, rec.predecessors, snap.mask, False, "predecessor-list",
            snap.time_s,
        ))
    return out


def check_finger_ranges(
    snap: RingSnapshot, severity: str = SEVERITY_TRANSIENT
) -> List[Violation]:
    """Chord finger-table range validity: entry ``k`` lies at or past
    its target, i.e. ``distance(node, entry) >= distance(node, target)``.

    Applies to plain Chord snapshots only — Verme's §4.4 corner rule
    lets a displaced finger legally resolve *before* its target, so for
    Verme the binding finger invariant is containment instead.  A stale
    entry can violate this legitimately (the stored node was past the
    target when looked up, but every node between target and origin has
    since died and lookups wrapped) and finger repair replaces one entry
    per round, so the severity stays ``transient`` even on final
    evaluations; a self-entry is always hard corruption.
    """
    if snap.layout is not None:
        return []
    out: List[Violation] = []
    for rec in snap.records:
        for k, target, entry in rec.fingers:
            if entry == rec.node_id:
                out.append(Violation(
                    "finger-range", SEVERITY_ERROR, snap.time_s, rec.node_id,
                    f"finger {k} stores the node itself",
                    entries=(entry,),
                ))
                continue
            dist_entry = (entry - rec.node_id) & snap.mask
            dist_target = (target - rec.node_id) & snap.mask
            if dist_entry < dist_target:
                out.append(Violation(
                    "finger-range", severity, snap.time_s, rec.node_id,
                    f"finger {k} entry {entry:#x} lies before its target "
                    f"{target:#x}",
                    entries=(entry,),
                ))
    return out


def check_containment(snap: RingSnapshot) -> List[Violation]:
    """Verme section-typing invariant over a snapshot.

    Finger spills are ``error`` (the protocol refuses to store them);
    successor/predecessor spills are ``conditional`` (the paper's
    probabilistic sizing assumption — see the module docstring).
    """
    layout = snap.layout
    if layout is None:
        return []
    out: List[Violation] = []
    for rec in snap.records:
        for cv in containment_violations(
            layout,
            rec.node_id,
            rec.successors,
            rec.predecessors,
            (entry for _, _, entry in rec.fingers),
        ):
            severity = (
                SEVERITY_ERROR if cv.table == "fingers"
                else SEVERITY_CONDITIONAL
            )
            out.append(Violation(
                "containment", severity, snap.time_s, cv.node_id,
                f"same-type entry {cv.entry_id:#x} in foreign section "
                f"{cv.entry_section} via {cv.table}",
                entries=(cv.entry_id,),
            ))
    return out


def _effective_successors(snap: RingSnapshot) -> Dict[int, Optional[int]]:
    """First *alive* successor of every node (None = fully stranded)."""
    members = snap.members
    return {
        rec.node_id: next(
            (s for s in rec.successors if s in members and s != rec.node_id),
            None,
        )
        for rec in snap.records
    }


def check_ring(
    snap: RingSnapshot, severity: str = SEVERITY_TRANSIENT
) -> List[Violation]:
    """Zave's ring invariants over the first-alive-successor graph:
    every node reaches a cycle, there is exactly one cycle, and it
    traverses the id space exactly once (ordered ring)."""
    if len(snap.records) <= 1:
        return []
    out: List[Violation] = []
    eff = _effective_successors(snap)
    for rec in snap.records:
        if eff[rec.node_id] is None:
            out.append(Violation(
                "ring-stranded", severity, snap.time_s, rec.node_id,
                "no alive entry in the successor list",
                entries=rec.successors,
            ))
    # Functional-graph cycle detection (iterative colouring).
    color: Dict[int, int] = {}  # 1 = on current path, 2 = finished
    cycles: List[List[int]] = []
    for start in eff:
        if start in color:
            continue
        path: List[int] = []
        cur: Optional[int] = start
        while cur is not None and cur not in color:
            color[cur] = 1
            path.append(cur)
            cur = eff[cur]
        if cur is not None and color[cur] == 1:
            cycles.append(path[path.index(cur):])
        for n in path:
            color[n] = 2
    if len(cycles) > 1:
        reps = tuple(sorted(min(c) for c in cycles))
        out.append(Violation(
            "ring-split", severity, snap.time_s, reps[0],
            f"{len(cycles)} disjoint successor cycles "
            f"(representatives {', '.join(f'{r:#x}' for r in reps)})",
            entries=reps,
        ))
    for cycle in cycles:
        if len(cycle) < 2:
            continue
        wraps = sum(
            1 for a, b in zip(cycle, cycle[1:] + cycle[:1]) if b <= a
        )
        if wraps != 1:
            out.append(Violation(
                "ring-order", severity, snap.time_s, min(cycle),
                f"successor cycle of {len(cycle)} nodes wraps the id "
                f"space {wraps} times (expected once)",
                entries=tuple(cycle[:8]),
            ))
    return out


def check_predecessor_coherence(
    snap: RingSnapshot, severity: str = SEVERITY_TRANSIENT
) -> List[Violation]:
    """Zave's pointer agreement: my first alive successor's first alive
    predecessor is me.  Only meaningful near convergence, so the
    checker runs it on final evaluations — but stabilization restores
    it one walked-back node per round (appendage states persist long
    after a heal), so violations stay ``transient``."""
    if len(snap.records) <= 1:
        return []
    members = snap.members
    by_id = {rec.node_id: rec for rec in snap.records}
    eff = _effective_successors(snap)
    out: List[Violation] = []
    for rec in snap.records:
        succ = eff[rec.node_id]
        if succ is None:
            continue  # already a ring-stranded violation
        pred_of_succ = next(
            (
                p for p in by_id[succ].predecessors
                if p in members and p != succ
            ),
            None,
        )
        if pred_of_succ != rec.node_id:
            have = (
                f"{pred_of_succ:#x}" if pred_of_succ is not None else "none"
            )
            out.append(Violation(
                "pred-coherence", severity, snap.time_s, rec.node_id,
                f"successor {succ:#x} thinks its predecessor is {have}",
                entries=(succ,) + by_id[succ].predecessors,
            ))
    return out


def evaluate(
    snap: RingSnapshot,
    *,
    final: bool = False,
    cell: str = "",
    seed: Optional[int] = None,
) -> List[Violation]:
    """Run every predicate over one snapshot.

    ``final=True`` marks an end-of-run evaluation: the inductive ring
    invariants (single cycle, everyone connected, ordered traversal)
    have had time to restore and report as ``error``; the eventual
    pointer ideals (finger ranges, predecessor coherence) are evaluated
    but stay ``transient`` (see the module docstring).
    """
    ring_severity = SEVERITY_ERROR if final else SEVERITY_TRANSIENT
    found: List[Violation] = []
    found.extend(check_neighbor_lists(snap))
    found.extend(check_finger_ranges(snap))
    found.extend(check_containment(snap))
    found.extend(check_ring(snap, ring_severity))
    if final:
        found.extend(check_predecessor_coherence(snap))
    if cell or seed is not None:
        from dataclasses import replace

        found = [replace(v, cell=cell, seed=seed) for v in found]
    return found
