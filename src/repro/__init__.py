"""Reproduction of "Verme: Worm Containment in Overlay Networks" (DSN 2009).

The public surface re-exports the pieces a downstream user needs to
assemble simulations: the event kernel, network models, Chord and Verme
overlays, the DHash/VerDi DHT family, and the worm propagation model.
See README.md for a guided tour and DESIGN.md for the architecture.
"""

from .chord import (
    ChordNode,
    ChurnDriver,
    LookupPurpose,
    LookupResult,
    LookupStyle,
    LookupWorkload,
    NodeInfo,
    OverlayConfig,
    Population,
    instant_bootstrap,
)
from .crypto import CertificateAuthority, KeyPair, NodeCertificate
from .faults import (
    FailureDetectorStats,
    FaultPlan,
    GrayFailure,
    LinkFault,
    Outage,
    OutageScript,
    Partition,
)
from .dht import (
    CompromiseVerDiNode,
    DHashNode,
    DhtConfig,
    FastVerDiNode,
    OpResult,
    SecureVerDiNode,
)
from .ids import IdSpace, NodeType, VermeIdLayout
from .net import ByteAccounting, Network, NodeAddress
from .overlay import StaticOverlay, VermeStaticOverlay
from .sim import RngRegistry, Simulator
from .verme import VermeNode, audit_overlay
from .worm import (
    WormParams,
    WormScenarioConfig,
    WormSimulation,
    run_all_scenarios,
    run_scenario,
)

__version__ = "0.1.0"

__all__ = [
    "ByteAccounting",
    "CertificateAuthority",
    "ChordNode",
    "ChurnDriver",
    "CompromiseVerDiNode",
    "DHashNode",
    "DhtConfig",
    "FailureDetectorStats",
    "FastVerDiNode",
    "FaultPlan",
    "GrayFailure",
    "IdSpace",
    "KeyPair",
    "LinkFault",
    "LookupPurpose",
    "LookupResult",
    "LookupStyle",
    "LookupWorkload",
    "Network",
    "NodeAddress",
    "NodeCertificate",
    "NodeInfo",
    "NodeType",
    "OpResult",
    "Outage",
    "OutageScript",
    "OverlayConfig",
    "Partition",
    "Population",
    "RngRegistry",
    "SecureVerDiNode",
    "Simulator",
    "StaticOverlay",
    "VermeIdLayout",
    "VermeNode",
    "VermeStaticOverlay",
    "WormParams",
    "WormScenarioConfig",
    "WormSimulation",
    "audit_overlay",
    "instant_bootstrap",
    "run_all_scenarios",
    "run_scenario",
]
