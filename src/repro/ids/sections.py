"""Verme identifier structure: type-alternating ring sections.

Verme (paper §4.3, Figure 2) splits a node id into three fields::

    [ high random bits | type bits | low random bits ]
      \\-- section number --/         \\-- position --/

The low ``section_bits`` are random and define the *length* of a
section; the middle ``type_bits`` encode the node's platform type; the
high bits are random.  High bits concatenated with the type bits form
the *section number*, so consecutive section numbers always differ in
their type field: neighbouring sections never share a type.  With the
paper's simplifying assumption of two types (one type bit) the sections
strictly alternate A, B, A, B, ... around the ring.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from .idspace import IdSpace


@dataclass(frozen=True)
class VermeIdLayout:
    """Field layout of Verme identifiers within an :class:`IdSpace`.

    ``section_bits`` is the number of low random bits (section length is
    ``2**section_bits``); ``type_bits`` is the width of the type field
    (the paper's two-type assumption corresponds to the default of 1).
    """

    space: IdSpace
    section_bits: int
    type_bits: int = 1

    def __post_init__(self) -> None:
        if self.section_bits < 1:
            raise ValueError("section_bits must be >= 1")
        if self.type_bits < 1:
            raise ValueError("type_bits must be >= 1")
        if self.section_bits + self.type_bits >= self.space.bits:
            raise ValueError(
                "section_bits + type_bits must leave room for high bits "
                f"({self.section_bits}+{self.type_bits} >= {self.space.bits})"
            )

    # -- derived geometry ---------------------------------------------------

    @property
    def high_bits(self) -> int:
        return self.space.bits - self.type_bits - self.section_bits

    @property
    def section_length(self) -> int:
        """Number of identifiers per section."""
        return 1 << self.section_bits

    @property
    def num_types(self) -> int:
        return 1 << self.type_bits

    @property
    def num_sections(self) -> int:
        """Total sections around the ring (all types)."""
        return 1 << (self.high_bits + self.type_bits)

    @property
    def sections_per_type(self) -> int:
        return self.num_sections // self.num_types

    @classmethod
    def for_sections(
        cls, space: IdSpace, num_sections: int, type_bits: int = 1
    ) -> "VermeIdLayout":
        """Build the layout with exactly ``num_sections`` total sections.

        This mirrors the paper's configuration style ("the Verme overlay
        was configured with 128 sections" / "4096 sections").
        """
        if num_sections & (num_sections - 1):
            raise ValueError("num_sections must be a power of two")
        index_bits = num_sections.bit_length() - 1
        if index_bits < type_bits + 1:
            raise ValueError("num_sections too small for the type field")
        return cls(space, space.bits - index_bits, type_bits)

    # -- id (de)composition -------------------------------------------------

    def make_id(self, high: int, node_type: int, low: int) -> int:
        """Compose an id from its three fields."""
        if not 0 <= high < (1 << self.high_bits):
            raise ValueError(f"high field {high} out of range")
        if not 0 <= node_type < self.num_types:
            raise ValueError(f"type field {node_type} out of range")
        if not 0 <= low < self.section_length:
            raise ValueError(f"low field {low} out of range")
        return (high << (self.type_bits + self.section_bits)) | (
            node_type << self.section_bits
        ) | low

    def split(self, ident: int) -> Tuple[int, int, int]:
        """Decompose an id into ``(high, type, low)``."""
        self.space.validate(ident)
        low = ident & (self.section_length - 1)
        node_type = (ident >> self.section_bits) & (self.num_types - 1)
        high = ident >> (self.section_bits + self.type_bits)
        return high, node_type, low

    def type_of(self, ident: int) -> int:
        """The type field of an identifier (node id or key)."""
        return (ident >> self.section_bits) & (self.num_types - 1)

    def section_index(self, ident: int) -> int:
        """Global section number (high bits concatenated with type bits)."""
        return self.space.validate(ident) >> self.section_bits

    def offset_in_section(self, ident: int) -> int:
        return ident & (self.section_length - 1)

    # -- section geometry ---------------------------------------------------

    def section_start(self, index: int) -> int:
        if not 0 <= index < self.num_sections:
            raise ValueError(f"section index {index} out of range")
        return index << self.section_bits

    def section_bounds(self, index: int) -> Tuple[int, int]:
        """Inclusive ``(first_id, last_id)`` of section ``index``."""
        start = self.section_start(index)
        return start, start + self.section_length - 1

    def type_of_section(self, index: int) -> int:
        if not 0 <= index < self.num_sections:
            raise ValueError(f"section index {index} out of range")
        return index & (self.num_types - 1)

    def sections_of_type(self, node_type: int) -> Iterator[int]:
        """All section indices whose type field equals ``node_type``."""
        if not 0 <= node_type < self.num_types:
            raise ValueError(f"type {node_type} out of range")
        for high in range(1 << self.high_bits):
            yield (high << self.type_bits) | node_type

    # -- navigation ---------------------------------------------------------

    def advance_sections(self, ident: int, count: int = 1) -> int:
        """Same position, ``count`` sections clockwise (wraps the ring)."""
        return self.space.wrap(ident + count * self.section_length)

    def opposite_type_position(self, ident: int) -> int:
        """Same in-section position in the *next* section.

        With two types the next section is of the opposite type; this is
        the displacement Verme applies to finger targets (§4.4) and VerDi
        applies to the second replica group (§5.2).
        """
        return self.advance_sections(ident, 1)

    def same_type(self, a: int, b: int) -> bool:
        return self.type_of(a) == self.type_of(b)

    def same_section(self, a: int, b: int) -> bool:
        return self.section_index(a) == self.section_index(b)

    # -- id generation ------------------------------------------------------

    def random_id(self, rng: random.Random, node_type: int) -> int:
        """A fresh id for a node of ``node_type`` (high and low random)."""
        high = rng.getrandbits(self.high_bits)
        low = rng.getrandbits(self.section_bits)
        return self.make_id(high, node_type, low)

    def random_key(self, rng: random.Random) -> int:
        """A uniformly random key (keys are not type-structured)."""
        return rng.getrandbits(self.space.bits)
