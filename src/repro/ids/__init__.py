"""Identifier space, id assignment, and Verme section geometry."""

from .assignment import (
    NodeType,
    chord_id_for_address,
    key_for_value,
    random_chord_id,
    sha1_id,
)
from .idspace import DEFAULT_ID_BITS, DEFAULT_SPACE, IdSpace
from .sections import VermeIdLayout

__all__ = [
    "DEFAULT_ID_BITS",
    "DEFAULT_SPACE",
    "IdSpace",
    "NodeType",
    "VermeIdLayout",
    "chord_id_for_address",
    "key_for_value",
    "random_chord_id",
    "sha1_id",
]
