"""Circular identifier-space arithmetic.

Chord and Verme both place nodes and keys on a ring of ``2**bits``
identifiers (the paper uses 160-bit SHA-1 ids).  All interval tests here
are *clockwise*: ``in_open(x, a, b)`` asks whether walking clockwise
from ``a`` you meet ``x`` strictly before ``b``.  These predicates are
the foundation every routing decision rests on, so they are kept tiny
and heavily property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_ID_BITS = 160


@dataclass(frozen=True)
class IdSpace:
    """A ring of ``2**bits`` identifiers with clockwise interval tests.

    ``size`` and ``mask`` (``size - 1``) are plain attributes computed
    once at construction: the interval predicates run millions of times
    per simulated experiment, and recomputing ``1 << bits`` per call
    used to dominate their cost.  Both are derived from ``bits`` and
    excluded from equality/hashing (which stay ``bits``-only).
    """

    bits: int = DEFAULT_ID_BITS

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("id space needs at least one bit")
        # Non-field caches on a frozen dataclass; eq/hash ignore them.
        object.__setattr__(self, "size", 1 << self.bits)
        object.__setattr__(self, "mask", (1 << self.bits) - 1)

    def validate(self, ident: int) -> int:
        """Return ``ident`` if it is a valid id, else raise ``ValueError``."""
        if not 0 <= ident < self.size:
            raise ValueError(f"id {ident:#x} outside {self.bits}-bit space")
        return ident

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary integer onto the ring."""
        return value & self.mask

    def distance(self, a: int, b: int) -> int:
        """Clockwise distance from ``a`` to ``b`` (0 when equal)."""
        return (b - a) & self.mask

    def in_open(self, x: int, a: int, b: int) -> bool:
        """True iff ``x`` lies in the clockwise-open interval ``(a, b)``.

        When ``a == b`` the interval is the whole ring minus ``a`` —
        the standard Chord convention, which makes a single-node ring
        its own successor for every key.
        """
        if a == b:
            return x != a
        mask = self.mask
        return 0 < (x - a) & mask < (b - a) & mask

    def in_half_open(self, x: int, a: int, b: int) -> bool:
        """True iff ``x`` lies in ``(a, b]`` walking clockwise."""
        if a == b:
            return True
        mask = self.mask
        return 0 < (x - a) & mask <= (b - a) & mask

    def in_closed_open(self, x: int, a: int, b: int) -> bool:
        """True iff ``x`` lies in ``[a, b)`` walking clockwise."""
        if a == b:
            return True
        mask = self.mask
        return (x - a) & mask < (b - a) & mask

    def power_of_two_target(self, ident: int, k: int) -> int:
        """Chord's k-th finger target: ``ident + 2**k`` on the ring."""
        if not 0 <= k < self.bits:
            raise ValueError(f"finger index {k} outside [0, {self.bits})")
        return self.wrap(ident + (1 << k))


DEFAULT_SPACE = IdSpace(DEFAULT_ID_BITS)
