"""Identifier assignment for Chord and Verme nodes.

Chord assigns uniformly distributed ids, e.g. SHA-1 over the node's
network address (paper §4.2).  Verme constrains the middle bits to the
node's type (see :mod:`repro.ids.sections`).  Both styles are provided
here, along with the two-type vocabulary the paper uses throughout.
"""

from __future__ import annotations

import enum
import hashlib
import random

from .idspace import IdSpace


class NodeType(enum.IntEnum):
    """The paper's two platform types ("two distinct types without
    common vulnerabilities", §4.1).  The integer value is the type field
    stored in the middle bits of a Verme id."""

    A = 0
    B = 1

    @property
    def opposite(self) -> "NodeType":
        return NodeType.B if self is NodeType.A else NodeType.A


def sha1_id(space: IdSpace, data: bytes) -> int:
    """Hash arbitrary bytes onto the id ring (SHA-1, as in Chord/DHash).

    For spaces narrower than 160 bits the digest is truncated; for wider
    spaces it is extended by re-hashing, so the result is always uniform.
    """
    digest = b""
    counter = 0
    needed = (space.bits + 7) // 8
    while len(digest) < needed:
        digest += hashlib.sha1(data + counter.to_bytes(4, "big")).digest()
        counter += 1
    return int.from_bytes(digest[:needed], "big") & (space.size - 1)


def chord_id_for_address(space: IdSpace, host: str, port: int) -> int:
    """Chord's id assignment: SHA-1 of the network address and port."""
    return sha1_id(space, f"{host}:{port}".encode("utf-8"))


def random_chord_id(space: IdSpace, rng: random.Random) -> int:
    """A uniformly random Chord id (used by simulations)."""
    return rng.getrandbits(space.bits)


def key_for_value(space: IdSpace, value: bytes) -> int:
    """DHash's self-verifying key: the content hash of the value."""
    return sha1_id(space, value)
