"""VerDi: shared replication logic for the DHT over Verme (paper §5.2).

A data item with key *k* gets *n/2* replicas on the nodes of *k*'s
section and *n/2* on the same position of the subsequent section (which
is of the opposite type), so a worm outbreak in one type can neither
harvest both replica groups nor wipe out all copies.  The corner case
of a key falling past the last node of its section replicates toward
the predecessors (handled by the in-section group construction).
"""

from __future__ import annotations

from typing import List, Optional

from ..chord.state import NodeInfo
from ..chord.rpc import RpcContext
from ..chord.lookup import LookupPurpose
from ..verme.node import VermeNode
from .base import DhtConfig, DhtNode


class VerDiNode(DhtNode):
    """Common VerDi machinery; the three variants subclass this."""

    def __init__(self, node: VermeNode, config: DhtConfig) -> None:
        # Duck-typed so the columnar engine's row adapters qualify: any
        # node carrying a section layout (and Verme credentials) works.
        layout = getattr(node, "layout", None)
        if layout is None:
            raise TypeError("VerDi requires a Verme node (with a section layout)")
        self.layout = layout
        super().__init__(node, config)

    # -- replica placement ----------------------------------------------------------

    def other_position(self, key: int) -> Optional[int]:
        """Given that this node holds ``key``, the position of the other
        replica group (None when this node is in neither group —
        possible after heavy churn)."""
        my_section = self.layout.section_index(self.node.node_id)
        if self.layout.section_index(key) == my_section:
            return self.layout.opposite_type_position(key)
        alt = self.layout.opposite_type_position(key)
        if self.layout.section_index(alt) == my_section:
            return key
        return None

    def position_for_me(self, key: int) -> Optional[int]:
        """The replica position (key or key + section) inside this
        node's own section, if any."""
        my_section = self.layout.section_index(self.node.node_id)
        if self.layout.section_index(key) == my_section:
            return key
        alt = self.layout.opposite_type_position(key)
        if self.layout.section_index(alt) == my_section:
            return alt
        return None

    def _group_size(self) -> int:
        return self.config.replicas_per_section

    def _local_group_view(self, key: int) -> List[NodeInfo]:
        """The in-section replica group members this node can see.

        Mirrors the static construction: clockwise from the position's
        owner, then counter-clockwise (the "replicate toward the
        predecessors" corner rule), never leaving the section.
        """
        position = self.position_for_me(key)
        if position is None:
            return []
        node = self.node
        space = node.space
        my_section = self.layout.section_index(node.node_id)
        length = self.layout.section_length
        candidates = {
            e.node_id: e
            for e in list(node.successors.entries)
            + list(node.predecessors.entries)
            + [node.info]
            if self.layout.section_index(e.node_id) == my_section
        }
        after = sorted(
            (e for e in candidates.values() if space.distance(position, e.node_id) < length),
            key=lambda e: space.distance(position, e.node_id),
        )
        before = sorted(
            (e for e in candidates.values() if space.distance(position, e.node_id) >= length),
            key=lambda e: space.distance(e.node_id, position),
        )
        return (after + before)[: self._group_size()]

    # -- adjusted lookups -------------------------------------------------------------

    def adjusted_key(self, key: int) -> int:
        """The replica position of the *opposite* type from this node
        (§5.3.1: "the lookup operation adds the section length to the id
        being looked up if necessary")."""
        if self.layout.type_of(key) == int(self.node.node_type):
            return self.layout.opposite_type_position(key)
        return key

    # -- cross-section copy (used by Fast/Compromise puts) ------------------------------

    def _h_store(self, params: dict, ctx: RpcContext) -> None:
        """Like the base store, plus VerDi's synchronous cross-section
        copy: the responsible node only acknowledges a tagged put after
        the other replica group (of the opposite type) holds a copy, so
        the data is available to clients of both types (§5.3.1)."""
        if not params.get("cross_copy"):
            super()._h_store(params, ctx)
            return
        key, value = params["key"], params["value"]
        try:
            self.store.put(key, value)
        except ValueError as exc:
            ctx.fail(str(exc))
            return
        self.node.sim.schedule(0.0, self._replicate_key, key)
        other = self.other_position(key)
        if other is None:
            ctx.respond({})  # degenerate placement; background sync will heal
            return
        self.node.lookup(
            other,
            on_done=lambda res: self._cross_copy_entries(key, value, res, ctx),
            purpose=LookupPurpose.DHT,
            category=self.DATA_CATEGORY,
            op_tag=ctx.op_tag,
        )

    def _cross_copy_entries(self, key: int, value: bytes, res, ctx: RpcContext) -> None:
        if not res.success or not res.entries:
            ctx.fail(res.error or "cross-copy lookup failed")
            return
        target = res.entries[0]
        self.node.rpc.call(
            target.address,
            "dht_store",
            {"key": key, "value": value, "replicate": True},
            on_reply=lambda _res: ctx.respond({}),
            on_error=lambda err: ctx.fail(f"cross-copy store failed: {err}"),
            timeout_s=self._data_timeout_s(),
            size=self._store_request_bytes(value),
            category=self.DATA_CATEGORY,
            op_tag=ctx.op_tag,
        )
