"""DHT layers: DHash (baseline) and the three VerDi variants."""

from .base import DhtConfig, DhtNode, OpResult, next_op_tag
from .blocks import BlockStore, IntegrityError, block_key, verify_block
from .compromise import CompromiseVerDiNode
from .dhash import DHashNode
from .fast import FastVerDiNode
from .fragments import (
    Fragment,
    FragmentConfig,
    FragmentedDHashNode,
    ReassemblyError,
    fragment_value,
    reassemble,
)
from .hotkey import HotKeyTracker, LoadEstimator, ReplicaCache
from .secure import SecureVerDiNode
from .verdi import VerDiNode

__all__ = [
    "BlockStore",
    "CompromiseVerDiNode",
    "DHashNode",
    "DhtConfig",
    "DhtNode",
    "FastVerDiNode",
    "Fragment",
    "FragmentConfig",
    "FragmentedDHashNode",
    "HotKeyTracker",
    "LoadEstimator",
    "ReassemblyError",
    "ReplicaCache",
    "fragment_value",
    "reassemble",
    "IntegrityError",
    "OpResult",
    "SecureVerDiNode",
    "VerDiNode",
    "block_key",
    "next_op_tag",
    "verify_block",
]
