"""Shared machinery for the DHash and VerDi DHT layers.

A DHT layer object attaches to one overlay node: it owns the node's
block store, registers the data-plane RPC handlers (fetch/store/offer),
runs background replica maintenance, and exposes the client-side
``get``/``put`` operations.  Subclasses implement the paper's four
designs: DHash (baseline, §5.1), Fast-VerDi, Secure-VerDi and
Compromise-VerDi (§5.3).

Every client operation is tagged; the network's byte accounting
attributes each message carrying the tag to that operation, which is
how the Fig. 7 bandwidth numbers are produced (background replication
is deliberately untagged — the paper excludes it too).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..chord.lookup import LookupPurpose, LookupResult
from ..chord.node import ChordNode
from ..chord.rpc import MIN_RPC_BYTES, RpcContext
from ..chord.state import NodeInfo
from ..net.message import ID_BYTES
from ..obs import OBS
from ..sim import PeriodicTimer
from .blocks import BlockStore, block_key, verify_block
from .hotkey import HotKeyTracker, LoadEstimator, ReplicaCache


@dataclass(frozen=True)
class DhtConfig:
    """Knobs for the DHT layers.

    ``num_replicas`` is the paper's *n*: DHash places *n* replicas on
    the key's successors; VerDi splits them *n/2* + *n/2* across two
    opposite-type sections (§5.2).

    The serving-layer knobs are off by default (the paper's model):
    ``hot_cache`` turns on hot-key detection, replica-entry caching and
    value promotion (``hot_window_s`` / ``hot_threshold`` /
    ``cache_capacity`` / ``cache_ttl_s``); ``load_aware`` orders the
    replica list least-loaded-first on the read path
    (``load_ewma_alpha``).  See ``docs/serving.md``.
    """

    num_replicas: int = 6
    stabilize_interval_s: float = 60.0
    fetch_retries: int = 3
    hot_cache: bool = False
    hot_window_s: float = 10.0
    hot_threshold: int = 3
    cache_capacity: int = 128
    cache_ttl_s: float = 30.0
    load_aware: bool = False
    load_ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ValueError("need at least one replica")
        if self.hot_window_s <= 0 or self.cache_ttl_s <= 0:
            raise ValueError("hot window and cache ttl must be positive")
        if self.hot_threshold < 1 or self.cache_capacity < 1:
            raise ValueError("hot threshold and cache capacity must be >= 1")
        if not 0.0 < self.load_ewma_alpha <= 1.0:
            raise ValueError("load ewma alpha must be in (0, 1]")

    @property
    def replicas_per_section(self) -> int:
        return max(1, self.num_replicas // 2)


@dataclass(slots=True)
class OpResult:
    """Outcome of one client get/put as seen by the caller."""

    ok: bool
    op: str
    key: int
    op_tag: int
    value: Optional[bytes] = None
    latency_s: float = 0.0
    error: Optional[str] = None


OpCallback = Callable[[OpResult], None]

_op_tags = itertools.count(1)


def next_op_tag() -> int:
    """Globally unique tag attributing messages to one DHT operation."""
    return next(_op_tags)


@dataclass(slots=True)
class _Op:
    op: str
    key: int
    op_tag: int
    on_done: OpCallback
    started_at: float
    value: Optional[bytes] = None
    targets: List[NodeInfo] = field(default_factory=list)
    attempts: int = 0
    #: targets came from the replica cache (hints): on exhaustion fall
    #: back to the full lookup path instead of failing the op.
    from_cache: bool = False


class DhtNode:
    """Base class: block store, data-plane handlers, maintenance."""

    #: category used for client-visible data traffic
    DATA_CATEGORY = "data"
    #: category for background replica maintenance (untagged)
    REPLICATION_CATEGORY = "replication"
    #: variants whose gets are piggybacked on the lookup (Secure /
    #: Compromise-VerDi) never see replica entries, so the entry-cache
    #: fast path and value promotion are structurally incompatible.
    ENTRY_CACHE_OK = True

    def __init__(self, node: ChordNode, config: DhtConfig) -> None:
        self.node = node
        self.config = config
        self.store = BlockStore(node.space)
        self.space = node.space
        self._maintenance = PeriodicTimer(
            node.sim,
            config.stabilize_interval_s,
            self._data_stabilize,
            jitter_rng=getattr(node, "_jitter_rng", None),
        )
        self.hot_tracker: Optional[HotKeyTracker] = None
        self.replica_cache: Optional[ReplicaCache] = None
        self.load: Optional[LoadEstimator] = None
        if config.hot_cache:
            self.hot_tracker = HotKeyTracker(
                config.hot_window_s, config.hot_threshold
            )
            self.replica_cache = ReplicaCache(
                config.cache_capacity, config.cache_ttl_s
            )
            # Failure-detector purges invalidate cached address hints.
            hooks = getattr(node, "_down_hooks", None)
            if hooks is not None:
                hooks.append(self._peer_down)
        if config.load_aware:
            self.load = LoadEstimator(config.load_ewma_alpha)
        node.rpc.register("dht_fetch", self._h_fetch)
        node.rpc.register("dht_store", self._h_store)
        node.rpc.register("dht_offer", self._h_offer)
        self._install_hooks()

    def _install_hooks(self) -> None:
        """Subclasses wire node-level hooks (lookup verification etc.)."""

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._maintenance.start()

    def stop(self) -> None:
        self._maintenance.stop()

    # -- public client API ------------------------------------------------------

    def put(self, value: bytes, on_done: OpCallback) -> int:
        """Store ``value``; the key (its content hash) is returned
        immediately and ``on_done`` fires when the operation completes."""
        key = block_key(self.space, value)
        op = _Op("put", key, next_op_tag(), on_done, self.node.sim.now, value=value)
        self._start_put(op)
        return key

    def get(self, key: int, on_done: OpCallback) -> int:
        """Retrieve the value stored under ``key``.

        With ``hot_cache`` on, hot keys take two fast paths before the
        overlay lookup: a locally promoted copy (content-addressed, so
        never stale) is returned immediately, and cached replica entries
        skip straight to the fetch phase (the hints may be stale — the
        fallback in :meth:`_fetch_from` restores correctness).
        """
        op = _Op("get", key, next_op_tag(), on_done, self.node.sim.now)
        tracker = self.hot_tracker
        if tracker is not None and self.ENTRY_CACHE_OK:
            now = self.node.sim.now
            tracker.note(key, now)
            value = self.store.get(key)
            if value is not None:
                metrics = OBS.metrics
                if metrics is not None:
                    metrics.counter("dht.cache.local_hit").inc()
                self._finish(op, True, value=value)
                return op.op_tag
            cached = self.replica_cache.get(key, now)
            if cached is not None:
                metrics = OBS.metrics
                if metrics is not None:
                    metrics.counter("dht.cache.entry_hit").inc()
                op.from_cache = True
                op.targets = self._order_targets(cached)
                self._fetch_from(op, self._fetch_params_extra())
                return op.op_tag
        self._start_get(op)
        return op.op_tag

    def _start_put(self, op: _Op) -> None:
        raise NotImplementedError

    def _start_get(self, op: _Op) -> None:
        raise NotImplementedError

    def _finish(self, op: _Op, ok: bool, value: Optional[bytes] = None,
                error: Optional[str] = None) -> None:
        latency = self.node.sim.now - op.started_at
        result = OpResult(
            ok=ok,
            op=op.op,
            key=op.key,
            op_tag=op.op_tag,
            value=value,
            latency_s=latency,
            error=error,
        )
        metrics = OBS.metrics
        if metrics is not None:
            metrics.counter(f"dht.{op.op}.{'ok' if ok else 'fail'}").inc()
            metrics.histogram(f"dht.{op.op}.latency_s").observe(latency)
        trace = OBS.trace
        if trace is not None:
            trace.complete(
                "dht." + op.op,
                op.started_at,
                latency,
                lane="dht",
                args={"tag": op.op_tag, "ok": ok, "error": error},
            )
        self.node.sim.call_after(0.0, op.on_done, result)

    # -- wire sizes ----------------------------------------------------------------

    def _data_timeout_s(self) -> float:
        """Timeout for data-plane RPCs: bulk transfers over slow access
        uplinks take far longer than control messages."""
        return self.node.config.lookup_timeout_s


    def _fetch_request_bytes(self) -> int:
        return MIN_RPC_BYTES + ID_BYTES

    def _store_request_bytes(self, value: bytes) -> int:
        return MIN_RPC_BYTES + ID_BYTES + len(value)

    def _value_reply_bytes(self, value: bytes) -> int:
        return MIN_RPC_BYTES + len(value)

    # -- data-plane handlers ----------------------------------------------------------

    def _authorize_fetch(self, params: dict) -> Optional[str]:
        """Reject a fetch (return an error string) or allow (None)."""
        return None

    def _package_value(self, value: bytes, params: dict) -> object:
        return value

    def _h_fetch(self, params: dict, ctx: RpcContext) -> None:
        err = self._authorize_fetch(params)
        if err is not None:
            ctx.fail(err)
            return
        value = self.store.get(params["key"])
        if value is None:
            ctx.respond({"found": False})
            return
        ctx.respond(
            {"found": True, "value": self._package_value(value, params)},
            size=self._value_reply_bytes(value),
        )

    def _h_store(self, params: dict, ctx: RpcContext) -> None:
        key, value = params["key"], params["value"]
        try:
            self.store.put(key, value)
        except ValueError as exc:
            ctx.fail(str(exc))
            return
        if params.get("replicate", True):
            self.node.sim.call_after(0.0, self._replicate_key, key)
        ctx.respond({})

    def _h_offer(self, params: dict, ctx: RpcContext) -> None:
        keys = params["keys"]
        want = self.store.missing(keys)
        ctx.respond({"want": want}, size=MIN_RPC_BYTES + len(want) * ID_BYTES)

    # -- replica maintenance -------------------------------------------------------------

    def _local_group_view(self, key: int) -> List[NodeInfo]:
        """This node's best local guess at the replica group of ``key``
        (empty when the node cannot tell it is a member)."""
        raise NotImplementedError

    def _replicate_key(self, key: int) -> None:
        """Push a freshly stored key to the rest of its replica group."""
        value = self.store.get(key)
        if value is None or not self.node.alive:
            return
        for info in self._local_group_view(key):
            if info.node_id == self.node.node_id:
                continue
            self.node.rpc.call(
                info.address,
                "dht_store",
                {"key": key, "value": value, "replicate": False},
                timeout_s=self._data_timeout_s(),
                size=self._store_request_bytes(value),
                category=self.REPLICATION_CATEGORY,
            )

    def _data_stabilize(self) -> None:
        """Periodic sync: offer each held key to the group members the
        node currently believes should hold it; push what they lack."""
        if not self.node.alive:
            return
        by_target: Dict[NodeInfo, List[int]] = {}
        for key in self.store.keys():
            for info in self._local_group_view(key):
                if info.node_id != self.node.node_id:
                    by_target.setdefault(info, []).append(key)
        for info, keys in by_target.items():
            self.node.rpc.call(
                info.address,
                "dht_offer",
                {"keys": keys},
                on_reply=lambda res, i=info: self._push_wanted(i, res.get("want", [])),
                size=MIN_RPC_BYTES + len(keys) * ID_BYTES,
                category=self.REPLICATION_CATEGORY,
            )

    def _push_wanted(self, info: NodeInfo, keys: List[int]) -> None:
        if not self.node.alive:
            return
        for key in keys:
            value = self.store.get(key)
            if value is None:
                continue
            self.node.rpc.call(
                info.address,
                "dht_store",
                {"key": key, "value": value, "replicate": False},
                timeout_s=self._data_timeout_s(),
                size=self._store_request_bytes(value),
                category=self.REPLICATION_CATEGORY,
            )

    # -- client-side helpers ------------------------------------------------------------

    def _fetch_params_extra(self) -> Optional[dict]:
        """Extra dht_fetch params for cache-hit fetches (Fast-VerDi's
        certificate); None for the plain DHash request."""
        return None

    def _order_targets(self, targets: List[NodeInfo]) -> List[NodeInfo]:
        """Load-aware replica selection: least-loaded-first when on."""
        if self.load is None:
            return list(targets)
        return self.load.order(targets)

    def _peer_down(self, info: NodeInfo) -> None:
        """Failure-detector purge: dead addresses leave the cache."""
        self.replica_cache.invalidate_address(info.address)

    def _fetch_from(self, op: _Op, params_extra: Optional[dict] = None) -> None:
        """Try the next target in ``op.targets`` until one returns the
        value (verified against the key) or targets are exhausted.

        Cache-hint exhaustion is not a failure: the op falls back to the
        full lookup path (and the useless cache entry is dropped)."""
        if not op.targets:
            if op.from_cache:
                op.from_cache = False
                self.replica_cache.invalidate(op.key)
                metrics = OBS.metrics
                if metrics is not None:
                    metrics.counter("dht.cache.fallback").inc()
                self._start_get(op)
                return
            self._finish(op, False, error="no replica answered")
            return
        target = op.targets.pop(0)
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "dht.fetch-phase",
                self.node.sim.now,
                lane="dht",
                args={
                    "tag": op.op_tag,
                    "dst": target.address.host_slot,
                    "attempt": op.attempts,
                },
            )
        params = {"key": op.key}
        if params_extra:
            params.update(params_extra)
        load = self.load
        started = self.node.sim.now

        def _on_reply(res: dict) -> None:
            if load is not None:
                load.note_done(target.address, self.node.sim.now - started)
            self._fetch_reply(op, res, target, params_extra)

        def _on_error(err: str) -> None:
            if load is not None:
                load.note_done(
                    target.address, self.node.sim.now - started, failed=True
                )
            if op.from_cache:
                self.replica_cache.discard_address(op.key, target.address)
            self._fetch_from(op, params_extra)

        if load is not None:
            load.note_start(target.address)
        self.node.rpc.call(
            target.address,
            "dht_fetch",
            params,
            on_reply=_on_reply,
            on_error=_on_error,
            timeout_s=self._data_timeout_s(),
            size=self._fetch_request_bytes(),
            category=self.DATA_CATEGORY,
            op_tag=op.op_tag,
        )

    def _unpackage_value(self, payload: object) -> bytes:
        return payload  # type: ignore[return-value]

    def _fetch_reply(
        self,
        op: _Op,
        res: dict,
        target: Optional[NodeInfo] = None,
        params_extra: Optional[dict] = None,
    ) -> None:
        if not res.get("found"):
            if op.from_cache:
                # A stale hint (replica no longer holds the key): drop
                # the address and keep the cert/params on the retry.
                if target is not None:
                    self.replica_cache.discard_address(op.key, target.address)
                self._fetch_from(op, params_extra)
                return
            self._fetch_from(op)
            return
        try:
            value = self._unpackage_value(res["value"])
            verify_block(self.space, op.key, value)
        except Exception as exc:
            if op.from_cache:
                if target is not None:
                    self.replica_cache.discard_address(op.key, target.address)
                self._fetch_from(op, params_extra)
                return
            self._finish(op, False, error=str(exc))
            return
        tracker = self.hot_tracker
        if (
            tracker is not None
            and self.ENTRY_CACHE_OK
            and op.op == "get"
            and tracker.is_hot(op.key, self.node.sim.now)
        ):
            self._promote(op.key, value)
        self._finish(op, True, value=value)

    def _promote(self, key: int, value: bytes) -> None:
        """Hot-key replica promotion: keep a verified local copy.

        The copy serves this node's future reads (and anyone's
        ``dht_fetch``) without touching the replica group.  Safe by
        construction: the value is content-addressed and was verified
        above, and a non-member never replicates it outward because
        ``_local_group_view`` returns [] for keys it does not own."""
        if self.store.get(key) is not None:
            return
        try:
            self.store.put(key, value)
        except ValueError:
            return
        metrics = OBS.metrics
        if metrics is not None:
            metrics.counter("dht.cache.promotions").inc()

    def _note_entries(self, key: int, entries: List[NodeInfo]) -> None:
        """Lookup finished for ``key``: cache its replica entries when
        the key is hot (subclasses call this from ``_get_entries``)."""
        tracker = self.hot_tracker
        if (
            tracker is not None
            and self.ENTRY_CACHE_OK
            and entries
            and tracker.is_hot(key, self.node.sim.now)
        ):
            self.replica_cache.put(key, entries, self.node.sim.now)

    def _lookup_then(
        self,
        op: _Op,
        key: int,
        on_entries: Callable[[_Op, LookupResult], None],
        request_meta: Optional[dict] = None,
        extra_request_bytes: int = 0,
    ) -> None:
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "dht.lookup-phase",
                self.node.sim.now,
                lane="dht",
                args={"tag": op.op_tag, "op": op.op},
            )
        self.node.lookup(
            key,
            on_done=lambda res: on_entries(op, res),
            purpose=LookupPurpose.DHT,
            category=self.DATA_CATEGORY,
            op_tag=op.op_tag,
            request_meta=request_meta,
            extra_request_bytes=extra_request_bytes,
        )
