"""Shared machinery for the DHash and VerDi DHT layers.

A DHT layer object attaches to one overlay node: it owns the node's
block store, registers the data-plane RPC handlers (fetch/store/offer),
runs background replica maintenance, and exposes the client-side
``get``/``put`` operations.  Subclasses implement the paper's four
designs: DHash (baseline, §5.1), Fast-VerDi, Secure-VerDi and
Compromise-VerDi (§5.3).

Every client operation is tagged; the network's byte accounting
attributes each message carrying the tag to that operation, which is
how the Fig. 7 bandwidth numbers are produced (background replication
is deliberately untagged — the paper excludes it too).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..chord.lookup import LookupPurpose, LookupResult
from ..chord.node import ChordNode
from ..chord.rpc import MIN_RPC_BYTES, RpcContext
from ..chord.state import NodeInfo
from ..net.message import ID_BYTES
from ..obs import OBS
from ..sim import PeriodicTimer
from .blocks import BlockStore, block_key, verify_block


@dataclass(frozen=True)
class DhtConfig:
    """Knobs for the DHT layers.

    ``num_replicas`` is the paper's *n*: DHash places *n* replicas on
    the key's successors; VerDi splits them *n/2* + *n/2* across two
    opposite-type sections (§5.2).
    """

    num_replicas: int = 6
    stabilize_interval_s: float = 60.0
    fetch_retries: int = 3

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ValueError("need at least one replica")

    @property
    def replicas_per_section(self) -> int:
        return max(1, self.num_replicas // 2)


@dataclass(slots=True)
class OpResult:
    """Outcome of one client get/put as seen by the caller."""

    ok: bool
    op: str
    key: int
    op_tag: int
    value: Optional[bytes] = None
    latency_s: float = 0.0
    error: Optional[str] = None


OpCallback = Callable[[OpResult], None]

_op_tags = itertools.count(1)


def next_op_tag() -> int:
    """Globally unique tag attributing messages to one DHT operation."""
    return next(_op_tags)


@dataclass(slots=True)
class _Op:
    op: str
    key: int
    op_tag: int
    on_done: OpCallback
    started_at: float
    value: Optional[bytes] = None
    targets: List[NodeInfo] = field(default_factory=list)
    attempts: int = 0


class DhtNode:
    """Base class: block store, data-plane handlers, maintenance."""

    #: category used for client-visible data traffic
    DATA_CATEGORY = "data"
    #: category for background replica maintenance (untagged)
    REPLICATION_CATEGORY = "replication"

    def __init__(self, node: ChordNode, config: DhtConfig) -> None:
        self.node = node
        self.config = config
        self.store = BlockStore(node.space)
        self.space = node.space
        self._maintenance = PeriodicTimer(
            node.sim,
            config.stabilize_interval_s,
            self._data_stabilize,
            jitter_rng=getattr(node, "_jitter_rng", None),
        )
        node.rpc.register("dht_fetch", self._h_fetch)
        node.rpc.register("dht_store", self._h_store)
        node.rpc.register("dht_offer", self._h_offer)
        self._install_hooks()

    def _install_hooks(self) -> None:
        """Subclasses wire node-level hooks (lookup verification etc.)."""

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._maintenance.start()

    def stop(self) -> None:
        self._maintenance.stop()

    # -- public client API ------------------------------------------------------

    def put(self, value: bytes, on_done: OpCallback) -> int:
        """Store ``value``; the key (its content hash) is returned
        immediately and ``on_done`` fires when the operation completes."""
        key = block_key(self.space, value)
        op = _Op("put", key, next_op_tag(), on_done, self.node.sim.now, value=value)
        self._start_put(op)
        return key

    def get(self, key: int, on_done: OpCallback) -> int:
        """Retrieve the value stored under ``key``."""
        op = _Op("get", key, next_op_tag(), on_done, self.node.sim.now)
        self._start_get(op)
        return op.op_tag

    def _start_put(self, op: _Op) -> None:
        raise NotImplementedError

    def _start_get(self, op: _Op) -> None:
        raise NotImplementedError

    def _finish(self, op: _Op, ok: bool, value: Optional[bytes] = None,
                error: Optional[str] = None) -> None:
        latency = self.node.sim.now - op.started_at
        result = OpResult(
            ok=ok,
            op=op.op,
            key=op.key,
            op_tag=op.op_tag,
            value=value,
            latency_s=latency,
            error=error,
        )
        metrics = OBS.metrics
        if metrics is not None:
            metrics.counter(f"dht.{op.op}.{'ok' if ok else 'fail'}").inc()
            metrics.histogram(f"dht.{op.op}.latency_s").observe(latency)
        trace = OBS.trace
        if trace is not None:
            trace.complete(
                "dht." + op.op,
                op.started_at,
                latency,
                lane="dht",
                args={"tag": op.op_tag, "ok": ok, "error": error},
            )
        self.node.sim.call_after(0.0, op.on_done, result)

    # -- wire sizes ----------------------------------------------------------------

    def _data_timeout_s(self) -> float:
        """Timeout for data-plane RPCs: bulk transfers over slow access
        uplinks take far longer than control messages."""
        return self.node.config.lookup_timeout_s


    def _fetch_request_bytes(self) -> int:
        return MIN_RPC_BYTES + ID_BYTES

    def _store_request_bytes(self, value: bytes) -> int:
        return MIN_RPC_BYTES + ID_BYTES + len(value)

    def _value_reply_bytes(self, value: bytes) -> int:
        return MIN_RPC_BYTES + len(value)

    # -- data-plane handlers ----------------------------------------------------------

    def _authorize_fetch(self, params: dict) -> Optional[str]:
        """Reject a fetch (return an error string) or allow (None)."""
        return None

    def _package_value(self, value: bytes, params: dict) -> object:
        return value

    def _h_fetch(self, params: dict, ctx: RpcContext) -> None:
        err = self._authorize_fetch(params)
        if err is not None:
            ctx.fail(err)
            return
        value = self.store.get(params["key"])
        if value is None:
            ctx.respond({"found": False})
            return
        ctx.respond(
            {"found": True, "value": self._package_value(value, params)},
            size=self._value_reply_bytes(value),
        )

    def _h_store(self, params: dict, ctx: RpcContext) -> None:
        key, value = params["key"], params["value"]
        try:
            self.store.put(key, value)
        except ValueError as exc:
            ctx.fail(str(exc))
            return
        if params.get("replicate", True):
            self.node.sim.call_after(0.0, self._replicate_key, key)
        ctx.respond({})

    def _h_offer(self, params: dict, ctx: RpcContext) -> None:
        keys = params["keys"]
        want = self.store.missing(keys)
        ctx.respond({"want": want}, size=MIN_RPC_BYTES + len(want) * ID_BYTES)

    # -- replica maintenance -------------------------------------------------------------

    def _local_group_view(self, key: int) -> List[NodeInfo]:
        """This node's best local guess at the replica group of ``key``
        (empty when the node cannot tell it is a member)."""
        raise NotImplementedError

    def _replicate_key(self, key: int) -> None:
        """Push a freshly stored key to the rest of its replica group."""
        value = self.store.get(key)
        if value is None or not self.node.alive:
            return
        for info in self._local_group_view(key):
            if info.node_id == self.node.node_id:
                continue
            self.node.rpc.call(
                info.address,
                "dht_store",
                {"key": key, "value": value, "replicate": False},
                timeout_s=self._data_timeout_s(),
                size=self._store_request_bytes(value),
                category=self.REPLICATION_CATEGORY,
            )

    def _data_stabilize(self) -> None:
        """Periodic sync: offer each held key to the group members the
        node currently believes should hold it; push what they lack."""
        if not self.node.alive:
            return
        by_target: Dict[NodeInfo, List[int]] = {}
        for key in self.store.keys():
            for info in self._local_group_view(key):
                if info.node_id != self.node.node_id:
                    by_target.setdefault(info, []).append(key)
        for info, keys in by_target.items():
            self.node.rpc.call(
                info.address,
                "dht_offer",
                {"keys": keys},
                on_reply=lambda res, i=info: self._push_wanted(i, res.get("want", [])),
                size=MIN_RPC_BYTES + len(keys) * ID_BYTES,
                category=self.REPLICATION_CATEGORY,
            )

    def _push_wanted(self, info: NodeInfo, keys: List[int]) -> None:
        if not self.node.alive:
            return
        for key in keys:
            value = self.store.get(key)
            if value is None:
                continue
            self.node.rpc.call(
                info.address,
                "dht_store",
                {"key": key, "value": value, "replicate": False},
                timeout_s=self._data_timeout_s(),
                size=self._store_request_bytes(value),
                category=self.REPLICATION_CATEGORY,
            )

    # -- client-side helpers ------------------------------------------------------------

    def _fetch_from(self, op: _Op, params_extra: Optional[dict] = None) -> None:
        """Try the next target in ``op.targets`` until one returns the
        value (verified against the key) or targets are exhausted."""
        if not op.targets:
            self._finish(op, False, error="no replica answered")
            return
        target = op.targets.pop(0)
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "dht.fetch-phase",
                self.node.sim.now,
                lane="dht",
                args={
                    "tag": op.op_tag,
                    "dst": target.address.host_slot,
                    "attempt": op.attempts,
                },
            )
        params = {"key": op.key}
        if params_extra:
            params.update(params_extra)
        self.node.rpc.call(
            target.address,
            "dht_fetch",
            params,
            on_reply=lambda res: self._fetch_reply(op, res),
            on_error=lambda err: self._fetch_from(op, params_extra),
            timeout_s=self._data_timeout_s(),
            size=self._fetch_request_bytes(),
            category=self.DATA_CATEGORY,
            op_tag=op.op_tag,
        )

    def _unpackage_value(self, payload: object) -> bytes:
        return payload  # type: ignore[return-value]

    def _fetch_reply(self, op: _Op, res: dict) -> None:
        if not res.get("found"):
            self._fetch_from(op)
            return
        try:
            value = self._unpackage_value(res["value"])
            verify_block(self.space, op.key, value)
        except Exception as exc:
            self._finish(op, False, error=str(exc))
            return
        self._finish(op, True, value=value)

    def _lookup_then(
        self,
        op: _Op,
        key: int,
        on_entries: Callable[[_Op, LookupResult], None],
        request_meta: Optional[dict] = None,
        extra_request_bytes: int = 0,
    ) -> None:
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "dht.lookup-phase",
                self.node.sim.now,
                lane="dht",
                args={"tag": op.op_tag, "op": op.op},
            )
        self.node.lookup(
            key,
            on_done=lambda res: on_entries(op, res),
            purpose=LookupPurpose.DHT,
            category=self.DATA_CATEGORY,
            op_tag=op.op_tag,
            request_meta=request_meta,
            extra_request_bytes=extra_request_bytes,
        )
