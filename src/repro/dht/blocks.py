"""Self-verifying data blocks and per-node block storage.

DHash blocks are content-addressed: ``key = SHA-1(value)`` (paper
§5.1), so any replica's answer can be verified by the client without
trusting the replica.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..ids.assignment import key_for_value
from ..ids.idspace import IdSpace


class IntegrityError(ValueError):
    """A fetched value does not hash to the requested key."""


def block_key(space: IdSpace, value: bytes) -> int:
    """The self-verifying key of ``value``."""
    return key_for_value(space, value)


def verify_block(space: IdSpace, key: int, value: bytes) -> None:
    """Raise :class:`IntegrityError` unless ``value`` hashes to ``key``."""
    if block_key(space, value) != key:
        raise IntegrityError(f"value does not hash to key {key:#x}")


class BlockStore:
    """One node's local block storage."""

    def __init__(self, space: IdSpace) -> None:
        self.space = space
        self._blocks: Dict[int, bytes] = {}

    def put(self, key: int, value: bytes, verify: bool = True) -> None:
        if verify:
            verify_block(self.space, key, value)
        self._blocks[key] = value

    def get(self, key: int) -> Optional[bytes]:
        return self._blocks.get(key)

    def delete(self, key: int) -> None:
        self._blocks.pop(key, None)

    def __contains__(self, key: int) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def keys(self) -> List[int]:
        return list(self._blocks.keys())

    def missing(self, keys: Iterable[int]) -> List[int]:
        """Of ``keys``, the ones this store does not hold."""
        return [k for k in keys if k not in self._blocks]

    @property
    def total_bytes(self) -> int:
        return sum(len(v) for v in self._blocks.values())
