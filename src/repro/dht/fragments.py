"""Erasure-coded fragments: the DHash optimization the paper skipped.

§5.1: "a more recent paper has proposed the use of erasure coded
fragments instead of full replicas of the data [Dabek et al., NSDI'04]
but we will not consider that optimization in this paper."  This module
supplies it as an extension, so the storage/bandwidth trade-off can be
measured against full replication.

The coding itself is simulated *structurally* (like the certificates):
an IDA-style (k, n) code where any ``required`` distinct fragments
reconstruct the value and each fragment's wire size is
``ceil(len/required) + header``.  Reassembly enforces the k-of-n rule;
the reconstructed value is then verified against its content-hash key
exactly as whole blocks are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..chord.lookup import LookupResult
from ..chord.rpc import MIN_RPC_BYTES, RpcContext
from ..chord.state import NodeInfo
from ..net.message import ID_BYTES
from .base import DhtConfig, _Op
from .blocks import verify_block
from .dhash import DHashNode

FRAGMENT_HEADER_BYTES = 16


@dataclass(frozen=True)
class FragmentConfig:
    """(k, n) code parameters; DHash's classic choice was 7-of-14."""

    total: int = 6
    required: int = 3

    def __post_init__(self) -> None:
        if not 1 <= self.required <= self.total:
            raise ValueError("need 1 <= required <= total")

    def fragment_bytes(self, value_len: int) -> int:
        return math.ceil(value_len / self.required) + FRAGMENT_HEADER_BYTES


@dataclass(frozen=True)
class Fragment:
    """One coded fragment of a block.

    Carries the whole value only as a simulation convenience; its
    *wire and storage size* is ``size`` and reconstruction refuses to
    work with fewer than ``config.required`` distinct indices.
    """

    key: int
    index: int
    total: int
    required: int
    size: int
    _value: bytes

    def __repr__(self) -> str:
        return f"Fragment(key={self.key:#x}, {self.index}/{self.total})"


class ReassemblyError(ValueError):
    """Too few distinct fragments to reconstruct the value."""


def fragment_value(key: int, value: bytes, config: FragmentConfig) -> List[Fragment]:
    size = config.fragment_bytes(len(value))
    return [
        Fragment(key, i, config.total, config.required, size, value)
        for i in range(config.total)
    ]


def reassemble(fragments: Sequence[Fragment]) -> bytes:
    if not fragments:
        raise ReassemblyError("no fragments")
    required = fragments[0].required
    key = fragments[0].key
    indices: Set[int] = set()
    for frag in fragments:
        if frag.key != key:
            raise ReassemblyError("fragments of different blocks")
        indices.add(frag.index)
    if len(indices) < required:
        raise ReassemblyError(
            f"have {len(indices)} distinct fragments, need {required}"
        )
    return fragments[0]._value


class FragmentedDHashNode(DHashNode):
    """DHash storing (k, n)-coded fragments instead of full replicas.

    ``put`` spreads one fragment per responsible node and acknowledges
    when all are stored; ``get`` fetches ``required`` fragments *in
    parallel* from distinct replicas (the NSDI'04 latency trick) and
    reconstructs.  Whole-block handlers remain available, so a mixed
    deployment keeps working.
    """

    def __init__(self, node, config: DhtConfig,
                 fragment_config: Optional[FragmentConfig] = None) -> None:
        self.fragment_config = fragment_config or FragmentConfig()
        if self.fragment_config.total > config.num_replicas:
            raise ValueError("cannot place more fragments than replicas")
        super().__init__(node, config)
        self.fragment_store: Dict[Tuple[int, int], Fragment] = {}
        node.rpc.register("dht_store_fragment", self._h_store_fragment)
        node.rpc.register("dht_fetch_fragment", self._h_fetch_fragment)

    # -- server side -----------------------------------------------------------

    def _h_store_fragment(self, params: dict, ctx: RpcContext) -> None:
        frag: Fragment = params["fragment"]
        self.fragment_store[(frag.key, frag.index)] = frag
        ctx.respond({})

    def _h_fetch_fragment(self, params: dict, ctx: RpcContext) -> None:
        key = params["key"]
        held = [f for (k, _i), f in self.fragment_store.items() if k == key]
        if not held:
            ctx.respond({"found": False})
            return
        frag = held[0]
        ctx.respond(
            {"found": True, "fragment": frag},
            size=MIN_RPC_BYTES + frag.size,
        )

    # -- client put ----------------------------------------------------------------

    def _put_entries(self, op: _Op, res: LookupResult) -> None:
        if not res.success or len(res.entries) < self.fragment_config.total:
            self._finish(op, False, error=res.error or "too few replicas for fragments")
            return
        assert op.value is not None
        fragments = fragment_value(op.key, op.value, self.fragment_config)
        state = {"pending": len(fragments), "failed": 0}
        for fragment, target in zip(fragments, res.entries):
            self.node.rpc.call(
                target.address,
                "dht_store_fragment",
                {"fragment": fragment},
                on_reply=lambda _r: self._fragment_stored(op, state, ok=True),
                on_error=lambda _e: self._fragment_stored(op, state, ok=False),
                timeout_s=self._data_timeout_s(),
                size=MIN_RPC_BYTES + ID_BYTES + fragment.size,
                category=self.DATA_CATEGORY,
                op_tag=op.op_tag,
            )

    def _fragment_stored(self, op: _Op, state: dict, ok: bool) -> None:
        state["pending"] -= 1
        if not ok:
            state["failed"] += 1
        if state["pending"] == 0:
            stored = self.fragment_config.total - state["failed"]
            if stored >= self.fragment_config.required:
                self._finish(op, True, value=op.value)
            else:
                self._finish(
                    op, False,
                    error=f"only {stored} fragments stored, need "
                          f"{self.fragment_config.required}",
                )

    # -- client get ----------------------------------------------------------------

    def _get_entries(self, op: _Op, res: LookupResult) -> None:
        if not res.success or not res.entries:
            self._finish(op, False, error=res.error or "lookup failed")
            return
        cfg = self.fragment_config
        state: dict = {"got": [], "outstanding": 0, "finished": False}
        remaining = list(res.entries)
        # Parallel fan-out to `required` replicas; stragglers take over
        # on failure or miss.
        for _ in range(min(cfg.required, len(remaining))):
            self._fetch_fragment_from(op, state, remaining)

    def _fetch_fragment_from(self, op: _Op, state: dict, remaining: List[NodeInfo]) -> None:
        if state["finished"]:
            return
        if not remaining:
            if state["outstanding"] == 0:
                state["finished"] = True
                self._finish(op, False, error="not enough fragments reachable")
            return
        target = remaining.pop(0)
        state["outstanding"] += 1
        self.node.rpc.call(
            target.address,
            "dht_fetch_fragment",
            {"key": op.key},
            on_reply=lambda r: self._fragment_reply(op, state, remaining, r),
            on_error=lambda _e: self._fragment_failed(op, state, remaining),
            timeout_s=self._data_timeout_s(),
            size=MIN_RPC_BYTES + ID_BYTES,
            category=self.DATA_CATEGORY,
            op_tag=op.op_tag,
        )

    def _fragment_failed(self, op: _Op, state: dict, remaining: List[NodeInfo]) -> None:
        state["outstanding"] -= 1
        self._fetch_fragment_from(op, state, remaining)

    def _fragment_reply(self, op: _Op, state: dict, remaining: List[NodeInfo], res: dict) -> None:
        state["outstanding"] -= 1
        if state["finished"]:
            return
        if res.get("found"):
            state["got"].append(res["fragment"])
        if len({f.index for f in state["got"]}) >= self.fragment_config.required:
            state["finished"] = True
            try:
                value = reassemble(state["got"])
                verify_block(self.space, op.key, value)
            except ValueError as exc:
                self._finish(op, False, error=str(exc))
                return
            self._finish(op, True, value=value)
            return
        if not res.get("found"):
            self._fetch_fragment_from(op, state, remaining)

    # -- maintenance: fragments are repaired by re-put (kept simple) -------------------

    def _local_group_view(self, key: int):
        # Background whole-block sync does not apply to fragments; the
        # classic system re-codes on repair, which we leave to re-puts.
        return []
