"""Fast-VerDi (paper §5.3.1): lookup, then direct download/upload.

The client looks up the replica group of the *opposite* type (the
lookup key is displaced by one section length when needed), the
responsible node verifies the initiator's certificate is of the
opposite type before answering, and the reply — like the fetched value
itself — is sealed with the initiator's public key.  Puts additionally
pay a synchronous copy to the other-type replica group before the
acknowledgement (so the data becomes reachable for clients of both
types).  Fastest of the three variants, but vulnerable to the
impersonation attack the worm experiments quantify.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..chord.lookup import LookupResult
from ..chord.rpc import MIN_RPC_BYTES
from ..crypto.certificates import NodeCertificate
from ..crypto.sealed import seal
from ..ids.assignment import NodeType
from ..net.message import CERT_BYTES, ID_BYTES, SEALED_OVERHEAD_BYTES
from .base import OpResult, _Op
from .verdi import VerDiNode


class FastVerDiNode(VerDiNode):
    """Fast-VerDi attached to one Verme node."""

    def _install_hooks(self) -> None:
        self.node.verify_dht_lookup = self._verify_dht_lookup

    # -- lookup verification (responsible-node side) ---------------------------

    def _verify_dht_lookup(
        self, cert: NodeCertificate, key: int, params: dict
    ) -> Optional[str]:
        """The replier checks that the initiator is of the opposite type
        of the addresses being returned, "dropping the message
        otherwise" (§5.3.1)."""
        if NodeType(self.layout.type_of(key)) is cert.claimed_type:
            return "initiator type matches replica type"
        return None

    # -- fetch authorization and sealing ------------------------------------------

    def _authorize_fetch(self, params: dict) -> Optional[str]:
        cert = params.get("cert")
        if cert is None:
            return "missing certificate"
        node = self.node
        if not node.ca.verify(cert):
            return "invalid certificate"
        if cert.claimed_type is node.node_type:
            return "same-type fetch rejected"
        return None

    def _package_value(self, value: bytes, params: dict) -> object:
        cert: NodeCertificate = params["cert"]
        return seal(cert.public_key, value)

    def _unpackage_value(self, payload: object) -> bytes:
        return payload.open(self.node.keys)  # type: ignore[union-attr]

    def _fetch_request_bytes(self) -> int:
        return MIN_RPC_BYTES + ID_BYTES + CERT_BYTES

    def _value_reply_bytes(self, value: bytes) -> int:
        return MIN_RPC_BYTES + len(value) + SEALED_OVERHEAD_BYTES

    # -- client operations: reusable engines ------------------------------------------
    # (Compromise-VerDi relays drive the same engines with a foreign tag.)

    def fast_get(self, key: int, op_tag: int, on_done: Callable[[OpResult], None]) -> None:
        op = _Op("get", key, op_tag, on_done, self.node.sim.now)
        self._lookup_then(op, self.adjusted_key(key), self._get_entries)

    def fast_put(
        self, value: bytes, key: int, op_tag: int, on_done: Callable[[OpResult], None]
    ) -> None:
        op = _Op("put", key, op_tag, on_done, self.node.sim.now, value=value)
        self._lookup_then(op, self.adjusted_key(key), self._put_entries)

    def _start_get(self, op: _Op) -> None:
        self._lookup_then(op, self.adjusted_key(op.key), self._get_entries)

    def _start_put(self, op: _Op) -> None:
        self._lookup_then(op, self.adjusted_key(op.key), self._put_entries)

    def _fetch_params_extra(self) -> dict:
        return {"cert": self.node.cert}

    def _get_entries(self, op: _Op, res: LookupResult) -> None:
        if not res.success or not res.entries:
            self._finish(op, False, error=res.error or "lookup failed")
            return
        self._note_entries(op.key, list(res.entries))
        op.targets = self._order_targets(res.entries)
        self._fetch_from(op, params_extra=self._fetch_params_extra())

    def _put_entries(self, op: _Op, res: LookupResult) -> None:
        if not res.success or not res.entries:
            self._finish(op, False, error=res.error or "lookup failed")
            return
        op.targets = list(res.entries)
        self._store_next(op)

    def _store_next(self, op: _Op) -> None:
        if not op.targets:
            self._finish(op, False, error="no responsible node accepted the block")
            return
        target = op.targets.pop(0)
        assert op.value is not None
        self.node.rpc.call(
            target.address,
            "dht_store",
            {"key": op.key, "value": op.value, "cross_copy": True},
            on_reply=lambda res: self._finish(op, True, value=op.value),
            on_error=lambda err: self._store_next(op),
            timeout_s=self.node.config.lookup_timeout_s,
            size=self._store_request_bytes(op.value),
            category=self.DATA_CATEGORY,
            op_tag=op.op_tag,
        )
