"""Compromise-VerDi (paper §5.3.3): one level of indirection.

The initiator signs a statement vouching for the operation and hands
the request to one of its finger-table entries, which acts as a relay:
it appends its own certificate, performs the operation exactly like
Fast-VerDi, and forwards the result back.  A compromised node can no
longer harvest addresses by *issuing* operations (its relay does the
address-bearing part), but an impersonating node that happens to be
some honest node's finger can still *passively* record the initiators
that relay through it — the leak the Fig. 8 worm experiment drives.
"""

from __future__ import annotations

from typing import Optional

from ..chord.rpc import MIN_RPC_BYTES, RpcContext
from ..chord.state import NodeInfo
from ..net.message import CERT_BYTES, ID_BYTES, SIGNATURE_BYTES
from .base import OpResult, _Op
from .fast import FastVerDiNode


class CompromiseVerDiNode(FastVerDiNode):
    """Compromise-VerDi attached to one Verme node."""

    # The relay does the address-bearing part: the initiator never
    # holds replica entries, so the hot-key entry cache cannot apply.
    ENTRY_CACHE_OK = False

    def __init__(self, node, config) -> None:
        super().__init__(node, config)
        node.rpc.register("verdi_relay", self._h_relay)
        self.relayed_operations = 0

    # -- relay selection ----------------------------------------------------------

    def _pick_relay(self, key: int) -> Optional[NodeInfo]:
        """The "appropriate finger table entry": the finger closest-
        preceding the (adjusted) replica position of the key."""
        node = self.node
        target = self.adjusted_key(key)
        best: Optional[NodeInfo] = None
        best_dist = -1
        for info in node.fingers.entries():
            if node.space.in_open(info.node_id, node.node_id, target):
                dist = node.space.distance(node.node_id, info.node_id)
                if dist > best_dist:
                    best, best_dist = info, dist
        if best is not None:
            return best
        fingers = node.fingers.entries()
        return fingers[0] if fingers else None

    # -- client operations ----------------------------------------------------------

    def _start_get(self, op: _Op) -> None:
        self._via_relay(op)

    def _start_put(self, op: _Op) -> None:
        self._via_relay(op)

    def _via_relay(self, op: _Op) -> None:
        relay = self._pick_relay(op.key)
        if relay is None:
            # Degenerate overlay (no fingers yet): fall back to the
            # direct Fast-VerDi engine rather than failing the client.
            if op.op == "get":
                self._lookup_then(op, self.adjusted_key(op.key), self._get_entries)
            else:
                self._lookup_then(op, self.adjusted_key(op.key), self._put_entries)
            return
        params = {
            "op": op.op,
            "key": op.key,
            "cert": self.node.cert,
            "statement": ("vouch", self.node.node_id, op.op, op.key),
        }
        size = MIN_RPC_BYTES + ID_BYTES + CERT_BYTES + SIGNATURE_BYTES
        if op.op == "put":
            assert op.value is not None
            params["value"] = op.value
            size += len(op.value)
        self.node.rpc.call(
            relay.address,
            "verdi_relay",
            params,
            on_reply=lambda res: self._relay_reply(op, res),
            on_error=lambda err: self._finish(op, False, error=f"relay failed: {err}"),
            timeout_s=self.node.config.lookup_timeout_s * 2,
            size=size,
            category=self.DATA_CATEGORY,
            op_tag=op.op_tag,
        )

    def _relay_reply(self, op: _Op, res: dict) -> None:
        if not res.get("ok"):
            self._finish(op, False, error=res.get("error", "relay error"))
            return
        if op.op == "get":
            value = res.get("value")
            try:
                from .blocks import verify_block

                verify_block(self.space, op.key, value)
            except ValueError as exc:
                self._finish(op, False, error=str(exc))
                return
            self._finish(op, True, value=value)
        else:
            self._finish(op, True, value=op.value)

    # -- relay (server) side -----------------------------------------------------------

    def _h_relay(self, params: dict, ctx: RpcContext) -> None:
        cert = params.get("cert")
        if cert is None or not self.node.ca.verify(cert):
            ctx.fail("invalid initiator certificate")
            return
        if params.get("statement") is None:
            ctx.fail("missing signed statement")
            return
        self.relayed_operations += 1
        op_name, key = params["op"], params["key"]
        if op_name == "get":
            self.fast_get(key, ctx.op_tag, lambda r: self._relay_done(ctx, r))
        elif op_name == "put":
            self.fast_put(
                params["value"], key, ctx.op_tag, lambda r: self._relay_done(ctx, r)
            )
        else:
            ctx.fail(f"unknown relayed op {op_name!r}")

    def _relay_done(self, ctx: RpcContext, result: OpResult) -> None:
        if not result.ok:
            ctx.respond({"ok": False, "error": result.error})
            return
        size = MIN_RPC_BYTES
        reply = {"ok": True}
        if result.op == "get" and result.value is not None:
            reply["value"] = result.value
            size += len(result.value)
        ctx.respond(reply, size=size)
