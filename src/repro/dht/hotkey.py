"""Hot-key detection, replica caching, and load-aware replica choice.

Zipf-skewed workloads concentrate reads on a handful of keys; without a
serving-side answer the head keys' replica group becomes the overload
hot spot.  Three cooperating pieces (all per-DHT-node, all on the sim
clock, deterministic):

* :class:`HotKeyTracker` — a sliding-window access counter that flags a
  key *hot* once it is read ``threshold`` times within ``window_s``;
* :class:`ReplicaCache` — an LRU, TTL-bounded cache of replica entry
  lists for hot keys, letting repeat reads skip the overlay lookup
  entirely (the cached addresses are *hints*: see ``docs/serving.md``
  for the coherence rules — TTL expiry, purge on failure-detector
  death, discard on fetch miss);
* :class:`LoadEstimator` — an EWMA of observed fetch latency plus an
  outstanding-request count per replica address, used to order a replica
  list least-loaded-first on the read path.

Values themselves are content-addressed (the key is the value's hash),
so a cached or promoted *value* can never be stale — only the *address
hints* age, which is what the TTL and invalidation hooks bound.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from ..chord.state import NodeInfo


class HotKeyTracker:
    """Flags keys read ``threshold``+ times within the last ``window_s``."""

    __slots__ = ("window_s", "threshold", "_hits", "_sweep_at")

    #: cold-key garbage collection cadence, in multiples of the window
    _SWEEP_WINDOWS = 4.0

    def __init__(self, window_s: float, threshold: int) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.window_s = window_s
        self.threshold = threshold
        self._hits: Dict[int, Deque[float]] = {}
        self._sweep_at = self._SWEEP_WINDOWS * window_s

    def note(self, key: int, now: float) -> None:
        """Record one read of ``key`` at time ``now``."""
        hits = self._hits.get(key)
        if hits is None:
            hits = self._hits[key] = deque()
        hits.append(now)
        self._prune(hits, now)
        if now >= self._sweep_at:
            self._sweep_at = now + self._SWEEP_WINDOWS * self.window_s
            horizon = now - self.window_s
            for k in [k for k, h in self._hits.items() if h[-1] < horizon]:
                del self._hits[k]

    def is_hot(self, key: int, now: float) -> bool:
        """True when ``key`` crossed the threshold inside the window."""
        hits = self._hits.get(key)
        if hits is None:
            return False
        self._prune(hits, now)
        return len(hits) >= self.threshold

    def _prune(self, hits: Deque[float], now: float) -> None:
        horizon = now - self.window_s
        while hits and hits[0] < horizon:
            hits.popleft()


class ReplicaCache:
    """LRU + TTL cache: key -> replica entry list (address hints)."""

    __slots__ = ("capacity", "ttl_s", "_entries")

    def __init__(self, capacity: int, ttl_s: float) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl_s <= 0:
            raise ValueError("ttl must be positive")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._entries: OrderedDict[int, Tuple[List[NodeInfo], float]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: int, now: float) -> Optional[List[NodeInfo]]:
        """The cached entry list, or None when absent or expired."""
        hit = self._entries.get(key)
        if hit is None:
            return None
        entries, stored_at = hit
        if now - stored_at > self.ttl_s:
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return list(entries)

    def put(self, key: int, entries: List[NodeInfo], now: float) -> None:
        """Cache ``entries`` for ``key``, evicting the LRU tail."""
        if not entries:
            return
        self._entries[key] = (list(entries), now)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, key: int) -> None:
        """Drop ``key``'s cached entries (hints proved useless)."""
        self._entries.pop(key, None)

    def discard_address(self, key: int, address) -> None:
        """Drop one dead/missing replica hint from ``key``'s entry."""
        hit = self._entries.get(key)
        if hit is None:
            return
        entries = [e for e in hit[0] if e.address != address]
        if entries:
            self._entries[key] = (entries, hit[1])
        else:
            del self._entries[key]

    def invalidate_address(self, address) -> None:
        """Failure-detector purge: remove ``address`` from every entry."""
        for key in [
            k for k, (entries, _) in self._entries.items()
            if any(e.address == address for e in entries)
        ]:
            self.discard_address(key, address)


class LoadEstimator:
    """Per-replica-address load scores for read-path replica selection.

    Score = EWMA of observed fetch latency plus a penalty per request
    currently outstanding to that address; ``order`` sorts a candidate
    list by ascending score, stably, so unknown addresses keep the
    lookup's responsibility order.
    """

    __slots__ = ("alpha", "outstanding_penalty_s", "_ewma", "_outstanding")

    def __init__(self, alpha: float, outstanding_penalty_s: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.outstanding_penalty_s = outstanding_penalty_s
        self._ewma: Dict[object, float] = {}
        self._outstanding: Dict[object, int] = {}

    def note_start(self, address) -> None:
        """One fetch went out to ``address``."""
        self._outstanding[address] = self._outstanding.get(address, 0) + 1

    def note_done(self, address, latency_s: float, failed: bool = False) -> None:
        """The fetch to ``address`` finished (``failed`` = timed out)."""
        count = self._outstanding.get(address, 0) - 1
        if count > 0:
            self._outstanding[address] = count
        else:
            self._outstanding.pop(address, None)
        prev = self._ewma.get(address)
        if failed:
            latency_s *= 2.0  # a timeout is worse than its elapsed time
        if prev is None:
            self._ewma[address] = latency_s
        else:
            self._ewma[address] = prev + self.alpha * (latency_s - prev)

    def score(self, address) -> float:
        """Estimated cost of sending the next fetch to ``address``."""
        return (
            self._ewma.get(address, 0.0)
            + self._outstanding.get(address, 0) * self.outstanding_penalty_s
        )

    def order(self, targets: List[NodeInfo]) -> List[NodeInfo]:
        """``targets`` least-loaded-first (stable for unseen addresses)."""
        return sorted(targets, key=lambda info: self.score(info.address))
