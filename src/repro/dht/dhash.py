"""DHash: the baseline DHT over Chord lookups (paper §5.1).

``put`` looks up the key's successor list and stores the block on the
first responsible node, which acknowledges immediately and replicates
to the remaining *n-1* successors in the background.  ``get`` looks up
the successor list and downloads from the first replica that answers,
verifying the content hash.  Lookups are recursive followed by a
direct transfer — the paper notes Fast-VerDi "works very similarly".
"""

from __future__ import annotations

from typing import List

from ..chord.lookup import LookupResult
from ..chord.state import NodeInfo
from .base import DhtNode, _Op


class DHashNode(DhtNode):
    """DHash attached to one Chord (or Verme) node."""

    # -- replica maintenance ---------------------------------------------------

    def _local_group_view(self, key: int) -> List[NodeInfo]:
        node = self.node
        pred = node.predecessor
        if pred is not None and node.space.in_half_open(
            key, pred.node_id, node.node_id
        ):
            return [node.info] + node.successors.entries[
                : self.config.num_replicas - 1
            ]
        # Not provably the owner: stay quiet and let the owner push.
        return []

    # -- client operations --------------------------------------------------------

    def _start_put(self, op: _Op) -> None:
        self._lookup_then(op, op.key, self._put_entries)

    def _put_entries(self, op: _Op, res: LookupResult) -> None:
        if not res.success or not res.entries:
            self._finish(op, False, error=res.error or "lookup failed")
            return
        op.targets = list(res.entries)
        self._store_next(op)

    def _store_next(self, op: _Op) -> None:
        if not op.targets:
            self._finish(op, False, error="no responsible node accepted the block")
            return
        target = op.targets.pop(0)
        assert op.value is not None
        self.node.rpc.call(
            target.address,
            "dht_store",
            {"key": op.key, "value": op.value, "replicate": True},
            on_reply=lambda res: self._finish(op, True, value=op.value),
            on_error=lambda err: self._store_next(op),
            timeout_s=self._data_timeout_s(),
            size=self._store_request_bytes(op.value),
            category=self.DATA_CATEGORY,
            op_tag=op.op_tag,
        )

    def _start_get(self, op: _Op) -> None:
        self._lookup_then(op, op.key, self._get_entries)

    def _get_entries(self, op: _Op, res: LookupResult) -> None:
        if not res.success or not res.entries:
            self._finish(op, False, error=res.error or "lookup failed")
            return
        self._note_entries(op.key, list(res.entries))
        op.targets = self._order_targets(res.entries)
        self._fetch_from(op)
