"""Secure-VerDi (paper §5.3.2): operations piggybacked on the lookup.

The get/put request rides inside the recursive lookup all the way to
the responsible node; the data travels back (or forward, for puts)
along the lookup path, hop by hop.  No replica address is ever
disclosed to the initiator, so an impersonating node can at most reach
the O(log N) sections its own routing entries point at — the paper's
containment bound for this variant.  The price is a data transfer on
every hop (Figs. 6-7).

Because clients never contact replicas directly, data does not need to
be replicated in two sections (§5.3.2): all *n* replicas live on the
key's own section.
"""

from __future__ import annotations

from typing import List, Optional

from ..chord.lookup import LookupResult
from ..chord.state import NodeInfo
from ..crypto.certificates import NodeCertificate
from .base import _Op
from .verdi import VerDiNode


class SecureVerDiNode(VerDiNode):
    """Secure-VerDi attached to one Verme node."""

    # Gets are piggybacked on the lookup (no replica entries ever reach
    # the initiator): the hot-key entry cache cannot apply.
    ENTRY_CACHE_OK = False

    def _install_hooks(self) -> None:
        self.node.verify_dht_lookup = self._verify_dht_lookup
        self.node.dht_lookup_hook = self._responsible_hook

    def _group_size(self) -> int:
        # Single-section replication: the full n replicas (§5.3.2).
        return self.config.num_replicas

    def position_for_me(self, key: int) -> Optional[int]:
        # Only the key's own section hosts replicas in this variant.
        my_section = self.layout.section_index(self.node.node_id)
        if self.layout.section_index(key) == my_section:
            return key
        return None

    # -- responsible-node side -------------------------------------------------

    def _verify_dht_lookup(
        self, cert: NodeCertificate, key: int, params: dict
    ) -> Optional[str]:
        meta = params.get("meta")
        if not meta or not meta.get("suppress_entries"):
            # Raw (address-returning) DHT lookups do not exist in
            # Secure-VerDi; everything must be a piggybacked operation.
            return "secure-verdi only serves piggybacked operations"
        return None

    def _responsible_hook(self, key, meta, entries, done) -> None:
        op_name = meta.get("op")
        if op_name == "get":
            self._serve_get(key, meta, entries, done)
        elif op_name == "put":
            self._serve_put(key, meta, entries, done)
        else:
            done({"error": f"unknown piggybacked op {op_name!r}"}, 0)

    def _serve_get(self, key: int, meta: dict, entries: List[NodeInfo], done) -> None:
        value = self.store.get(key)
        if value is not None:
            done({"found": True, "value": value}, len(value))
            return
        # "One of the replicas is chosen to retrieve the data": ask the
        # replica group before reporting a miss.
        targets = [e for e in entries if e.node_id != self.node.node_id]
        self._relay_fetch(key, meta, targets, done)

    def _relay_fetch(self, key: int, meta: dict, targets: List[NodeInfo], done) -> None:
        if not targets:
            done({"found": False}, 0)
            return
        target = targets.pop(0)
        self.node.rpc.call(
            target.address,
            "dht_fetch",
            {"key": key},
            on_reply=lambda res: (
                done({"found": True, "value": res["value"]}, len(res["value"]))
                if res.get("found")
                else self._relay_fetch(key, meta, targets, done)
            ),
            on_error=lambda err: self._relay_fetch(key, meta, targets, done),
            timeout_s=self._data_timeout_s(),
            size=self._fetch_request_bytes(),
            category=self.DATA_CATEGORY,
            op_tag=meta.get("op_tag"),
        )

    def _serve_put(self, key: int, meta: dict, entries: List[NodeInfo], done) -> None:
        value = meta["value"]
        if entries and entries[0].node_id != self.node.node_id:
            # The terminating hop is the owner's predecessor: pass the
            # block the final hop to the owner, then acknowledge.
            target = entries[0]
            self.node.rpc.call(
                target.address,
                "dht_store",
                {"key": key, "value": value, "replicate": True},
                on_reply=lambda res: done({"stored": True}, 0),
                on_error=lambda err: done({"error": f"store failed: {err}"}, 0),
                timeout_s=self._data_timeout_s(),
                size=self._store_request_bytes(value),
                category=self.DATA_CATEGORY,
                op_tag=meta.get("op_tag"),
            )
            return
        try:
            self.store.put(key, value)
        except ValueError as exc:
            done({"error": str(exc)}, 0)
            return
        self.node.sim.schedule(0.0, self._replicate_key, key)
        done({"stored": True}, 0)

    # -- fetches between replicas (server side, same type, same section) --------------

    def _authorize_fetch(self, params: dict) -> Optional[str]:
        return None  # intra-group fetches carry no client certificate

    # -- client operations -----------------------------------------------------------

    def _start_get(self, op: _Op) -> None:
        meta = {"op": "get", "suppress_entries": True, "op_tag": op.op_tag}
        self._lookup_then(op, op.key, self._get_result, request_meta=meta)

    def _get_result(self, op: _Op, res: LookupResult) -> None:
        if not res.success:
            self._finish(op, False, error=res.error or "lookup failed")
            return
        payload = res.app_payload or {}
        if payload.get("error"):
            self._finish(op, False, error=payload["error"])
            return
        if not payload.get("found"):
            self._finish(op, False, error="not found")
            return
        value = payload["value"]
        try:
            from .blocks import verify_block

            verify_block(self.space, op.key, value)
        except ValueError as exc:
            self._finish(op, False, error=str(exc))
            return
        self._finish(op, True, value=value)

    def _start_put(self, op: _Op) -> None:
        assert op.value is not None
        meta = {
            "op": "put",
            "value": op.value,
            "suppress_entries": True,
            "op_tag": op.op_tag,
        }
        self._lookup_then(
            op,
            op.key,
            self._put_result,
            request_meta=meta,
            extra_request_bytes=len(op.value),
        )

    def _put_result(self, op: _Op, res: LookupResult) -> None:
        if not res.success:
            self._finish(op, False, error=res.error or "lookup failed")
            return
        payload = res.app_payload or {}
        if payload.get("stored"):
            self._finish(op, True, value=op.value)
        else:
            self._finish(op, False, error=payload.get("error", "store failed"))
