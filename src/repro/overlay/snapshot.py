"""Static overlay snapshots.

Computes, from a sorted id population alone, the exact routing state a
converged overlay would hold: successor/predecessor lists, finger
tables, and key ownership.  Three consumers:

* **instant bootstrap** — the experiment rings are initialised with
  converged state instead of paying O(N) protocol joins (p2psim does
  the same);
* **the worm simulations** — the paper's Fig. 8 runs on a 100,000-node
  *static* overlay, far past what a live protocol simulation in Python
  should be asked to maintain;
* **tests** — protocol-built state is checked against this ground truth.

Everything here is O(log N) per query via bisect.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Sequence

from ..chord.state import NodeInfo
from ..ids.idspace import IdSpace
from ..ids.sections import VermeIdLayout
from ..verme.fingers import verme_finger_target


@dataclass(frozen=True)
class OwnerDecision:
    """Who owns a key, and whether the predecessor corner rule fired."""

    index: int
    via_predecessor_rule: bool


class StaticOverlay:
    """Chord ownership and routing state over a fixed population."""

    def __init__(self, space: IdSpace, infos: Sequence[NodeInfo]) -> None:
        if not infos:
            raise ValueError("an overlay needs at least one node")
        self.space = space
        self.infos: List[NodeInfo] = sorted(infos, key=lambda i: i.node_id)
        self.ids: List[int] = [i.node_id for i in self.infos]
        if len(set(self.ids)) != len(self.ids):
            raise ValueError("duplicate node ids in overlay population")

    def __len__(self) -> int:
        return len(self.infos)

    # -- basic geometry --------------------------------------------------------

    def index_of(self, node_id: int) -> int:
        i = bisect_left(self.ids, node_id)
        if i == len(self.ids) or self.ids[i] != node_id:
            raise KeyError(f"node id {node_id:#x} not in overlay")
        return i

    def successor_index(self, key: int) -> int:
        """Index of the first node clockwise from ``key`` (inclusive)."""
        i = bisect_left(self.ids, key)
        return i % len(self.ids)

    def predecessor_index(self, key: int) -> int:
        """Index of the last node strictly before ``key`` (clockwise)."""
        i = bisect_left(self.ids, key)
        return (i - 1) % len(self.ids)

    def at(self, index: int) -> NodeInfo:
        return self.infos[index % len(self.infos)]

    # -- routing state ----------------------------------------------------------

    def successor_list(self, index: int, count: int) -> List[NodeInfo]:
        n = len(self.infos)
        count = min(count, n - 1)
        return [self.infos[(index + 1 + j) % n] for j in range(count)]

    def predecessor_list(self, index: int, count: int) -> List[NodeInfo]:
        n = len(self.infos)
        count = min(count, n - 1)
        return [self.infos[(index - 1 - j) % n] for j in range(count)]

    def owner(self, key: int) -> OwnerDecision:
        """Chord: a key is owned by its successor, unconditionally."""
        return OwnerDecision(self.successor_index(key), False)

    def finger_target(self, node_id: int, k: int) -> int:
        return self.space.power_of_two_target(node_id, k)

    def maintained_finger_indices(self, index: int) -> List[int]:
        """Finger numbers not covered by the node's first successor."""
        node_id = self.ids[index]
        succ = self.infos[(index + 1) % len(self.infos)]
        span = self.space.distance(node_id, succ.node_id)
        if span == 0:  # single-node overlay
            return []
        return [k for k in range(self.space.bits) if (1 << k) > span]

    def finger_table(self, index: int) -> dict[int, NodeInfo]:
        """Converged finger table of the node at ``index``."""
        node_id = self.ids[index]
        fingers: dict[int, NodeInfo] = {}
        for k in self.maintained_finger_indices(index):
            target = self.finger_target(node_id, k)
            owner = self.infos[self.owner(target).index]
            if owner.node_id != node_id and self._finger_entry_allowed(
                node_id, owner.node_id
            ):
                fingers[k] = owner
        return fingers

    def _finger_entry_allowed(self, node_id: int, owner_id: int) -> bool:
        """May ``owner_id`` be stored as a finger of ``node_id``?
        (Verme refuses containment-violating entries.)"""
        return True

    def replica_group(self, key: int, count: int) -> List[NodeInfo]:
        """The nodes a DHT should place ``count`` replicas of ``key`` on."""
        start = self.owner(key).index
        n = len(self.infos)
        count = min(count, n)
        return [self.infos[(start + j) % n] for j in range(count)]

    def routing_entries(
        self, index: int, num_successors: int, num_predecessors: int
    ) -> List[NodeInfo]:
        """Everything in this node's routing state (for worm knowledge)."""
        seen: dict[int, NodeInfo] = {}
        for info in self.successor_list(index, num_successors):
            seen[info.node_id] = info
        for info in self.predecessor_list(index, num_predecessors):
            seen[info.node_id] = info
        for info in self.finger_table(index).values():
            seen[info.node_id] = info
        return list(seen.values())


class VermeStaticOverlay(StaticOverlay):
    """Verme's ownership (section-bounded with the predecessor corner
    rule, §4.4/§5.2) and opposite-type finger placement."""

    def __init__(
        self, layout: VermeIdLayout, infos: Sequence[NodeInfo]
    ) -> None:
        super().__init__(layout.space, infos)
        self.layout = layout

    def owner(self, key: int) -> OwnerDecision:
        """The key's successor if it lies in the key's section, else the
        key's predecessor (the corner case of §4.4)."""
        succ_i = self.successor_index(key)
        if self.layout.same_section(self.ids[succ_i], key):
            return OwnerDecision(succ_i, False)
        return OwnerDecision(self.predecessor_index(key), True)

    def finger_target(self, node_id: int, k: int) -> int:
        return verme_finger_target(self.layout, node_id, k)

    def _finger_entry_allowed(self, node_id: int, owner_id: int) -> bool:
        """In degenerate (sparsely populated) rings the owner of a
        displaced target can be a same-type node from a foreign section;
        storing it would break containment, so it is dropped (routing
        falls back to the successor list)."""
        return self.layout.same_section(owner_id, node_id) or not self.layout.same_type(
            owner_id, node_id
        )

    def section_members(self, section_index: int) -> List[NodeInfo]:
        """All nodes whose ids fall in the given section."""
        start, end = self.layout.section_bounds(section_index)
        lo = bisect_left(self.ids, start)
        hi = bisect_right(self.ids, end)
        return self.infos[lo:hi]

    def replica_group(self, key: int, count: int) -> List[NodeInfo]:
        """Up to ``count`` nodes of the key's section nearest the key.

        Starts at the owner and extends clockwise while staying in the
        key's section, then counter-clockwise (the paper's "replicate
        toward the predecessors" corner rule); never leaves the section.
        """
        decision = self.owner(key)
        owner = self.infos[decision.index]
        section = self.layout.section_index(key)
        if self.layout.section_index(owner.node_id) != section:
            # Degenerate: the key's section is empty; only the ring
            # predecessor can own it.
            return [owner]
        n = len(self.infos)
        group = [owner]
        j = decision.index
        while len(group) < count:
            j = (j + 1) % n
            info = self.infos[j]
            if info is owner or self.layout.section_index(info.node_id) != section:
                break
            group.append(info)
        j = decision.index
        while len(group) < count:
            j = (j - 1) % n
            info = self.infos[j]
            if info in group or self.layout.section_index(info.node_id) != section:
                break
            group.append(info)
        return group

    def cross_type_replica_groups(
        self, key: int, per_group: int
    ) -> tuple[List[NodeInfo], List[NodeInfo]]:
        """VerDi's two replica groups (§5.2): ``per_group`` nodes at the
        key's position and the same position one section later."""
        return (
            self.replica_group(key, per_group),
            self.replica_group(self.layout.opposite_type_position(key), per_group),
        )


class NaiveFingerVermeOverlay(VermeStaticOverlay):
    """Ablation: Verme's sectioned ids and ownership, but *plain Chord*
    finger targets and no containment filtering.

    This isolates the contribution of §4.4's finger displacement: with
    naive fingers a node's table contains same-type nodes from distant
    sections, handing a worm exactly the cross-island links Verme
    exists to remove.  Used by the ablation benchmarks.
    """

    def finger_target(self, node_id: int, k: int) -> int:
        return self.space.power_of_two_target(node_id, k)

    def _finger_entry_allowed(self, node_id: int, owner_id: int) -> bool:
        return True
