"""Static overlay snapshots.

Computes, from a sorted id population alone, the exact routing state a
converged overlay would hold: successor/predecessor lists, finger
tables, and key ownership.  Three consumers:

* **instant bootstrap** — the experiment rings are initialised with
  converged state instead of paying O(N) protocol joins (p2psim does
  the same);
* **the worm simulations** — the paper's Fig. 8 runs on a 100,000-node
  *static* overlay, far past what a live protocol simulation in Python
  should be asked to maintain;
* **tests** — protocol-built state is checked against this ground truth.

Everything here is O(log N) per query via bisect.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence

try:  # numpy accelerates the batched knowledge-extraction path
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    np = None  # type: ignore[assignment]

from ..chord.state import NodeInfo
from ..ids.idspace import IdSpace
from ..ids.sections import VermeIdLayout
from ..net.addressing import NodeAddress
from ..verme.fingers import verme_finger_target

#: Row batches above this are processed in chunks by the vectorised
#: knowledge path so the (rows x candidates^2) dedup mask stays small.
_BATCH_CHUNK = 16384


@dataclass(frozen=True)
class OwnerDecision:
    """Who owns a key, and whether the predecessor corner rule fired."""

    index: int
    via_predecessor_rule: bool


class StaticOverlay:
    """Chord ownership and routing state over a fixed population."""

    def __init__(self, space: IdSpace, infos: Sequence[NodeInfo]) -> None:
        if not infos:
            raise ValueError("an overlay needs at least one node")
        self.space = space
        self._infos: Optional[List[NodeInfo]] = sorted(
            infos, key=lambda i: i.node_id
        )
        self.ids: List[int] = [i.node_id for i in self._infos]
        if len(set(self.ids)) != len(self.ids):
            raise ValueError("duplicate node ids in overlay population")
        self._ids_np = None

    @classmethod
    def from_ids(cls, space: IdSpace, ids: Sequence[int]) -> "StaticOverlay":
        """Build an overlay from bare ids without materialising
        :class:`NodeInfo` objects.

        At million-node scale the per-node ``NodeInfo``/``NodeAddress``
        dataclasses dominate construction cost and RSS; the worm
        simulations only ever consult ``ids`` and index arithmetic, so
        :attr:`infos` stays lazy (materialised on first access, with
        addresses equal to the sorted position).
        """
        if not ids:
            raise ValueError("an overlay needs at least one node")
        self = object.__new__(cls)
        self.space = space
        sorted_ids = sorted(ids)
        for a, b in zip(sorted_ids, sorted_ids[1:]):
            if a == b:
                raise ValueError("duplicate node ids in overlay population")
        self.ids = sorted_ids
        self._infos = None
        self._ids_np = None
        return self

    @property
    def infos(self) -> List[NodeInfo]:
        if self._infos is None:
            self._infos = [
                NodeInfo(nid, NodeAddress(i)) for i, nid in enumerate(self.ids)
            ]
        return self._infos

    def __len__(self) -> int:
        return len(self.ids)

    # -- basic geometry --------------------------------------------------------

    def index_of(self, node_id: int) -> int:
        i = bisect_left(self.ids, node_id)
        if i == len(self.ids) or self.ids[i] != node_id:
            raise KeyError(f"node id {node_id:#x} not in overlay")
        return i

    def successor_index(self, key: int) -> int:
        """Index of the first node clockwise from ``key`` (inclusive)."""
        i = bisect_left(self.ids, key)
        return i % len(self.ids)

    def predecessor_index(self, key: int) -> int:
        """Index of the last node strictly before ``key`` (clockwise)."""
        i = bisect_left(self.ids, key)
        return (i - 1) % len(self.ids)

    def at(self, index: int) -> NodeInfo:
        return self.infos[index % len(self.infos)]

    # -- routing state ----------------------------------------------------------

    def successor_list(self, index: int, count: int) -> List[NodeInfo]:
        n = len(self.infos)
        count = min(count, n - 1)
        return [self.infos[(index + 1 + j) % n] for j in range(count)]

    def predecessor_list(self, index: int, count: int) -> List[NodeInfo]:
        n = len(self.infos)
        count = min(count, n - 1)
        return [self.infos[(index - 1 - j) % n] for j in range(count)]

    def owner(self, key: int) -> OwnerDecision:
        """Chord: a key is owned by its successor, unconditionally."""
        return OwnerDecision(self.successor_index(key), False)

    def finger_target(self, node_id: int, k: int) -> int:
        return self.space.power_of_two_target(node_id, k)

    def maintained_finger_indices(self, index: int) -> List[int]:
        """Finger numbers not covered by the node's first successor."""
        node_id = self.ids[index]
        succ_id = self.ids[(index + 1) % len(self.ids)]
        span = self.space.distance(node_id, succ_id)
        if span == 0:  # single-node overlay
            return []
        # 2**k > span  <=>  k >= span.bit_length(), so skip the dead ks.
        return list(range(span.bit_length(), self.space.bits))

    def finger_table(self, index: int) -> dict[int, NodeInfo]:
        """Converged finger table of the node at ``index``."""
        node_id = self.ids[index]
        fingers: dict[int, NodeInfo] = {}
        for k in self.maintained_finger_indices(index):
            target = self.finger_target(node_id, k)
            owner = self.infos[self.owner(target).index]
            if owner.node_id != node_id and self._finger_entry_allowed(
                node_id, owner.node_id
            ):
                fingers[k] = owner
        return fingers

    def _finger_entry_allowed(self, node_id: int, owner_id: int) -> bool:
        """May ``owner_id`` be stored as a finger of ``node_id``?
        (Verme refuses containment-violating entries.)"""
        return True

    def replica_group(self, key: int, count: int) -> List[NodeInfo]:
        """The nodes a DHT should place ``count`` replicas of ``key`` on."""
        infos = self.infos
        return [infos[i] for i in self.replica_group_indices(key, count)]

    def replica_group_indices(self, key: int, count: int) -> List[int]:
        """Index form of :meth:`replica_group` (same nodes, same order)
        that never materialises ``NodeInfo`` objects."""
        start = self.owner(key).index
        n = len(self.ids)
        count = min(count, n)
        return [(start + j) % n for j in range(count)]

    def routing_entries(
        self, index: int, num_successors: int, num_predecessors: int
    ) -> List[NodeInfo]:
        """Everything in this node's routing state (for worm knowledge)."""
        seen: dict[int, NodeInfo] = {}
        for info in self.successor_list(index, num_successors):
            seen[info.node_id] = info
        for info in self.predecessor_list(index, num_predecessors):
            seen[info.node_id] = info
        for info in self.finger_table(index).values():
            seen[info.node_id] = info
        return list(seen.values())

    def routing_target_indices(
        self, index: int, num_successors: int, num_predecessors: int
    ) -> List[int]:
        """Index-form :meth:`routing_entries`: the same entries in the
        same first-occurrence order (successors, then predecessors, then
        fingers by ascending ``k``), but as overlay indices with no
        ``NodeInfo`` materialisation or ``index_of`` lookups.  This is
        the worm-knowledge hot path.
        """
        ids = self.ids
        n = len(ids)
        out: List[int] = []
        seen = set()
        for j in range(1, min(num_successors, n - 1) + 1):
            i = (index + j) % n
            if i not in seen:
                seen.add(i)
                out.append(i)
        for j in range(1, min(num_predecessors, n - 1) + 1):
            i = (index - j) % n
            if i not in seen:
                seen.add(i)
                out.append(i)
        node_id = ids[index]
        finger_target = self.finger_target
        owner = self.owner
        allowed = self._finger_entry_allowed
        for k in self.maintained_finger_indices(index):
            oi = owner(finger_target(node_id, k)).index
            owner_id = ids[oi]
            if owner_id != node_id and oi not in seen and allowed(node_id, owner_id):
                seen.add(oi)
                out.append(oi)
        return out

    def _ids_numpy(self):
        """The sorted id list as a cached ``uint64`` array (ids fit by
        the ``bits <= 64`` guard of the callers)."""
        arr = self._ids_np
        if arr is None:
            arr = np.array(self.ids, dtype=np.uint64)
            self._ids_np = arr
        return arr

    def _can_batch_routing(self) -> bool:
        """The vectorised path hard-codes plain-Chord semantics, so it
        only runs when no subclass overrides them."""
        cls = type(self)
        return (
            np is not None
            and self.space.bits <= 64
            and cls.owner is StaticOverlay.owner
            and cls.finger_target is StaticOverlay.finger_target
            and cls._finger_entry_allowed is StaticOverlay._finger_entry_allowed
            and cls.maintained_finger_indices is StaticOverlay.maintained_finger_indices
        )

    def routing_target_indices_many(
        self, indices: Sequence[int], num_successors: int, num_predecessors: int
    ):
        """Batched :meth:`routing_target_indices` over many nodes.

        Returns ``(flat, counts)`` where ``flat`` is the concatenation
        of each node's target list (row-major, exact per-node order
        preserved) and ``counts[r]`` is the length of row ``r``.  On
        plain Chord overlays the whole batch is vectorised with numpy
        (``searchsorted`` for finger owners, a candidate matrix with a
        triangular equality mask for first-occurrence dedup); subclasses
        with different ownership/finger rules fall back to the scalar
        path per node.
        """
        if not self._can_batch_routing():
            flat: List[int] = []
            counts: List[int] = []
            for index in indices:
                row = self.routing_target_indices(
                    index, num_successors, num_predecessors
                )
                flat.extend(row)
                counts.append(len(row))
            return flat, counts

        ids_np = self._ids_numpy()
        n = len(ids_np)
        bits = self.space.bits
        idx_all = np.asarray(indices, dtype=np.int64)
        cs = min(num_successors, n - 1)
        cp = min(num_predecessors, n - 1)
        flat_parts = []
        count_parts = []
        for lo in range(0, idx_all.shape[0], _BATCH_CHUNK):
            idx = idx_all[lo : lo + _BATCH_CHUNK]
            m = idx.shape[0]
            node_ids = ids_np[idx]
            # Successor span decides which fingers each node maintains;
            # uint64 wraparound then masking gives distance mod 2**bits.
            spans = ids_np[(idx + 1) % n] - node_ids
            if bits < 64:
                spans &= np.uint64((1 << bits) - 1)
            kmin = int(spans.min()).bit_length() if m else bits
            nk = max(0, bits - kmin)
            cols = cs + cp + nk
            cand = np.full((m, cols), -1, dtype=np.int64)
            if cs:
                cand[:, :cs] = (
                    idx[:, None] + np.arange(1, cs + 1, dtype=np.int64)
                ) % n
            if cp:
                cand[:, cs : cs + cp] = (
                    idx[:, None] - np.arange(1, cp + 1, dtype=np.int64)
                ) % n
            oi = None
            if nk:
                # All finger owners in one searchsorted over the
                # (m, nk) target matrix.
                steps = np.uint64(1) << np.arange(kmin, bits, dtype=np.uint64)
                active = spans[:, None] < steps[None, :]  # 2**k > span
                targets = node_ids[:, None] + steps[None, :]
                if bits < 64:
                    targets &= np.uint64((1 << bits) - 1)
                oi = ids_np.searchsorted(targets.ravel()).reshape(m, nk) % n
                ok = active & (ids_np[oi] != node_ids[:, None])
                cand[:, cs + cp :] = np.where(ok, oi, -1)
            if cp == 0:
                # Structure-aware dedup, O(m*cols): successors are
                # distinct by construction, so only fingers need checks.
                # A finger is a duplicate iff it is shadowed by the
                # successor list (ring offset <= cs) or equals the
                # previous finger column — finger owners move clockwise
                # monotonically by less than half the ring (offsets are
                # 2**k <= 2**(bits-1)), so equal owners are always in
                # adjacent maintained columns.
                keep = np.ones((m, cols), dtype=bool)
                if nk:
                    fkeep = cand[:, cs:] >= 0
                    fkeep &= ((oi - idx[:, None]) % n) > cs
                    fkeep[:, 1:] &= oi[:, 1:] != oi[:, :-1]
                    keep[:, cs:] = fkeep
            else:
                # General first-occurrence dedup: drop a candidate equal
                # to any earlier column (lower-triangular equality).
                eq = cand[:, :, None] == cand[:, None, :]
                dup = (eq & np.tril(np.ones((cols, cols), dtype=bool), -1)).any(
                    axis=2
                )
                keep = (cand >= 0) & ~dup
            flat_parts.append(cand[keep])
            count_parts.append(keep.sum(axis=1))
        if not flat_parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(flat_parts), np.concatenate(count_parts)


class VermeStaticOverlay(StaticOverlay):
    """Verme's ownership (section-bounded with the predecessor corner
    rule, §4.4/§5.2) and opposite-type finger placement."""

    def __init__(
        self, layout: VermeIdLayout, infos: Sequence[NodeInfo]
    ) -> None:
        super().__init__(layout.space, infos)
        self.layout = layout

    @classmethod
    def from_ids(
        cls, layout: VermeIdLayout, ids: Sequence[int]
    ) -> "VermeStaticOverlay":
        """Lazy-``infos`` constructor (see :meth:`StaticOverlay.from_ids`)."""
        self = StaticOverlay.from_ids.__func__(cls, layout.space, ids)
        self.layout = layout
        return self

    def owner(self, key: int) -> OwnerDecision:
        """The key's successor if it lies in the key's section, else the
        key's predecessor (the corner case of §4.4)."""
        succ_i = self.successor_index(key)
        if self.layout.same_section(self.ids[succ_i], key):
            return OwnerDecision(succ_i, False)
        return OwnerDecision(self.predecessor_index(key), True)

    def finger_target(self, node_id: int, k: int) -> int:
        return verme_finger_target(self.layout, node_id, k)

    def _finger_entry_allowed(self, node_id: int, owner_id: int) -> bool:
        """In degenerate (sparsely populated) rings the owner of a
        displaced target can be a same-type node from a foreign section;
        storing it would break containment, so it is dropped (routing
        falls back to the successor list)."""
        return self.layout.same_section(owner_id, node_id) or not self.layout.same_type(
            owner_id, node_id
        )

    def section_members(self, section_index: int) -> List[NodeInfo]:
        """All nodes whose ids fall in the given section."""
        start, end = self.layout.section_bounds(section_index)
        lo = bisect_left(self.ids, start)
        hi = bisect_right(self.ids, end)
        return self.infos[lo:hi]

    def replica_group(self, key: int, count: int) -> List[NodeInfo]:
        """Up to ``count`` nodes of the key's section nearest the key.

        Starts at the owner and extends clockwise while staying in the
        key's section, then counter-clockwise (the paper's "replicate
        toward the predecessors" corner rule); never leaves the section.
        """
        infos = self.infos
        return [infos[i] for i in self.replica_group_indices(key, count)]

    def replica_group_indices(self, key: int, count: int) -> List[int]:
        ids = self.ids
        decision = self.owner(key)
        owner_index = decision.index
        section = self.layout.section_index(key)
        if self.layout.section_index(ids[owner_index]) != section:
            # Degenerate: the key's section is empty; only the ring
            # predecessor can own it.
            return [owner_index]
        n = len(ids)
        group = [owner_index]
        j = owner_index
        while len(group) < count:
            j = (j + 1) % n
            if j == owner_index or self.layout.section_index(ids[j]) != section:
                break
            group.append(j)
        j = owner_index
        while len(group) < count:
            j = (j - 1) % n
            if j in group or self.layout.section_index(ids[j]) != section:
                break
            group.append(j)
        return group

    def cross_type_replica_groups(
        self, key: int, per_group: int
    ) -> tuple[List[NodeInfo], List[NodeInfo]]:
        """VerDi's two replica groups (§5.2): ``per_group`` nodes at the
        key's position and the same position one section later."""
        return (
            self.replica_group(key, per_group),
            self.replica_group(self.layout.opposite_type_position(key), per_group),
        )


class NaiveFingerVermeOverlay(VermeStaticOverlay):
    """Ablation: Verme's sectioned ids and ownership, but *plain Chord*
    finger targets and no containment filtering.

    This isolates the contribution of §4.4's finger displacement: with
    naive fingers a node's table contains same-type nodes from distant
    sections, handing a worm exactly the cross-island links Verme
    exists to remove.  Used by the ablation benchmarks.
    """

    def finger_target(self, node_id: int, k: int) -> int:
        return self.space.power_of_two_target(node_id, k)

    def _finger_entry_allowed(self, node_id: int, owner_id: int) -> bool:
        return True
