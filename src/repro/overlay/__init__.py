"""Static overlay snapshots (converged routing state from ids alone)."""

from .snapshot import (
    NaiveFingerVermeOverlay,
    OwnerDecision,
    StaticOverlay,
    VermeStaticOverlay,
)

__all__ = [
    "NaiveFingerVermeOverlay",
    "OwnerDecision",
    "StaticOverlay",
    "VermeStaticOverlay",
]
