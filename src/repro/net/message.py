"""Messages and wire-size accounting.

The simulator never serialises real bytes; instead every message
declares its wire size so that latency-plus-transfer delays and the
bandwidth figures (paper Fig. 7) can be computed.  The size constants
below follow the accounting style of p2psim/DHash: a fixed per-packet
header plus the sizes of the ids, addresses, certificates and payloads
a message carries.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from .addressing import NodeAddress

# Wire-size constants (bytes).
HEADER_BYTES = 40           # IP + UDP + application framing
ID_BYTES = 20               # a 160-bit identifier
ADDR_BYTES = 6              # IPv4 address + port
CERT_BYTES = 128            # node certificate: id, type, public key, CA sig
SIGNATURE_BYTES = 64        # a signed statement (Compromise-VerDi vouchers)
SEALED_OVERHEAD_BYTES = 32  # overhead of encrypting a reply for the initiator
RPC_META_BYTES = 12         # request ids, opcodes, flags
DEFAULT_BLOCK_BYTES = 8192  # DHash's classic 8 KiB block


ENTRY_BYTES = ID_BYTES + ADDR_BYTES  # one routing-table entry on the wire


def entry_bytes() -> int:
    """Wire size of one routing-table entry (id + network address)."""
    return ENTRY_BYTES


_msg_counter = itertools.count()


class Message:
    """One simulated packet.

    ``payload`` is an arbitrary Python object interpreted by the
    receiving protocol; ``size`` is its declared wire size in bytes;
    ``category`` buckets the message for maintenance-vs-lookup
    accounting; ``op_tag`` attributes it to one DHT operation for the
    per-operation bandwidth figures.

    A plain ``__slots__`` class: one instance exists per simulated
    packet, making this the single hottest allocation of the live
    protocol stack.
    """

    __slots__ = ("src", "dst", "payload", "size", "category", "op_tag", "msg_id")

    def __init__(
        self,
        src: NodeAddress,
        dst: NodeAddress,
        payload: Any,
        size: int,
        category: str = "other",
        op_tag: Optional[int] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size = size if size >= HEADER_BYTES else HEADER_BYTES
        self.category = category
        self.op_tag = op_tag
        self.msg_id = next(_msg_counter)

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src}, dst={self.dst}, size={self.size}, "
            f"category={self.category!r}, op_tag={self.op_tag}, "
            f"msg_id={self.msg_id})"
        )
