"""Messages and wire-size accounting.

The simulator never serialises real bytes; instead every message
declares its wire size so that latency-plus-transfer delays and the
bandwidth figures (paper Fig. 7) can be computed.  The size constants
below follow the accounting style of p2psim/DHash: a fixed per-packet
header plus the sizes of the ids, addresses, certificates and payloads
a message carries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .addressing import NodeAddress

# Wire-size constants (bytes).
HEADER_BYTES = 40           # IP + UDP + application framing
ID_BYTES = 20               # a 160-bit identifier
ADDR_BYTES = 6              # IPv4 address + port
CERT_BYTES = 128            # node certificate: id, type, public key, CA sig
SIGNATURE_BYTES = 64        # a signed statement (Compromise-VerDi vouchers)
SEALED_OVERHEAD_BYTES = 32  # overhead of encrypting a reply for the initiator
RPC_META_BYTES = 12         # request ids, opcodes, flags
DEFAULT_BLOCK_BYTES = 8192  # DHash's classic 8 KiB block


def entry_bytes() -> int:
    """Wire size of one routing-table entry (id + network address)."""
    return ID_BYTES + ADDR_BYTES


_msg_counter = itertools.count()


@dataclass
class Message:
    """One simulated packet.

    ``payload`` is an arbitrary Python object interpreted by the
    receiving protocol; ``size`` is its declared wire size in bytes;
    ``category`` buckets the message for maintenance-vs-lookup
    accounting; ``op_tag`` attributes it to one DHT operation for the
    per-operation bandwidth figures.
    """

    src: NodeAddress
    dst: NodeAddress
    payload: Any
    size: int
    category: str = "other"
    op_tag: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def __post_init__(self) -> None:
        if self.size < HEADER_BYTES:
            self.size = HEADER_BYTES
