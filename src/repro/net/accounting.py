"""Byte accounting for bandwidth figures.

Fig. 7 reports bytes per DHT operation; §7.1 compares maintenance and
lookup bandwidth between Chord and Verme.  Every message sent through
:class:`repro.net.network.Network` is recorded here, bucketed both by
*category* (``maintenance``, ``lookup``, ``data`` ...) and, when the
message belongs to a tagged DHT operation, by the operation tag.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional


class ByteAccounting:
    """Running byte and message counters, plus cause-tagged drops."""

    def __init__(self) -> None:
        self.bytes_by_category: Dict[str, int] = defaultdict(int)
        self.messages_by_category: Dict[str, int] = defaultdict(int)
        self.bytes_by_op: Dict[int, int] = defaultdict(int)
        self.dropped_by_cause: Dict[str, int] = defaultdict(int)
        self.total_dropped = 0

    # The grand totals are derived from the per-category buckets rather
    # than maintained alongside them: recording runs once per simulated
    # packet (the accounting hot path, inlined in Network.send), while
    # the totals are read a handful of times per experiment.

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_category.values())

    def record(self, category: str, size: int, op_tag: Optional[int] = None) -> None:
        self.bytes_by_category[category] += size
        self.messages_by_category[category] += 1
        if op_tag is not None:
            self.bytes_by_op[op_tag] += size

    def record_drop(self, cause: str) -> None:
        """Count one undelivered message under its cause ("loss",
        "dead-destination", or a fault-injection cause)."""
        self.dropped_by_cause[cause] += 1
        self.total_dropped += 1

    def bytes_for_op(self, op_tag: int) -> int:
        return self.bytes_by_op.get(op_tag, 0)

    def category_bytes(self, category: str) -> int:
        return self.bytes_by_category.get(category, 0)

    def dropped(self, cause: str) -> int:
        return self.dropped_by_cause.get(cause, 0)

    def reset(self) -> None:
        self.bytes_by_category.clear()
        self.messages_by_category.clear()
        self.bytes_by_op.clear()
        self.dropped_by_cause.clear()
        self.total_dropped = 0
