"""Network substrate: addresses, messages, latency models, topologies."""

from .accounting import ByteAccounting
from .addressing import NodeAddress
from .gtitm import (
    DEFAULT_ACCESS_CLASSES,
    AccessClass,
    GtItmConfig,
    GtItmTopology,
    gtitm_topology,
)
from .king import KING_MEAN_RTT_S, KING_NUM_HOSTS, king_matrix
from .latency import (
    BandwidthModel,
    ConstantBandwidth,
    ConstantLatency,
    LatencyModel,
    MatrixBandwidth,
    MatrixLatency,
    transfer_delay,
)
from .message import (
    ADDR_BYTES,
    CERT_BYTES,
    DEFAULT_BLOCK_BYTES,
    HEADER_BYTES,
    ID_BYTES,
    RPC_META_BYTES,
    SEALED_OVERHEAD_BYTES,
    SIGNATURE_BYTES,
    Message,
    entry_bytes,
)
from .network import Network

__all__ = [
    "ADDR_BYTES",
    "AccessClass",
    "BandwidthModel",
    "ByteAccounting",
    "CERT_BYTES",
    "ConstantBandwidth",
    "ConstantLatency",
    "DEFAULT_ACCESS_CLASSES",
    "DEFAULT_BLOCK_BYTES",
    "GtItmConfig",
    "GtItmTopology",
    "HEADER_BYTES",
    "ID_BYTES",
    "KING_MEAN_RTT_S",
    "KING_NUM_HOSTS",
    "LatencyModel",
    "MatrixBandwidth",
    "MatrixLatency",
    "Message",
    "Network",
    "NodeAddress",
    "RPC_META_BYTES",
    "SEALED_OVERHEAD_BYTES",
    "SIGNATURE_BYTES",
    "entry_bytes",
    "gtitm_topology",
    "king_matrix",
    "transfer_delay",
]
