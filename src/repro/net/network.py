"""Message delivery fabric.

``Network`` connects protocol endpoints over a latency (and optional
bandwidth) model.  Sending is fire-and-forget: the message is delivered
to the destination's handler after the propagation (plus serialisation)
delay, silently dropped if the destination has left the overlay by
then, or dropped up-front by the optional loss model or by the fault
plan (partitions, degraded links, gray failures — see
:mod:`repro.faults`).  Request/response matching, timeouts and retries
live one layer up, in :mod:`repro.chord.rpc`.

Every undelivered message is counted under a *cause* tag so that loss
tests and resilience experiments can tell uniform loss, messages to
dead incarnations, and injected faults apart:

* ``"loss"`` — the Bernoulli loss model;
* ``"dead-destination"`` — no endpoint registered at delivery time;
* fault causes (``"partition"``, ``"link-fault"``, ``"gray-failure"``)
  — whatever the :class:`~repro.faults.FaultPlan` reports.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, Optional, Sequence

from ..faults.plan import FaultPlan
from ..obs import OBS
from ..sim import Simulator
from .accounting import ByteAccounting
from .addressing import NodeAddress
from .latency import BandwidthModel, LatencyModel
from .message import HEADER_BYTES, Message, _msg_counter

Handler = Callable[[Message], None]

#: Cause tags for the network's own drop decisions.
CAUSE_LOSS = "loss"
CAUSE_DEAD = "dead-destination"


class Network:
    """Delivers :class:`Message` objects between registered endpoints."""

    def __init__(
        self,
        sim: Simulator,
        latency_model: LatencyModel,
        bandwidth_model: Optional[BandwidthModel] = None,
        accounting: Optional[ByteAccounting] = None,
        loss_rate: float = 0.0,
        loss_rng: Optional[random.Random] = None,
        contended_uplinks: bool = False,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        """``contended_uplinks`` serialises a host's outgoing transfers
        on its uplink (back-to-back departures) instead of letting
        overlapping sends proceed independently — a higher-fidelity
        model for hosts pushing several bulk transfers at once.  It
        requires a bandwidth model.  ``fault_plan`` is consulted per
        message and may drop it or add latency."""
        if loss_rate and loss_rng is None:
            raise ValueError("a loss_rate needs a loss_rng for determinism")
        if contended_uplinks and bandwidth_model is None:
            raise ValueError("contended uplinks require a bandwidth model")
        self.sim = sim
        self.latency_model = latency_model  # property: also primes row caches
        self.bandwidth_model = bandwidth_model
        self.accounting = accounting if accounting is not None else ByteAccounting()
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self.contended_uplinks = contended_uplinks
        self.fault_plan = fault_plan
        self._uplink_free_at: Dict[int, float] = {}
        self._endpoints: Dict[NodeAddress, Handler] = {}
        self.drops_by_cause: Dict[str, int] = {}
        # Send fast path: matrix models expose a row view of plain
        # Python floats (no per-call numpy-scalar churn); fall back to
        # the scalar protocol methods for anything else.
        self._bandwidth_row = (
            getattr(bandwidth_model, "row", None)
            if bandwidth_model is not None
            else None
        )
        # A single bound delivery callback avoids a per-send allocation.
        self._deliver_cb = self._deliver

    @property
    def latency_model(self) -> LatencyModel:
        return self._latency_model

    @latency_model.setter
    def latency_model(self, model: LatencyModel) -> None:
        """Swapping the model (tests do) also refreshes the send fast
        path: the optional ``row`` view and the per-source row cache
        (``None`` for scalar-only models, which skips the cache branch
        entirely on :meth:`send`)."""
        self._latency_model = model
        self._latency_row = getattr(model, "row", None)
        self._lat_rows: Optional[Dict[int, Sequence[float]]] = (
            {} if self._latency_row is not None else None
        )

    # -- membership ----------------------------------------------------------

    def register(self, address: NodeAddress, handler: Handler) -> None:
        if address in self._endpoints:
            raise ValueError(f"address {address} already registered")
        if not 0 <= address.host_slot < self.latency_model.num_hosts:
            raise ValueError(
                f"host slot {address.host_slot} outside latency model "
                f"({self.latency_model.num_hosts} hosts)"
            )
        self._endpoints[address] = handler

    def unregister(self, address: NodeAddress) -> None:
        self._endpoints.pop(address, None)

    def is_registered(self, address: NodeAddress) -> bool:
        return address in self._endpoints

    # -- drop bookkeeping ----------------------------------------------------

    @property
    def dropped_messages(self) -> int:
        """Total undelivered messages, all causes."""
        return sum(self.drops_by_cause.values())

    @property
    def fault_drops(self) -> int:
        """Messages the fault plan killed (everything but loss/dead)."""
        return self.dropped_messages - self.dropped(CAUSE_LOSS) - self.dropped(
            CAUSE_DEAD
        )

    def dropped(self, cause: str) -> int:
        return self.drops_by_cause.get(cause, 0)

    def _drop(self, cause: str) -> None:
        self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1
        self.accounting.record_drop(cause)
        # Drops are off the send fast path, so the cause-tagged registry
        # counters cost nothing on delivered messages.
        metrics = OBS.metrics
        if metrics is not None:
            metrics.counter("net.drops." + cause).inc()
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "net.drop", self.sim.now, lane="net", args={"cause": cause}
            )

    # -- delivery -------------------------------------------------------------

    def send(
        self,
        src: NodeAddress,
        dst: NodeAddress,
        payload: Any,
        size: int,
        category: str = "other",
        op_tag: Optional[int] = None,
    ) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        Bytes are accounted at send time (the sender pays for lost
        messages too, as on a real network).
        """
        src_slot = src.host_slot
        dst_slot = dst.host_slot
        # Inlined ByteAccounting.record: one call per simulated packet
        # (the grand totals are derived properties, not maintained here).
        acct = self.accounting
        acct.bytes_by_category[category] += size
        acct.messages_by_category[category] += 1
        if op_tag is not None:
            acct.bytes_by_op[op_tag] += size
        if self.loss_rate and self._loss_rng.random() < self.loss_rate:
            self._drop(CAUSE_LOSS)
            return
        extra_latency = 0.0
        if self.fault_plan is not None:
            verdict = self.fault_plan.verdict(src_slot, dst_slot, self.sim.now)
            if not verdict.deliver:
                self._drop(verdict.cause or "fault")
                return
            extra_latency = verdict.extra_latency_s
        rows = self._lat_rows
        if rows is not None:
            # Rows are cached after a host's first send, so the hit path
            # is two plain subscripts (the except costs nothing then).
            try:
                latency = rows[src_slot][dst_slot]
            except KeyError:
                latency = (rows.setdefault(src_slot, self._latency_row(src_slot)))[
                    dst_slot
                ]
        else:
            latency = self.latency_model.latency(src_slot, dst_slot)
        if extra_latency:
            latency += extra_latency
        # The Message is only materialised once the drop checks have
        # passed (a dropped send costs no allocation), and its __init__
        # is inlined — one instance per packet makes this the fabric's
        # hottest allocation.
        msg = Message.__new__(Message)
        msg.src = src
        msg.dst = dst
        msg.payload = payload
        msg.size = size if size >= HEADER_BYTES else HEADER_BYTES
        msg.category = category
        msg.op_tag = op_tag
        msg.msg_id = next(_msg_counter)
        bandwidth_model = self.bandwidth_model
        if bandwidth_model is None:
            # Fire-and-forget delivery with Simulator.call_after inlined:
            # one heap entry per packet, no handle, no extra frame.
            # (latency is non-negative by model contract.)
            sim = self.sim
            seq = sim._next_seq
            sim._next_seq = seq + 1
            heapq.heappush(
                sim._queue, (sim._now + latency, seq, self._deliver_cb, (msg,))
            )
            sim._live += 1
            return
        bandwidth_row = self._bandwidth_row
        if bandwidth_row is not None:
            bandwidth = bandwidth_row(src_slot)[dst_slot]
        else:
            bandwidth = bandwidth_model.bandwidth(src_slot, dst_slot)
        if self.contended_uplinks and bandwidth:
            # Serialise on the sender's uplink: this transfer starts
            # when the previous one has fully departed.
            now = self.sim.now
            start = max(now, self._uplink_free_at.get(src_slot, now))
            departure = start + size / bandwidth
            self._uplink_free_at[src_slot] = departure
            self.sim.call_after(departure - now + latency, self._deliver, msg)
            return
        if bandwidth:
            self.sim.call_after(latency + size / bandwidth, self._deliver, msg)
        else:
            self.sim.call_after(latency, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        try:
            handler = self._endpoints[msg.dst]
        except KeyError:
            self._drop(CAUSE_DEAD)
            return
        handler(msg)
