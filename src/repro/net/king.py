"""Synthetic stand-in for the p2psim King latency data set.

The paper's Fig. 5 experiments used a 1740x1740 matrix of inter-node
latencies measured between DNS servers with the King method (mean RTT
198 ms).  That file is no longer distributed, so we synthesise a matrix
with the same qualitative properties:

* hosts embedded in a low-dimensional Euclidean space (geography),
* a per-pair multiplicative lognormal jitter, applied *asymmetrically*
  so forward and reverse one-way delays differ slightly (as real King
  measurements do, and as triangle-inequality violations require),
* a minimum per-hop floor, and
* calibration of the overall scale so the mean RTT matches the paper's
  198 ms (configurable).

Only the RTT *distribution* matters to the reproduced results; see
DESIGN.md §5 for the substitution argument.
"""

from __future__ import annotations

import numpy as np

from .latency import MatrixLatency

KING_NUM_HOSTS = 1740
KING_MEAN_RTT_S = 0.198


def king_matrix(
    num_hosts: int = KING_NUM_HOSTS,
    mean_rtt_s: float = KING_MEAN_RTT_S,
    seed: int = 0,
    dimensions: int = 5,
    jitter_sigma: float = 0.25,
    floor_s: float = 0.002,
) -> MatrixLatency:
    """Build a synthetic King-style one-way latency matrix.

    ``jitter_sigma`` is the sigma of the lognormal multiplicative noise;
    ``floor_s`` is the minimum one-way latency between distinct hosts.
    """
    if num_hosts < 2:
        raise ValueError("need at least two hosts")
    rng = np.random.default_rng(seed)
    points = rng.random((num_hosts, dimensions))
    # Pairwise Euclidean distances (symmetric base geography).
    diff = points[:, None, :] - points[None, :, :]
    base = np.sqrt((diff * diff).sum(axis=2))
    # Asymmetric lognormal jitter per directed pair.
    jitter = rng.lognormal(mean=0.0, sigma=jitter_sigma, size=(num_hosts, num_hosts))
    one_way = base * jitter
    np.fill_diagonal(one_way, 0.0)
    one_way = np.maximum(one_way, floor_s)
    np.fill_diagonal(one_way, 0.0)
    # Calibrate so the mean RTT over distinct pairs equals mean_rtt_s.
    n = num_hosts
    current_mean_rtt = (one_way.sum() + one_way.T.sum()) / (n * (n - 1))
    one_way *= mean_rtt_s / current_mean_rtt
    np.fill_diagonal(one_way, 0.0)
    return MatrixLatency(one_way)
