"""Synthetic stand-in for the p2psim King latency data set.

The paper's Fig. 5 experiments used a 1740x1740 matrix of inter-node
latencies measured between DNS servers with the King method (mean RTT
198 ms).  That file is no longer distributed, so we synthesise a matrix
with the same qualitative properties:

* hosts embedded in a low-dimensional Euclidean space (geography),
* a per-pair multiplicative lognormal jitter, applied *asymmetrically*
  so forward and reverse one-way delays differ slightly (as real King
  measurements do, and as triangle-inequality violations require),
* a minimum per-hop floor, and
* calibration of the overall scale so the mean RTT matches the paper's
  198 ms (configurable).

Only the RTT *distribution* matters to the reproduced results; see
DESIGN.md §5 for the substitution argument.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from .latency import MatrixLatency

KING_NUM_HOSTS = 1740
KING_MEAN_RTT_S = 0.198


def king_matrix(
    num_hosts: int = KING_NUM_HOSTS,
    mean_rtt_s: float = KING_MEAN_RTT_S,
    seed: int = 0,
    dimensions: int = 5,
    jitter_sigma: float = 0.25,
    floor_s: float = 0.002,
) -> MatrixLatency:
    """Build a synthetic King-style one-way latency matrix.

    ``jitter_sigma`` is the sigma of the lognormal multiplicative noise;
    ``floor_s`` is the minimum one-way latency between distinct hosts.
    """
    if num_hosts < 2:
        raise ValueError("need at least two hosts")
    rng = np.random.default_rng(seed)
    points = rng.random((num_hosts, dimensions))
    # Pairwise Euclidean distances (symmetric base geography).
    diff = points[:, None, :] - points[None, :, :]
    base = np.sqrt((diff * diff).sum(axis=2))
    # Asymmetric lognormal jitter per directed pair.
    jitter = rng.lognormal(mean=0.0, sigma=jitter_sigma, size=(num_hosts, num_hosts))
    one_way = base * jitter
    np.fill_diagonal(one_way, 0.0)
    one_way = np.maximum(one_way, floor_s)
    np.fill_diagonal(one_way, 0.0)
    # Calibrate so the mean RTT over distinct pairs equals mean_rtt_s.
    n = num_hosts
    current_mean_rtt = (one_way.sum() + one_way.T.sum()) / (n * (n - 1))
    one_way *= mean_rtt_s / current_mean_rtt
    np.fill_diagonal(one_way, 0.0)
    return MatrixLatency(one_way)


class KingCoordinates:
    """O(n)-state King-style latency model for large host counts.

    :func:`king_matrix` materialises a dense ``(n, n)`` matrix — 800 MB
    of float64 at 10k hosts before counting the construction
    temporaries — which caps the lookup experiments near 2k hosts.
    This model keeps only per-host state (coordinates plus two jitter
    factors) and computes each directed pair's one-way delay on demand:

    * the same low-dimensional Euclidean geography as the matrix model,
    * per-host *outgoing* and *incoming* lognormal factors whose product
      plays the role of the matrix model's per-pair jitter (each drawn
      with ``sigma/sqrt(2)`` so the product of two independent factors
      has the same lognormal sigma as one per-pair draw),
    * the same latency floor, and
    * scale calibration from a fixed-size random sample of directed
      pairs (exact summation over 10k^2 pairs would defeat the point).

    Computed pairs are memoised in a plain dict keyed by
    ``a * num_hosts + b``, so steady-state overlay traffic — each node
    talking to a bounded peer set — pays the trigonometry once per
    directed edge and a dict hit afterwards.  There is deliberately no
    ``row`` view: materialising rows is exactly the O(n^2) cost this
    model exists to avoid, so :class:`~repro.net.network.Network` uses
    the scalar protocol path.
    """

    def __init__(
        self,
        num_hosts: int,
        mean_rtt_s: float = KING_MEAN_RTT_S,
        seed: int = 0,
        dimensions: int = 5,
        jitter_sigma: float = 0.25,
        floor_s: float = 0.002,
        calibration_pairs: int = 200_000,
    ) -> None:
        if num_hosts < 2:
            raise ValueError("need at least two hosts")
        rng = np.random.default_rng(seed)
        points = rng.random((num_hosts, dimensions))
        sigma = jitter_sigma / math.sqrt(2.0)
        out = rng.lognormal(mean=0.0, sigma=sigma, size=num_hosts)
        incoming = rng.lognormal(mean=0.0, sigma=sigma, size=num_hosts)
        self.num_hosts = num_hosts
        self.floor_s = floor_s
        # Calibrate the overall scale on a sample of directed pairs so
        # the mean RTT matches ``mean_rtt_s`` (in expectation; the
        # sample mean of >=2e5 pairs is well within a percent).
        m = min(calibration_pairs, num_hosts * (num_hosts - 1))
        a = rng.integers(0, num_hosts, size=m)
        b = rng.integers(0, num_hosts, size=m)
        distinct = a != b
        a, b = a[distinct], b[distinct]
        base = np.sqrt(((points[a] - points[b]) ** 2).sum(axis=1))
        fwd = np.maximum(base * out[a] * incoming[b], floor_s)
        rev = np.maximum(base * out[b] * incoming[a], floor_s)
        self._scale = float(mean_rtt_s / (fwd + rev).mean())
        # Plain-Python per-host state: the scalar path runs once per
        # uncached directed pair, in pure Python.
        self._points: List[List[float]] = points.tolist()
        self._out: List[float] = out.tolist()
        self._in: List[float] = incoming.tolist()
        self._cache: Dict[int, float] = {}

    def latency(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        key = a * self.num_hosts + b
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        pa = self._points[a]
        pb = self._points[b]
        total = 0.0
        for i in range(len(pa)):
            d = pa[i] - pb[i]
            total += d * d
        one_way = math.sqrt(total) * self._out[a] * self._in[b]
        if one_way < self.floor_s:
            one_way = self.floor_s
        value = one_way * self._scale
        self._cache[key] = value
        return value
