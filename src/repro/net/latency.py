"""Latency and bandwidth models between physical hosts.

A model maps a pair of host slots to a one-way latency in seconds and,
optionally, to an available bandwidth in bytes/second used for bulk
transfers.  Concrete topologies (synthetic King, GT-ITM) construct the
matrix forms defined here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np


@runtime_checkable
class LatencyModel(Protocol):
    """One-way host-to-host latency in seconds."""

    num_hosts: int

    def latency(self, a: int, b: int) -> float: ...


@runtime_checkable
class BandwidthModel(Protocol):
    """Available end-to-end bandwidth in bytes/second."""

    def bandwidth(self, a: int, b: int) -> float: ...


@dataclass(frozen=True)
class ConstantLatency:
    """Every pair is ``rtt/2`` away; handy for unit tests."""

    num_hosts: int
    one_way: float = 0.05

    def latency(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        return self.one_way


class MatrixLatency:
    """Latency from a dense ``(n, n)`` matrix of one-way delays.

    Scalar indexing into a numpy array allocates a numpy scalar per
    call, which dominates :meth:`latency` in message-heavy runs.  Rows
    are therefore materialised lazily as plain Python lists (native
    floats, O(1) lookups) and shared between :meth:`latency` and the
    :meth:`row` view that :class:`~repro.net.network.Network` uses on
    its send fast path.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("latency matrix must be square")
        if (matrix < 0).any():
            raise ValueError("latencies must be non-negative")
        self._matrix = matrix
        self.num_hosts = matrix.shape[0]
        self._rows: List[Optional[List[float]]] = [None] * self.num_hosts

    def row(self, a: int) -> Sequence[float]:
        """One-way delays out of host ``a`` as a plain-float list.

        The returned list is cached and shared; callers must not
        mutate it.
        """
        row = self._rows[a]
        if row is None:
            row = self._rows[a] = self._matrix[a].tolist()
        return row

    def latency(self, a: int, b: int) -> float:
        row = self._rows[a]
        if row is None:
            row = self._rows[a] = self._matrix[a].tolist()
        return row[b]

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix

    def mean_rtt(self) -> float:
        """Mean round-trip time over distinct host pairs (seconds)."""
        n = self.num_hosts
        if n < 2:
            return 0.0
        total = self._matrix.sum() + self._matrix.T.sum()
        self_total = 2.0 * np.trace(self._matrix)
        return float((total - self_total) / (n * (n - 1)))


class MatrixBandwidth:
    """Bandwidth from a dense ``(n, n)`` matrix of bytes/second."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("bandwidth matrix must be square")
        if (matrix <= 0).any():
            raise ValueError("bandwidths must be positive")
        self._matrix = matrix
        self.num_hosts = matrix.shape[0]
        self._rows: List[Optional[List[float]]] = [None] * self.num_hosts

    def row(self, a: int) -> Sequence[float]:
        """Bandwidths out of host ``a`` as a cached plain-float list."""
        row = self._rows[a]
        if row is None:
            row = self._rows[a] = self._matrix[a].tolist()
        return row

    def bandwidth(self, a: int, b: int) -> float:
        row = self._rows[a]
        if row is None:
            row = self._rows[a] = self._matrix[a].tolist()
        return row[b]


@dataclass(frozen=True)
class ConstantBandwidth:
    """Uniform bandwidth for every pair (bytes/second)."""

    bytes_per_second: float = 1.25e6  # 10 Mbit/s

    def bandwidth(self, a: int, b: int) -> float:
        return self.bytes_per_second


def transfer_delay(
    size_bytes: int,
    latency_s: float,
    bandwidth: Optional[float],
) -> float:
    """Propagation plus serialisation delay for one message."""
    delay = latency_s
    if bandwidth is not None and bandwidth > 0:
        delay += size_bytes / bandwidth
    return delay
