"""Network addresses for simulated nodes.

An address identifies a protocol endpoint; the ``host_slot`` indexes the
underlying *physical host* in the latency/bandwidth matrices, so that a
node which leaves and is replaced by a fresh node on the same machine
(the churn model) keeps its network coordinates.
"""

from __future__ import annotations


class NodeAddress:
    """An endpoint: a host slot plus an incarnation number.

    Two incarnations of the same host slot are *different* endpoints —
    messages addressed to a dead incarnation are dropped even if a new
    node has since joined from the same host.

    Addresses key every endpoint table and routing-state lookup, so
    this is a ``__slots__`` class with the hash precomputed once: the
    tuple-building ``__hash__`` a frozen dataclass generates showed up
    as a top-ten cost in protocol-heavy profiles.  Treat instances as
    immutable (equality and the cached hash assume it).
    """

    __slots__ = ("host_slot", "incarnation", "_hash")

    def __init__(self, host_slot: int, incarnation: int = 0) -> None:
        self.host_slot = host_slot
        self.incarnation = incarnation
        self._hash = hash((host_slot, incarnation))

    def next_incarnation(self) -> "NodeAddress":
        return NodeAddress(self.host_slot, self.incarnation + 1)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NodeAddress):
            return (
                self.host_slot == other.host_slot
                and self.incarnation == other.incarnation
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"NodeAddress(host_slot={self.host_slot}, incarnation={self.incarnation})"

    def __str__(self) -> str:
        return f"h{self.host_slot}.{self.incarnation}"

    def __getstate__(self):
        return (self.host_slot, self.incarnation)

    def __setstate__(self, state) -> None:
        self.host_slot, self.incarnation = state
        self._hash = hash(state)
