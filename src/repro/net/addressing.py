"""Network addresses for simulated nodes.

An address identifies a protocol endpoint; the ``host_slot`` indexes the
underlying *physical host* in the latency/bandwidth matrices, so that a
node which leaves and is replaced by a fresh node on the same machine
(the churn model) keeps its network coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeAddress:
    """An endpoint: a host slot plus an incarnation number.

    Two incarnations of the same host slot are *different* endpoints —
    messages addressed to a dead incarnation are dropped even if a new
    node has since joined from the same host.
    """

    host_slot: int
    incarnation: int = 0

    def next_incarnation(self) -> "NodeAddress":
        return NodeAddress(self.host_slot, self.incarnation + 1)

    def __str__(self) -> str:
        return f"h{self.host_slot}.{self.incarnation}"
