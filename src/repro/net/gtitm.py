"""GT-ITM-style transit-stub topology generator.

Paper §7.2 switched to the GT-ITM model for the DHT experiments because
the King matrix has no bandwidth information.  GT-ITM itself is an old
C program; this module reproduces its *transit-stub* structure on
networkx:

* ``transit_domains`` fully meshed transit domains of
  ``transit_nodes_per_domain`` routers each, connected by inter-domain
  links,
* each transit router hangs ``stubs_per_transit_node`` stub domains of
  ``stub_nodes_per_stub`` routers (ring + chords inside a stub),
* hosts attach to stub routers via access links whose bandwidth is
  drawn from access classes (the only practical bottleneck, as in the
  DSL/cable era the paper's numbers come from).

Host-to-host one-way latency is the shortest-path latency through the
router graph plus both access links; host-to-host bandwidth is the
minimum of the two access-link bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

from .latency import MatrixBandwidth, MatrixLatency


class HostLatency:
    """Host-pair latency computed from O(routers^2) state.

    The dense host matrix costs ``hosts^2`` floats (800 MB at 10k
    hosts), but every entry is just ``router_dist + 2 * access``: the
    per-pair information lives entirely in the *router* distance matrix
    (a few hundred routers regardless of host count).  This model keeps
    the router matrix plus the host→router mapping and evaluates pairs
    on demand — bit-identical to the dense matrix (same float64 sum of
    the same two terms), with no ``row`` view (a row is the O(hosts)
    object this model exists to avoid).
    """

    def __init__(
        self,
        router_dist_rows: List[List[float]],
        host_router_index: List[int],
        access_latency_s: float,
    ) -> None:
        self._rows = router_dist_rows
        self._host_r = host_router_index
        # Matches the dense path's ``+ 2 * access`` term exactly.
        self._two_access = 2 * access_latency_s
        self.num_hosts = len(host_router_index)

    def latency(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        host_r = self._host_r
        return self._rows[host_r[a]][host_r[b]] + self._two_access


class HostBandwidth:
    """Host-pair bandwidth from per-host access links, O(hosts) state.

    A transfer from ``a`` to ``b`` is bottlenecked by ``a``'s uplink or
    ``b``'s downlink, whichever is slower — the same ``min`` the dense
    ``hosts^2`` matrix tabulates.
    """

    def __init__(self, host_up: List[float], host_down: List[float]) -> None:
        self._up = host_up
        self._down = host_down
        self.num_hosts = len(host_up)

    def bandwidth(self, a: int, b: int) -> float:
        up = self._up[a]
        down = self._down[b]
        return up if up < down else down


@dataclass(frozen=True)
class AccessClass:
    """One access-link class: down/up bandwidth (bytes/s) and weight.

    Residential access links of the paper's era are asymmetric — the
    uplink, not the downlink, bottlenecks peer-to-peer transfers — and
    that asymmetry is what makes per-hop data forwarding (Secure-VerDi)
    expensive in Fig. 6.
    """

    name: str
    down_bytes_per_second: float
    up_bytes_per_second: float
    weight: float


DEFAULT_ACCESS_CLASSES: Tuple[AccessClass, ...] = (
    AccessClass("dsl", 1.5e6 / 8, 128e3 / 8, 0.35),      # 1.5 Mbit down / 128 kbit up
    AccessClass("cable", 10e6 / 8, 384e3 / 8, 0.45),     # 10 Mbit down / 384 kbit up
    AccessClass("ethernet", 100e6 / 8, 100e6 / 8, 0.20),  # symmetric 100 Mbit
)


@dataclass(frozen=True)
class GtItmConfig:
    """Shape and link parameters of the transit-stub topology.

    Latencies are one-way seconds; jitter is a +/- uniform fraction.
    """

    num_hosts: int
    transit_domains: int = 4
    transit_nodes_per_domain: int = 4
    stubs_per_transit_node: int = 3
    stub_nodes_per_stub: int = 8
    interdomain_latency_s: float = 0.030
    intradomain_latency_s: float = 0.015
    transit_stub_latency_s: float = 0.008
    intrastub_latency_s: float = 0.004
    access_latency_s: float = 0.001
    latency_jitter: float = 0.2
    access_classes: Tuple[AccessClass, ...] = DEFAULT_ACCESS_CLASSES
    seed: int = 0

    def num_stub_routers(self) -> int:
        return (
            self.transit_domains
            * self.transit_nodes_per_domain
            * self.stubs_per_transit_node
            * self.stub_nodes_per_stub
        )


@dataclass
class GtItmTopology:
    """The generated topology plus the derived host-pair models.

    The scalar :attr:`host_latency` / :attr:`host_bandwidth` models are
    built eagerly from the O(routers^2) shortest-path matrix and are
    what the DHT experiments feed to the network — they scale to any
    host count.  The dense :attr:`latency` / :attr:`bandwidth` matrices
    are equivalent tabulations, built lazily (only topology tests and
    small analyses want a whole ``hosts^2`` matrix in memory).
    """

    config: GtItmConfig
    router_graph: nx.Graph
    host_router: np.ndarray          # router index per host
    host_down_bw: np.ndarray         # download bytes/s per host
    host_up_bw: np.ndarray           # upload bytes/s per host

    def __post_init__(self) -> None:
        routers = sorted(self.router_graph.nodes())
        index = {r: i for i, r in enumerate(routers)}
        n_routers = len(routers)
        dist = np.full((n_routers, n_routers), np.inf)
        for src, lengths in nx.all_pairs_dijkstra_path_length(
            self.router_graph, weight="latency"
        ):
            i = index[src]
            for dst, d in lengths.items():
                dist[i, index[dst]] = d
        if np.isinf(dist).any():
            raise ValueError("router graph is not connected")
        self._router_dist = dist
        self._host_r: List[int] = [index[r] for r in self.host_router]
        self.host_latency = HostLatency(
            dist.tolist(), self._host_r, self.config.access_latency_s
        )
        self.host_bandwidth = HostBandwidth(
            self.host_up_bw.tolist(), self.host_down_bw.tolist()
        )
        self._latency: Optional[MatrixLatency] = None
        self._bandwidth: Optional[MatrixBandwidth] = None

    @property
    def latency(self) -> MatrixLatency:
        """Dense host-pair latency matrix (lazy; O(hosts^2) memory)."""
        if self._latency is None:
            self._latency = MatrixLatency(self._host_latency_matrix())
        return self._latency

    @property
    def bandwidth(self) -> MatrixBandwidth:
        """Dense host-pair bandwidth matrix (lazy; O(hosts^2) memory)."""
        if self._bandwidth is None:
            self._bandwidth = MatrixBandwidth(self._host_bandwidth_matrix())
        return self._bandwidth

    def _host_latency_matrix(self) -> np.ndarray:
        host_r = np.array(self._host_r)
        access = self.config.access_latency_s
        matrix = self._router_dist[np.ix_(host_r, host_r)] + 2 * access
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def _host_bandwidth_matrix(self) -> np.ndarray:
        # A transfer from a to b is bottlenecked by a's uplink or b's
        # downlink, whichever is slower (the backbone is provisioned).
        return np.minimum(self.host_up_bw[:, None], self.host_down_bw[None, :])


def _jittered(rng: np.random.Generator, base: float, jitter: float) -> float:
    return base * (1.0 + jitter * (2.0 * rng.random() - 1.0))


def gtitm_topology(config: GtItmConfig) -> GtItmTopology:
    """Generate a transit-stub topology per ``config``.

    Router node labels are ``("t", domain, i)`` for transit routers and
    ``("s", domain, i, stub, j)`` for stub routers.
    """
    rng = np.random.default_rng(config.seed)
    graph = nx.Graph()
    cfg = config

    transit_routers: List[List[tuple]] = []
    for d in range(cfg.transit_domains):
        domain = [("t", d, i) for i in range(cfg.transit_nodes_per_domain)]
        transit_routers.append(domain)
        graph.add_nodes_from(domain)
        # Full mesh inside a transit domain.
        for i in range(len(domain)):
            for j in range(i + 1, len(domain)):
                graph.add_edge(
                    domain[i],
                    domain[j],
                    latency=_jittered(rng, cfg.intradomain_latency_s, cfg.latency_jitter),
                )
    # Ring of transit domains plus one random chord per domain.
    for d in range(cfg.transit_domains):
        nxt = (d + 1) % cfg.transit_domains
        if nxt == d:
            continue
        a = transit_routers[d][int(rng.integers(cfg.transit_nodes_per_domain))]
        b = transit_routers[nxt][int(rng.integers(cfg.transit_nodes_per_domain))]
        graph.add_edge(
            a, b, latency=_jittered(rng, cfg.interdomain_latency_s, cfg.latency_jitter)
        )
    if cfg.transit_domains > 2:
        for d in range(cfg.transit_domains):
            other = int(rng.integers(cfg.transit_domains))
            if other == d:
                continue
            a = transit_routers[d][int(rng.integers(cfg.transit_nodes_per_domain))]
            b = transit_routers[other][int(rng.integers(cfg.transit_nodes_per_domain))]
            if not graph.has_edge(a, b):
                graph.add_edge(
                    a,
                    b,
                    latency=_jittered(
                        rng, cfg.interdomain_latency_s, cfg.latency_jitter
                    ),
                )

    stub_routers: List[tuple] = []
    for d in range(cfg.transit_domains):
        for i, transit in enumerate(transit_routers[d]):
            for s in range(cfg.stubs_per_transit_node):
                stub = [
                    ("s", d, i, s, j) for j in range(cfg.stub_nodes_per_stub)
                ]
                stub_routers.extend(stub)
                graph.add_nodes_from(stub)
                # Ring inside the stub domain ...
                for j in range(len(stub)):
                    graph.add_edge(
                        stub[j],
                        stub[(j + 1) % len(stub)],
                        latency=_jittered(
                            rng, cfg.intrastub_latency_s, cfg.latency_jitter
                        ),
                    )
                # ... plus one chord for redundancy.
                if len(stub) > 3:
                    a, b = stub[0], stub[len(stub) // 2]
                    if not graph.has_edge(a, b):
                        graph.add_edge(
                            a,
                            b,
                            latency=_jittered(
                                rng, cfg.intrastub_latency_s, cfg.latency_jitter
                            ),
                        )
                # Uplink: first stub router to the transit router.
                graph.add_edge(
                    stub[0],
                    transit,
                    latency=_jittered(
                        rng, cfg.transit_stub_latency_s, cfg.latency_jitter
                    ),
                )

    # Attach hosts to stub routers round-robin with a random offset.
    offset = int(rng.integers(len(stub_routers)))
    host_router = np.empty(cfg.num_hosts, dtype=object)
    for h in range(cfg.num_hosts):
        host_router[h] = stub_routers[(offset + h) % len(stub_routers)]

    weights = np.array([c.weight for c in cfg.access_classes], dtype=float)
    weights /= weights.sum()
    picks = rng.choice(len(cfg.access_classes), size=cfg.num_hosts, p=weights)
    host_down_bw = np.array(
        [cfg.access_classes[p].down_bytes_per_second for p in picks]
    )
    host_up_bw = np.array(
        [cfg.access_classes[p].up_bytes_per_second for p in picks]
    )
    return GtItmTopology(cfg, graph, host_router, host_down_bw, host_up_bw)
