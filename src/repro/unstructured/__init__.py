"""Unstructured (tracker-based) overlays with worm containment (§6.2)."""

from .swarm import Swarm, SwarmWormResult, build_swarm, run_swarm_worm
from .tracker import PeerRecord, Tracker, TrackerConfig

__all__ = [
    "PeerRecord",
    "Swarm",
    "SwarmWormResult",
    "Tracker",
    "TrackerConfig",
    "build_swarm",
    "run_swarm_worm",
]
