"""Containment-aware tracker for unstructured overlays (paper §6.2).

The paper's design principles are not Chord-specific: for the original
tracker-based BitTorrent design, "assuming the tracker is not
vulnerable to worm infection ... it will be able to assign neighbors in
a way that forms an overlay graph with the generic structure of
Figure 1".  This module implements exactly that tracker:

* peers present a type-binding certificate when announcing;
* the tracker partitions each type's peers into bounded *islands*;
* a peer's neighbour set mixes same-island peers (allowed same-type
  knowledge) with peers of *other* types — never same-type peers from a
  different island.

A ``naive`` policy (plain random neighbour assignment, as real trackers
do) is provided as the baseline the worm experiments compare against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..crypto.certificates import CertificateAuthority, NodeCertificate
from ..ids.assignment import NodeType
from ..net.addressing import NodeAddress


@dataclass(frozen=True)
class PeerRecord:
    """One announced peer as the tracker sees it."""

    peer_id: int
    address: NodeAddress
    claimed_type: NodeType
    island: int  # -1 under the naive policy


@dataclass
class TrackerConfig:
    """Island sizing and neighbour-mix parameters."""

    island_size: int = 24
    same_island_neighbors: int = 6
    cross_type_neighbors: int = 6

    def __post_init__(self) -> None:
        if self.island_size < 2:
            raise ValueError("islands need at least two peers")
        if self.same_island_neighbors < 0 or self.cross_type_neighbors < 0:
            raise ValueError("neighbour counts must be non-negative")


class Tracker:
    """A centralised, worm-immune neighbour-assignment service."""

    def __init__(
        self,
        config: TrackerConfig,
        ca: CertificateAuthority,
        rng: random.Random,
        containment: bool = True,
    ) -> None:
        self.config = config
        self.ca = ca
        self.rng = rng
        self.containment = containment
        self._peers: Dict[int, PeerRecord] = {}
        # islands[type] is a list of islands, each a list of peer ids.
        self._islands: Dict[NodeType, List[List[int]]] = {
            NodeType.A: [],
            NodeType.B: [],
        }
        self.rejected_announces = 0

    # -- announces -------------------------------------------------------------

    def announce(
        self, peer_id: int, address: NodeAddress, cert: NodeCertificate
    ) -> Optional[PeerRecord]:
        """Register a peer; returns its record or None if refused."""
        if not self.ca.verify(cert) or cert.node_id != peer_id:
            self.rejected_announces += 1
            return None
        if peer_id in self._peers:
            return self._peers[peer_id]
        island = -1
        if self.containment:
            island = self._place_in_island(peer_id, cert.claimed_type)
        record = PeerRecord(peer_id, address, cert.claimed_type, island)
        self._peers[peer_id] = record
        return record

    def _place_in_island(self, peer_id: int, node_type: NodeType) -> int:
        islands = self._islands[node_type]
        for idx, members in enumerate(islands):
            if len(members) < self.config.island_size:
                members.append(peer_id)
                return idx
        islands.append([peer_id])
        return len(islands) - 1

    # -- neighbour assignment -----------------------------------------------------

    def neighbors_for(self, peer_id: int) -> List[PeerRecord]:
        """The neighbour set the tracker hands this peer."""
        record = self._peers.get(peer_id)
        if record is None:
            raise KeyError(f"peer {peer_id} never announced")
        if not self.containment:
            return self._naive_neighbors(record)
        same = self._sample_island(record)
        cross = self._sample_cross_type(record)
        return same + cross

    def _naive_neighbors(self, record: PeerRecord) -> List[PeerRecord]:
        count = self.config.same_island_neighbors + self.config.cross_type_neighbors
        others = [p for pid, p in self._peers.items() if pid != record.peer_id]
        if len(others) <= count:
            return others
        return self.rng.sample(others, count)

    def _sample_island(self, record: PeerRecord) -> List[PeerRecord]:
        members = self._islands[record.claimed_type][record.island]
        candidates = [m for m in members if m != record.peer_id]
        take = min(self.config.same_island_neighbors, len(candidates))
        return [self._peers[m] for m in self.rng.sample(candidates, take)]

    def _sample_cross_type(self, record: PeerRecord) -> List[PeerRecord]:
        opposite = record.claimed_type.opposite
        candidates = [
            p for p in self._peers.values() if p.claimed_type is opposite
        ]
        take = min(self.config.cross_type_neighbors, len(candidates))
        return self.rng.sample(candidates, take)

    # -- introspection ----------------------------------------------------------------

    @property
    def peers(self) -> List[PeerRecord]:
        return list(self._peers.values())

    def islands_of(self, node_type: NodeType) -> List[List[int]]:
        return [list(members) for members in self._islands[node_type]]

    def audit_assignment(self, neighbor_sets: Dict[int, Sequence[PeerRecord]]) -> int:
        """Count containment violations in assigned neighbour sets
        (same type, different island)."""
        violations = 0
        for peer_id, neighbors in neighbor_sets.items():
            me = self._peers[peer_id]
            for n in neighbors:
                if n.claimed_type is me.claimed_type and n.island != me.island:
                    violations += 1
        return violations
