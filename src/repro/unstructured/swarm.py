"""Swarm construction and worm runs on tracker-assigned graphs (§6.2).

Builds a static unstructured overlay (every peer announces to the
tracker and receives a neighbour set), extracts the worm's knowledge
graph from the neighbour sets, and runs the standard worm model over
it — the unstructured counterpart of the Fig. 8 scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..crypto.certificates import CertificateAuthority
from ..ids.assignment import NodeType
from ..net.addressing import NodeAddress
from ..sim import Simulator
from ..worm.model import InfectionCurve, WormParams
from ..worm.simulation import WormSimulation
from .tracker import PeerRecord, Tracker, TrackerConfig


@dataclass
class Swarm:
    """A fully-announced unstructured overlay."""

    tracker: Tracker
    peers: List[PeerRecord]
    neighbor_sets: Dict[int, List[PeerRecord]]
    index_of: Dict[int, int]  # peer id -> dense index

    def knowledge_graph(self, same_type_only: bool = True) -> Dict[int, List[int]]:
        """Dense-index adjacency the worm will follow.

        Peer software knows its neighbours' types (the tracker's
        assignment is type-aware and clients exchange handshakes), so a
        worm skips opposite-type targets, as on Verme.
        """
        graph: Dict[int, List[int]] = {}
        types = {p.peer_id: p.claimed_type for p in self.peers}
        for peer_id, neighbors in self.neighbor_sets.items():
            me = types[peer_id]
            targets = [
                self.index_of[n.peer_id]
                for n in neighbors
                if not same_type_only or n.claimed_type is me
            ]
            graph[self.index_of[peer_id]] = targets
        return graph


@dataclass
class SwarmWormResult:
    curve: InfectionCurve
    vulnerable_count: int
    infected: int
    islands: int

    @property
    def containment_fraction(self) -> float:
        return self.infected / self.vulnerable_count if self.vulnerable_count else 0.0


def build_swarm(
    num_peers: int,
    config: TrackerConfig,
    seed: int = 0,
    containment: bool = True,
) -> Swarm:
    """Announce ``num_peers`` (half of each type) and assign neighbours."""
    rng = random.Random(seed)
    ca = CertificateAuthority()
    tracker = Tracker(config, ca, random.Random(seed + 1), containment=containment)
    peers: List[PeerRecord] = []
    for i in range(num_peers):
        node_type = NodeType(i % 2)
        peer_id = rng.getrandbits(63)
        cert, _keys = ca.issue(peer_id, node_type)
        record = tracker.announce(peer_id, NodeAddress(i), cert)
        assert record is not None
        peers.append(record)
    neighbor_sets = {p.peer_id: tracker.neighbors_for(p.peer_id) for p in peers}
    index_of = {p.peer_id: i for i, p in enumerate(peers)}
    return Swarm(tracker, peers, neighbor_sets, index_of)


class _GraphKnowledge:
    def __init__(self, graph: Dict[int, List[int]]) -> None:
        self.graph = graph

    def targets_of(self, index: int) -> List[int]:
        return list(self.graph.get(index, []))


def run_swarm_worm(
    swarm: Swarm,
    victim_type: NodeType = NodeType.A,
    params: Optional[WormParams] = None,
    until: float = 300.0,
    seed: int = 0,
    same_type_knowledge: bool = True,
) -> SwarmWormResult:
    """Seed the worm on one victim-type peer and run it to quiescence."""
    vulnerable = [p.claimed_type is victim_type for p in swarm.peers]
    graph = swarm.knowledge_graph(same_type_only=same_type_knowledge)
    sim = Simulator()
    worm = WormSimulation(
        sim, len(swarm.peers), vulnerable, _GraphKnowledge(graph),
        params or WormParams(),
    )
    rng = random.Random(seed)
    worm.seed(rng.choice([i for i, v in enumerate(vulnerable) if v]))
    worm.run(until=until)
    islands = len(swarm.tracker.islands_of(victim_type))
    return SwarmWormResult(
        curve=worm.curve,
        vulnerable_count=sum(vulnerable),
        infected=worm.infected_count,
        islands=islands,
    )
