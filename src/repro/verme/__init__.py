"""Verme: the paper's worm-containing overlay (a Chord extension)."""

from .audit import (
    ContainmentViolation,
    audit_node_state,
    audit_overlay,
    max_safe_neighbor_list,
    min_safe_sections,
)
from .fingers import is_verme_finger_target, verme_finger_target
from .node import VermeNode

__all__ = [
    "ContainmentViolation",
    "VermeNode",
    "audit_node_state",
    "audit_overlay",
    "is_verme_finger_target",
    "max_safe_neighbor_list",
    "min_safe_sections",
    "verme_finger_target",
]
