"""The Verme protocol node (paper §4).

``VermeNode`` is a :class:`~repro.chord.node.ChordNode` with exactly the
paper's deltas:

* **id structure** — the node's id encodes its (claimed) type in the
  middle bits, so the ring partitions into type-alternating sections;
* **key ownership** — a key is owned by its successor only if that
  successor lies in the key's section; otherwise by the key's
  predecessor (the §4.4 corner rule);
* **fingers** — targets are displaced so every finger points at a node
  of the opposite type (:mod:`repro.verme.fingers`);
* **predecessor list** — maintained like the successor list (needed by
  VerDi's predecessor-side replication, §5.2);
* **lookups** — recursive only, carry the initiator's certificate, are
  verified for legitimacy by the responsible node, and the reply is
  sealed with the initiator's public key so intermediate hops never see
  the returned addresses (§4.5).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from ..chord.config import OverlayConfig
from ..chord.lookup import LookupPurpose, LookupStyle
from ..chord.node import (
    _DECISION_OWNER_SELF,
    _DECISION_OWNER_SUCC,
    ChordNode,
    _RouteDecision,
)
from ..chord.state import NodeInfo
from ..crypto.certificates import CertificateAuthority, KeyPair, NodeCertificate
from ..crypto.sealed import SealError, seal
from ..ids.assignment import NodeType
from ..ids.sections import VermeIdLayout
from ..net.addressing import NodeAddress
from ..net.message import CERT_BYTES, SEALED_OVERHEAD_BYTES
from ..net.network import Network
from ..sim import Simulator
from .fingers import is_verme_finger_target, verme_finger_target

# A VerDi variant installs this to vet DHT lookups at the responsible
# node: (initiator certificate, key, request params) -> error or None.
DhtLookupVerifier = Callable[[NodeCertificate, int, dict], Optional[str]]


class VermeNode(ChordNode):
    """One Verme overlay node."""

    maintenance_style = LookupStyle.RECURSIVE
    allowed_styles = frozenset({LookupStyle.RECURSIVE})

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: OverlayConfig,
        layout: VermeIdLayout,
        cert: NodeCertificate,
        keys: KeyPair,
        ca: CertificateAuthority,
        address: NodeAddress,
        jitter_rng=None,
    ) -> None:
        if layout.space is not config.space and layout.space != config.space:
            raise ValueError("layout and config use different id spaces")
        if NodeType(layout.type_of(cert.node_id)) is not cert.claimed_type:
            raise ValueError(
                "certificate id does not encode the claimed type "
                f"(id type {layout.type_of(cert.node_id)}, "
                f"claimed {cert.claimed_type})"
            )
        self.layout = layout
        self.cert = cert
        self.keys = keys
        self.ca = ca
        self.verify_dht_lookup: Optional[DhtLookupVerifier] = None
        # Per-hop constant: ``same_section(a, b)`` is just an equality of
        # the ids shifted right by ``section_bits`` (all protocol ids are
        # range-validated at creation), and the terminal/ownership
        # decisions consult it once per routed message.
        self._section_shift = layout.section_bits
        super().__init__(sim, network, config, cert.node_id, address, jitter_rng)

    # -- identity -------------------------------------------------------------

    @property
    def node_type(self) -> NodeType:
        """The type this node *claims* (an impersonator's true platform
        differs; see :attr:`cert`)."""
        return self.cert.claimed_type

    @property
    def section(self) -> int:
        return self.layout.section_index(self.node_id)

    def _predecessor_limit(self) -> int:
        return self.config.num_predecessors

    # -- fingers ----------------------------------------------------------------

    def finger_target(self, k: int) -> int:
        return verme_finger_target(self.layout, self.node_id, k)

    def _finger_fixed(self, k: int, result) -> None:
        """Refuse containment-violating entries: in degenerate rings a
        displaced target can resolve to a same-type node of a foreign
        section, and storing it would hand a worm a cross-island link.
        The type check is free — it reads the entry's id bits."""
        if result.success and result.entries:
            entry = result.entries[0]
            if not self.layout.same_section(
                entry.node_id, self.node_id
            ) and self.layout.same_type(entry.node_id, self.node_id):
                return
        super()._finger_fixed(k, result)

    # -- ownership ----------------------------------------------------------------

    def _terminal_decision(self, key: int, succ: NodeInfo) -> _RouteDecision:
        shift = self._section_shift
        if (succ.node_id >> shift) == (key >> shift):
            return _DECISION_OWNER_SUCC
        # Tail gap (or empty section): the key's predecessor — this node
        # — is responsible (§4.4 corner rule).
        return _DECISION_OWNER_SELF

    def _local_decision(
        self, key: int, exclude: Set[NodeAddress]
    ) -> Optional[_RouteDecision]:
        preds = self.predecessors._entries
        if not preds:
            return None
        pred = preds[0]
        pred_id = pred.node_id
        node_id = self.node_id
        mask = self._mask
        # in_half_open(key, pred_id, node_id), inlined.
        if not (
            pred_id == node_id
            or 0 < (key - pred_id) & mask <= (node_id - pred_id) & mask
        ):
            return None
        shift = self._section_shift
        if (node_id >> shift) == (key >> shift):
            return _DECISION_OWNER_SELF
        # The key lies in the gap before this node's section, so its
        # *predecessor* owns it; hand the request back one step.
        if pred.address not in exclude:
            return _RouteDecision(done=False, next_hop=pred)
        return None

    def _entries_for_key(
        self, key: int, purpose: LookupPurpose, owner_is_self: bool
    ) -> List[NodeInfo]:
        if purpose is not LookupPurpose.DHT:
            return super()._entries_for_key(key, purpose, owner_is_self)
        # DHT lookups return the in-section replica group (§5.2).
        section = self.layout.section_index(key)
        if owner_is_self:
            if self.layout.section_index(self.node_id) != section:
                return [self.info]  # degenerate: the key's section is empty
            group = [self.info] + [
                p
                for p in self.predecessors.entries
                if self.layout.section_index(p.node_id) == section
            ]
        else:
            group = [
                s
                for s in self.successors.entries
                if self.layout.section_index(s.node_id) == section
            ]
            if not group:
                group = self.successors.entries[:1]
        return group[: self.config.num_successors]

    # -- lookup security (§4.5) -----------------------------------------------------

    def _h_route_step(self, params: dict, ctx) -> None:
        """Refuse to serve iterative steps: each one would hand the
        requester a routing-table address, which is exactly the
        crawling primitive §4.5 removes."""
        ctx.fail("iterative lookups are disabled in verme")

    def _attach_credentials(self, params: dict) -> None:
        params["cert"] = self.cert

    def _lookup_request_extra_bytes(self) -> int:
        return CERT_BYTES

    def _result_extra_bytes(self) -> int:
        return SEALED_OVERHEAD_BYTES

    def _verify_lookup(self, key: int, params: dict) -> Optional[str]:
        cert = params.get("cert")
        if cert is None:
            return "missing certificate"
        if not self.ca.verify(cert):
            return "invalid certificate"
        purpose: LookupPurpose = params["purpose"]
        if purpose is LookupPurpose.JOIN:
            if cert.node_id != key:
                return "join lookup for a foreign id"
            return None
        if purpose is LookupPurpose.FINGER:
            if not is_verme_finger_target(self.layout, cert.node_id, key):
                return "key is not a finger target of the certified id"
            return None
        if self.verify_dht_lookup is not None:
            return self.verify_dht_lookup(cert, key, params)
        return None

    def _package_result(self, entries: List[NodeInfo], params: dict) -> object:
        cert: NodeCertificate = params["cert"]
        return seal(cert.public_key, list(entries))

    def _unpackage_result(self, payload: object) -> List[NodeInfo]:
        if not hasattr(payload, "open"):
            raise SealError("expected a sealed lookup result")
        return list(payload.open(self.keys))
