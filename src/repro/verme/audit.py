"""Containment auditing: does the live overlay leak same-type links?

Verme's guarantee is conditional (paper §4.3): successor lists must not
span more than two sections, which holds "with high probability" when
sections are sized against the successor-list length.  This module
makes the condition checkable and provides the sizing rule an operator
should apply when picking the number of sections.

The invariant itself has exactly one implementation —
:func:`repro.invariants.predicates.containment_violations`, shared with
the online checker (``runner.py ... --invariants``) — and
:func:`audit_node_state` / :func:`audit_overlay` are kept as the thin
public wrappers historical callers use.  See ``docs/correctness.md``
for how the audit composes with the rest of the invariant suite.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from ..ids.sections import VermeIdLayout
from ..invariants.predicates import (
    ContainmentViolation,
    containment_violations,
)

__all__ = [
    "ContainmentViolation",
    "audit_node_state",
    "audit_overlay",
    "max_safe_neighbor_list",
    "min_safe_sections",
]


def audit_node_state(
    layout: VermeIdLayout,
    node_id: int,
    successors: Iterable[int],
    predecessors: Iterable[int],
    fingers: Iterable[int],
) -> List[ContainmentViolation]:
    """Violations in one node's routing state (ids only)."""
    return containment_violations(
        layout, node_id, successors, predecessors, fingers
    )


def audit_overlay(nodes: Sequence) -> List[ContainmentViolation]:
    """Violations across a population of live :class:`VermeNode`s."""
    violations: List[ContainmentViolation] = []
    for node in nodes:
        violations.extend(
            containment_violations(
                node.layout,
                node.node_id,
                (e.node_id for e in node.successors),
                (e.node_id for e in node.predecessors),
                (e.node_id for e in node.fingers.entries()),
            )
        )
    return violations


def max_safe_neighbor_list(
    expected_nodes: int, num_sections: int, slack: float = 0.5
) -> int:
    """The longest successor/predecessor list that keeps lists within
    two sections for a *typical* section.

    A section holds ``expected_nodes / num_sections`` nodes on average;
    a list of length L starting anywhere inside a section stays within
    that section plus the next as long as L is comfortably below the
    per-section population.  ``slack`` is the safety factor (0.5 means
    "half the average section").
    """
    if num_sections <= 0 or expected_nodes <= 0:
        raise ValueError("population and section count must be positive")
    per_section = expected_nodes / num_sections
    return max(1, math.floor(per_section * slack))


def min_safe_sections(
    expected_nodes: int, neighbor_list_length: int, slack: float = 0.5
) -> int:
    """Largest power-of-two section count that keeps a neighbour list of
    the given length safe under the same sizing rule."""
    if neighbor_list_length <= 0:
        raise ValueError("list length must be positive")
    per_section_needed = neighbor_list_length / slack
    raw = max(1, int(expected_nodes / per_section_needed))
    # Round down to a power of two (section counts are powers of two).
    return 1 << (raw.bit_length() - 1)
