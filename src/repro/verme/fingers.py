"""Verme finger-target placement (paper §4.4).

A Chord finger ``k`` targets ``id + 2**k``.  Verme must guarantee that
every finger points at a node of the *opposite* type, so the raw target
is displaced by one section length whenever it would land in a section
of the node's own type — except for nearby targets that fall either in
the node's own section (same-island knowledge is allowed) or in the
subsequent section (already of the opposite type).

This function is deliberately free of protocol dependencies: the live
:class:`~repro.verme.node.VermeNode`, the static overlay builder used
for the 100k-node worm runs, and the lookup-legitimacy verifier all
share it.
"""

from __future__ import annotations

from ..ids.sections import VermeIdLayout


def verme_finger_target(layout: VermeIdLayout, node_id: int, k: int) -> int:
    """The id whose Verme owner is node ``node_id``'s finger ``k``."""
    raw = layout.space.wrap(node_id + (1 << k))
    own_section = layout.section_index(node_id)
    raw_section = layout.section_index(raw)
    if raw_section == own_section:
        # Within the node's own island: successors there are legal.
        return raw
    if raw_section == (own_section + 1) % layout.num_sections:
        # The subsequent section is of the opposite type already.
        return raw
    if layout.type_of(raw) == layout.type_of(node_id):
        # Would land among nodes of our own type: displace one section.
        return layout.advance_sections(raw, 1)
    return raw


def is_verme_finger_target(layout: VermeIdLayout, node_id: int, key: int) -> bool:
    """Is ``key`` a legitimate finger target for ``node_id``?

    Used by the responsible node to verify finger-maintenance lookups
    (§4.5: "the node must verify if it is ... a correct finger of the id
    in the certificate").
    """
    for k in range(layout.space.bits):
        if verme_finger_target(layout, node_id, k) == key:
            return True
    return False
