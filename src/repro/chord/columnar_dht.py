"""Columnar engine rows as DHT-layer hosts: fig6/fig7 at scale.

The four DHT layers (:class:`~repro.dht.dhash.DHashNode` and the three
VerDi variants) attach to an overlay node through a narrow surface:
identity (``node_id``/``info``/``cert``), routing-table views
(``successors``/``predecessors``/``fingers``), the real RPC layer for
data-plane traffic, and ``node.lookup``.  This module bridges that
surface onto :class:`~repro.chord.columnar.ColumnarEngine` rows so the
DHT layer code runs *unchanged* over the flat-array engine:

* Every row gets a :class:`ColumnarNodeAdapter` owning a **real**
  :class:`~repro.chord.rpc.RpcLayer` registered on the real network at
  the row's address.  All data-plane traffic (fetch/store/offer/relay)
  therefore flows through the exact object-engine code path — identical
  messages, identical timeout handles, identical sequence numbers.
* Only the control plane is columnar: ``adapter.lookup`` enters the
  engine's flat lookup state machine (kind ``CB``), and the engine's
  hook points (``_dht_hook``/``_dht_verifier``/``_hook_local``/
  ``_hook_terminal``) route terminal-node work back to the unchanged
  layer callbacks, converting ``(node_id, row)`` routing entries to
  :class:`~repro.chord.state.NodeInfo` at the boundary.
* Certificates are real :class:`~repro.crypto.certificates`
  objects issued by a per-engine CA.  Key generation draws no RNG (a
  global counter), so issuing them after ``build`` leaves the registry
  streams bit-identical to the object path, where the factory issues
  them interleaved with id draws.

The result (asserted in ``tests/test_fig567_columnar_equivalence.py``)
is that fig6/fig7 cells produce bit-identical latency/bandwidth rows
and kernel event counts on both engines.
"""

from __future__ import annotations

from typing import List, Optional

from ..crypto.certificates import CertificateAuthority
from ..ids.assignment import NodeType
from ..net.addressing import NodeAddress
from ..sim import RngRegistry
from .columnar import _K_CB, _P_DHT, _P_FINGER, _P_JOIN, _STYLES, ColumnarEngine
from .lookup import LookupPurpose, LookupResult, LookupStyle
from .rpc import RpcLayer
from .state import NodeInfo

_PURPOSES = {
    LookupPurpose.JOIN: _P_JOIN,
    LookupPurpose.FINGER: _P_FINGER,
    LookupPurpose.DHT: _P_DHT,
}


class _NeighborView:
    """Read-only stand-in for :class:`~repro.chord.state.NeighborList`
    over one row's successor or predecessor array."""

    __slots__ = ("_engine", "_row", "_succ")

    def __init__(self, engine: "ColumnarDhtEngine", row: int, succ: bool) -> None:
        self._engine = engine
        self._row = row
        self._succ = succ

    def _entries(self) -> list:
        engine = self._engine
        arr = engine.succs[self._row] if self._succ else engine.preds[self._row]
        return arr

    @property
    def entries(self) -> List[NodeInfo]:
        engine = self._engine
        return [engine.info_of(e[1]) for e in self._entries()]

    @property
    def entries_view(self) -> List[NodeInfo]:
        return self.entries

    @property
    def first(self) -> Optional[NodeInfo]:
        arr = self._entries()
        return self._engine.info_of(arr[0][1]) if arr else None


class _FingerView:
    """Read-only stand-in for :class:`~repro.chord.state.FingerTable`."""

    __slots__ = ("_engine", "_row")

    def __init__(self, engine: "ColumnarDhtEngine", row: int) -> None:
        self._engine = engine
        self._row = row

    def entries(self) -> List[NodeInfo]:
        engine = self._engine
        return [
            engine.info_of(e[1]) for e in engine.fingers[self._row].values()
        ]


class ColumnarNodeAdapter:
    """One engine row dressed as the node surface the DHT layers use."""

    def __init__(self, engine: "ColumnarDhtEngine", row: int) -> None:
        self._engine = engine
        self.row = row
        self.sim = engine._sim
        self.config = engine._config
        self.space = self.config.space
        self.node_id = engine.node_id[row]
        self.address = NodeAddress(engine.host[row], engine.inc[row])
        self._jitter_rng = engine.jitter[row]
        self._self_info = NodeInfo(self.node_id, self.address)
        self.layout = engine._layout
        if engine.certs is not None:
            self.cert = engine.certs[row]
            self.keys = engine.keypairs[row]
            self.ca = engine.ca
        else:
            self.cert = None
            self.keys = None
            self.ca = None
        # Layer-installed hooks (same attributes ChordNode carries).
        self.verify_dht_lookup = None
        self.dht_lookup_hook = None
        # The real RPC layer, constructed exactly as ChordNode does, so
        # data-plane traffic is object-engine code end to end.
        config = self.config
        self.rpc = RpcLayer(
            self.sim,
            engine._net,
            self.address,
            config.rpc_timeout_s,
            max_retransmits=config.rpc_max_retransmits,
            backoff_factor=config.rpc_backoff_factor,
            backoff_jitter=config.rpc_backoff_jitter,
            jitter_rng=self._jitter_rng,
        )
        self.rpc.start()
        self.successors = _NeighborView(engine, row, True)
        self.predecessors = _NeighborView(engine, row, False)
        self.fingers = _FingerView(engine, row)

    # -- identity ----------------------------------------------------------

    @property
    def info(self) -> NodeInfo:
        return self._self_info

    @property
    def alive(self) -> bool:
        return bool(self._engine.alive[self.row])

    @property
    def predecessor(self) -> Optional[NodeInfo]:
        preds = self._engine.preds[self.row]
        return self._engine.info_of(preds[0][1]) if preds else None

    @property
    def node_type(self) -> NodeType:
        return self.cert.claimed_type

    def __repr__(self) -> str:
        return f"<ColumnarNodeAdapter {self.node_id:#x} at {self.address}>"

    # -- the lookup bridge -------------------------------------------------

    def lookup(
        self,
        key: int,
        on_done,
        style: Optional[LookupStyle] = None,
        purpose: LookupPurpose = LookupPurpose.DHT,
        category: Optional[str] = None,
        op_tag: Optional[int] = None,
        request_meta: Optional[dict] = None,
        extra_request_bytes: int = 0,
        first_hop=None,
    ) -> None:
        """Enter the engine's flat lookup state machine; ``on_done``
        receives the same :class:`LookupResult` the object node builds."""
        if first_hop is not None:
            raise ValueError("adapter lookups do not support first_hop")
        engine = self._engine
        if category is None:
            category = "lookup" if purpose is LookupPurpose.DHT else "maintenance"

        def _deliver(st, success, entries, latency, hops, error, app_payload):
            result = LookupResult.__new__(LookupResult)
            result.key = st.key
            result.success = success
            if entries:
                if type(entries[0]) is NodeInfo:
                    result.entries = list(entries)
                else:
                    result.entries = [engine.info_of(e[1]) for e in entries]
            else:
                result.entries = []
            result.latency_s = latency
            result.hops = hops
            result.retries = st.attempts - 1
            result.error = error
            result.app_payload = app_payload
            on_done(result)

        engine._lookup(
            self.row,
            key,
            _K_CB,
            _PURPOSES[purpose],
            category,
            op_tag=op_tag,
            meta=request_meta,
            extra=extra_request_bytes,
            style=_STYLES[style] if style is not None else None,
            done_cb=_deliver,
        )


class ColumnarDhtEngine(ColumnarEngine):
    """Columnar engine plus the per-row adapters the DHT layers attach
    to.  ``build_dht`` replaces ``build_ring`` in the fig6/7 driver."""

    def __init__(self, sim, network, config, layout=None) -> None:
        super().__init__(sim, network, config, layout)
        self.adapters: List[ColumnarNodeAdapter] = []
        self.ca: Optional[CertificateAuthority] = None
        self.certs: Optional[list] = None
        self.keypairs: Optional[list] = None

    def build_dht(self, num_nodes: int, rngs: RngRegistry) -> None:
        """``build`` the flat overlay, then dress every row: issue real
        certificates (Verme) and create the adapters with their RPC
        layers.  Certificate issue draws no RNG, so doing it after the
        id draws leaves every stream identical to the object factory's
        interleaved order."""
        self.build(num_nodes, rngs)
        if self._verme:
            self.ca = CertificateAuthority()
            self.certs = []
            self.keypairs = []
            for row in range(num_nodes):
                cert, keys = self.ca.issue(
                    self.node_id[row], NodeType(self.host[row] % 2)
                )
                self.certs.append(cert)
                self.keypairs.append(keys)
        self.adapters = [
            ColumnarNodeAdapter(self, row) for row in range(num_nodes)
        ]

    # -- engine hook points ------------------------------------------------

    def _dht_hook(self, row: int):
        return self.adapters[row].dht_lookup_hook

    def _dht_verifier(self, row: int):
        fn = self.adapters[row].verify_dht_lookup
        if fn is None:
            return None
        certs = self.certs

        def _verify(init_row: int, key: int, meta):
            # The object node hands the layer the initiator's (already
            # CA-validated) certificate plus the request params; the
            # layers only consult params["meta"].
            return fn(certs[init_row], key, {"key": key, "meta": meta})

        return _verify

    def _hook_local(self, st, hook, entries) -> None:
        # Mirrors ChordNode._complete_local's hook branch: the hook sees
        # NodeInfo entries; its ``done`` finishes the lookup with the
        # *unsuppressed* entry list and the hook's payload.
        infos = [self.info_of(e[1]) for e in entries]

        def done(app_payload, _extra: int) -> None:
            self._finish(st, infos, 0, None, app_payload)

        hook(st.key, st.meta, infos, done)

    def _hook_terminal(self, row, params, upstream, hook, entries, category, op_tag):
        # Mirrors ChordNode._terminate_route's hook branch, including
        # Secure-VerDi's suppress_entries (the result then carries an
        # empty — but non-None — entry list, which still pays the
        # per-result sealing overhead, as in the object path).
        infos = [self.info_of(e[1]) for e in entries]
        meta = params[5]

        def done(app_payload, extra_bytes: int) -> None:
            returned = [] if (meta or {}).get("suppress_entries") else infos
            self._send_result_back(
                row, params, upstream, True, returned, None,
                app_payload, extra_bytes, category, op_tag,
            )

        hook(params[0], meta, infos, done)
