"""Ring construction, churn, and lookup workloads.

``instant_bootstrap`` initialises a population of protocol nodes with
converged routing state (successors, predecessors, fingers) computed by
the static snapshot machinery — the standard simulator trick to avoid
paying O(N) protocol joins before an experiment starts.  ``ChurnDriver``
then kills nodes with exponentially distributed lifetimes and rejoins
replacements through the real join protocol, as in the paper's Fig. 5
setup (mean lifetimes from 15 minutes to 8 hours).  ``LookupWorkload``
issues lookups for random keys from random alive nodes at exponentially
distributed intervals (mean 30 s per node).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from ..analysis.stats import LookupStats
from ..obs import OBS
from ..overlay.snapshot import StaticOverlay, VermeStaticOverlay
from ..sim import Simulator
from .lookup import LookupPurpose, LookupResult, LookupStyle
from .node import ChordNode


class Population:
    """The set of currently-alive nodes, with deterministic sampling.

    A parallel insertion-ordered list mirrors the dict so ``pick`` is
    O(1) instead of materialising every node per sample — at 10k nodes
    the copy dominated the workload drivers.  ``rng.choice`` consumes
    randomness as a function of ``len`` only, and the list preserves
    exactly the dict's insertion order (re-adding a present key keeps
    its position, as dicts do), so sampling is bit-identical to the old
    ``rng.choice(list(dict.values()))``.
    """

    def __init__(self) -> None:
        self._nodes: Dict[object, ChordNode] = {}
        self._order: List[ChordNode] = []

    def add(self, node: ChordNode) -> None:
        prev = self._nodes.get(node.address)
        self._nodes[node.address] = node
        if prev is None:
            self._order.append(node)
        else:
            self._order[self._order.index(prev)] = node

    def remove(self, node: ChordNode) -> None:
        present = self._nodes.pop(node.address, None)
        if present is not None:
            self._order.remove(present)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(list(self._order))

    @property
    def nodes(self) -> List[ChordNode]:
        return list(self._order)

    def pick(self, rng: random.Random) -> Optional[ChordNode]:
        if not self._order:
            return None
        return rng.choice(self._order)


class NodeFactory(Protocol):
    """Creates protocol nodes; concrete factories live with the
    experiment configuration (they decide ids, types, certificates)."""

    def create(self, host_slot: int, incarnation: int) -> ChordNode: ...


def make_static_overlay(nodes: Sequence[ChordNode]) -> StaticOverlay:
    """The matching snapshot class for a homogeneous node population."""
    first = nodes[0]
    infos = [n.info for n in nodes]
    layout = getattr(first, "layout", None)
    if layout is not None:
        return VermeStaticOverlay(layout, infos)
    return StaticOverlay(first.space, infos)


def instant_bootstrap(nodes: Sequence[ChordNode]) -> StaticOverlay:
    """Fill every node's routing state with converged values and start it."""
    overlay = make_static_overlay(nodes)
    for node in nodes:
        idx = overlay.index_of(node.node_id)
        node.successors.replace(
            overlay.successor_list(idx, node.config.num_successors)
        )
        node.predecessors.replace(
            overlay.predecessor_list(idx, node._predecessor_limit())
        )
        for k, info in overlay.finger_table(idx).items():
            node.fingers.set(k, info)
    for node in nodes:
        node.start_static()
    return overlay


class ChurnDriver:
    """Kills and replaces nodes, keeping the population size stable.

    Each alive node gets a random lifetime — exponential by default
    (paper §7.1.1) or Pareto (heavy-tailed, the distribution p2psim's
    churn studies favoured) — and on death a replacement (same host,
    next incarnation, fresh id from the factory) joins through the real
    protocol after ``rejoin_delay_s``.
    """

    LIFETIME_DISTRIBUTIONS = ("exponential", "pareto")

    def __init__(
        self,
        sim: Simulator,
        population: Population,
        factory: NodeFactory,
        rng: random.Random,
        mean_lifetime_s: float,
        rejoin_delay_s: float = 2.0,
        lifetime_distribution: str = "exponential",
        pareto_alpha: float = 1.5,
    ) -> None:
        if mean_lifetime_s <= 0:
            raise ValueError("mean lifetime must be positive")
        if lifetime_distribution not in self.LIFETIME_DISTRIBUTIONS:
            raise ValueError(
                f"unknown lifetime distribution {lifetime_distribution!r}"
            )
        if pareto_alpha <= 1.0:
            raise ValueError("pareto alpha must exceed 1 for a finite mean")
        self.sim = sim
        self.population = population
        self.factory = factory
        self.rng = rng
        self.mean_lifetime_s = mean_lifetime_s
        self.rejoin_delay_s = rejoin_delay_s
        self.lifetime_distribution = lifetime_distribution
        self.pareto_alpha = pareto_alpha
        self.deaths = 0
        self.joins = 0
        self.failed_joins = 0

    def start(self) -> None:
        for node in self.population.nodes:
            self._schedule_death(node)

    def sample_lifetime(self) -> float:
        if self.lifetime_distribution == "exponential":
            return self.rng.expovariate(1.0 / self.mean_lifetime_s)
        # Pareto with mean = x_min * alpha / (alpha - 1).
        alpha = self.pareto_alpha
        x_min = self.mean_lifetime_s * (alpha - 1.0) / alpha
        return x_min * (1.0 - self.rng.random()) ** (-1.0 / alpha)

    def _schedule_death(self, node: ChordNode) -> None:
        self.sim.schedule(self.sample_lifetime(), self._kill, node)

    def _kill(self, node: ChordNode) -> None:
        if not node.alive:
            return
        self.population.remove(node)
        node.crash()
        self.deaths += 1
        inv = OBS.invariants
        if inv is not None:
            inv.note_membership(self.sim)
        self.sim.schedule(
            self.rejoin_delay_s,
            self._respawn,
            node.address.host_slot,
            node.address.incarnation + 1,
        )

    def _respawn(self, host_slot: int, incarnation: int) -> None:
        bootstrap = self.population.pick(self.rng)
        if bootstrap is None:
            # Everyone is gone; try again later rather than giving up.
            self.sim.schedule(self.rejoin_delay_s, self._respawn, host_slot, incarnation)
            return
        node = self.factory.create(host_slot, incarnation)
        node.join(
            bootstrap.address,
            on_done=lambda ok: self._joined(node, host_slot, incarnation, ok),
        )

    def _joined(
        self, node: ChordNode, host_slot: int, incarnation: int, ok: bool
    ) -> None:
        if ok:
            self.joins += 1
            self.population.add(node)
            self._schedule_death(node)
            inv = OBS.invariants
            if inv is not None:
                inv.note_membership(self.sim)
        else:
            self.failed_joins += 1
            self.sim.schedule(
                self.rejoin_delay_s, self._respawn, host_slot, incarnation + 1
            )


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted membership change: a node leaves or (re)joins."""

    time_s: float
    host_slot: int
    action: str  # "leave" | "join"

    def __post_init__(self) -> None:
        if self.action not in ("leave", "join"):
            raise ValueError(f"unknown churn action {self.action!r}")


class ScriptedChurn:
    """Replays a membership trace instead of sampling lifetimes.

    Useful for regression experiments (identical churn across systems)
    and for replaying availability traces from measurement studies.
    Leaves crash the current incarnation of the host's node; joins
    create the next incarnation via the factory and the real protocol.
    """

    def __init__(
        self,
        sim: Simulator,
        population: Population,
        factory: NodeFactory,
        rng: random.Random,
        trace: Sequence[ChurnEvent],
    ) -> None:
        self.sim = sim
        self.population = population
        self.factory = factory
        self.rng = rng
        self.trace = sorted(trace, key=lambda e: e.time_s)
        self.applied = 0
        self.skipped = 0
        self._incarnations: Dict[int, int] = {}

    def start(self) -> None:
        for node in self.population.nodes:
            self._incarnations[node.address.host_slot] = node.address.incarnation
        for event in self.trace:
            self.sim.schedule_at(event.time_s, self._apply, event)

    def _node_on_host(self, host_slot: int) -> Optional[ChordNode]:
        for node in self.population.nodes:
            if node.address.host_slot == host_slot:
                return node
        return None

    def _apply(self, event: ChurnEvent) -> None:
        node = self._node_on_host(event.host_slot)
        if event.action == "leave":
            if node is None:
                self.skipped += 1
                return
            self.population.remove(node)
            node.crash()
            self.applied += 1
            return
        if node is not None:  # already present
            self.skipped += 1
            return
        bootstrap = self.population.pick(self.rng)
        if bootstrap is None:
            self.skipped += 1
            return
        incarnation = self._incarnations.get(event.host_slot, -1) + 1
        self._incarnations[event.host_slot] = incarnation
        newcomer = self.factory.create(event.host_slot, incarnation)
        newcomer.join(
            bootstrap.address,
            on_done=lambda ok: self._joined(newcomer, ok),
        )

    def _joined(self, node: ChordNode, ok: bool) -> None:
        if ok:
            self.population.add(node)
            self.applied += 1
        else:
            self.skipped += 1


@dataclass
class _WorkloadState:
    stopped: bool = False


class LookupWorkload:
    """Poisson lookup workload over the alive population.

    Each node issues lookups with exponential inter-arrival times of
    mean ``mean_interval_s`` (paper §7.1.1: 30 s); implemented as an
    aggregate process of rate ``len(population)/mean_interval_s``.
    """

    def __init__(
        self,
        sim: Simulator,
        population: Population,
        rng: random.Random,
        style: LookupStyle,
        mean_interval_s: float = 30.0,
        stats: Optional[LookupStats] = None,
        warmup_s: float = 0.0,
        on_result: Optional[Callable[[LookupResult], None]] = None,
        generator=None,
    ) -> None:
        self.sim = sim
        self.population = population
        self.rng = rng
        self.style = style
        self.mean_interval_s = mean_interval_s
        self.stats = stats if stats is not None else LookupStats()
        self.warmup_s = warmup_s
        self.on_result = on_result
        #: optional repro.workload.LookupGenerator: non-uniform keys and
        #: modulated arrival rates.  None keeps the paper's process
        #: (uniform keys, stationary Poisson), byte-identical to before.
        self.generator = generator
        self._state = _WorkloadState()

    def start(self) -> None:
        self._state = _WorkloadState()
        self.sim.schedule(max(self.warmup_s, self._next_delay()), self._fire, self._state)

    def stop(self) -> None:
        self._state.stopped = True

    def _next_delay(self) -> float:
        # The generator (when present) must consume the workload RNG in
        # exactly this position — ColumnarEngine._ev_fire mirrors it.
        if self.generator is not None:
            return self.generator.next_delay(
                self.rng, self.sim.now, len(self.population)
            )
        rate = max(1, len(self.population)) / self.mean_interval_s
        return self.rng.expovariate(rate)

    def _fire(self, state: _WorkloadState) -> None:
        if state.stopped:
            return
        node = self.population.pick(self.rng)
        if node is not None and node.alive:
            if self.generator is not None:
                key = self.generator.draw_key(self.rng)
            else:
                key = self.rng.getrandbits(node.space.bits)
            node.lookup(
                key,
                on_done=self._record,
                style=self.style,
                purpose=LookupPurpose.DHT,
                category="lookup",
            )
        self.sim.schedule(self._next_delay(), self._fire, state)

    def _record(self, result: LookupResult) -> None:
        self.stats.record(result.success, result.latency_s, result.hops)
        if self.on_result is not None:
            self.on_result(result)
