"""Request/response RPC with timeouts over the message fabric.

Protocol nodes speak three patterns:

* **call** — request plus matched reply, with a timeout that doubles as
  the failure detector ("every time a node tried to contact a node that
  had failed it chose another neighbor", paper §7.1.2);
* **one-way** — fire-and-forget messages (transitive lookup replies,
  recursive result propagation);
* **deferred replies** — a handler may answer later (e.g. after its own
  downstream RPC completes).

Handlers are registered by method name and receive ``(params, ctx)``;
they answer via ``ctx.respond(...)`` / ``ctx.fail(...)``.

Calls may opt into *retransmission with exponential backoff*
(``max_retransmits`` > 0): when a per-attempt timer expires with
retransmits left, the identical request (same ``req_id``) is resent and
the next timer is the previous one times ``backoff_factor``, +/- a
deterministic jitter drawn from the layer's jitter stream.  Duplicate
replies are ignored by the request-id match; receivers must tolerate
duplicate *requests* (protocol handlers are idempotent; recursive
forwarding dedups on the lookup token).  What the detector observed —
calls, retransmits, final timeouts, suspected peers and their recovery
times — accumulates in ``RpcLayer.detector``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..faults.detector import FailureDetectorStats
from ..net.addressing import NodeAddress
from ..net.message import HEADER_BYTES, RPC_META_BYTES, Message
from ..net.network import Network
from ..sim import EventHandle, Simulator

ReplyCallback = Callable[[Any], None]
ErrorCallback = Callable[[str], None]

MIN_RPC_BYTES = HEADER_BYTES + RPC_META_BYTES


@dataclass
class _Request:
    req_id: int
    method: str
    params: dict
    reply_to: Optional[NodeAddress]  # None for one-way messages


@dataclass
class _Reply:
    req_id: int
    ok: bool
    result: Any


class RpcContext:
    """Handed to handlers; carries the caller and the reply channel."""

    def __init__(self, rpc: "RpcLayer", request: _Request, msg: Message) -> None:
        self._rpc = rpc
        self._request = request
        self.src = msg.src
        self.category = msg.category
        self.op_tag = msg.op_tag
        self.responded = False

    @property
    def one_way(self) -> bool:
        return self._request.reply_to is None

    def respond(self, result: Any, size: int = MIN_RPC_BYTES) -> None:
        """Send a successful reply (no-op guards against double replies)."""
        self._send(_Reply(self._request.req_id, True, result), size)

    def fail(self, reason: str) -> None:
        """Send an error reply; the caller's ``on_error`` receives it."""
        self._send(_Reply(self._request.req_id, False, reason), MIN_RPC_BYTES)

    def _send(self, reply: _Reply, size: int) -> None:
        if self.responded:
            return
        self.responded = True
        if self._request.reply_to is None:
            return  # one-way: nowhere to reply to
        self._rpc.network.send(
            self._rpc.address,
            self._request.reply_to,
            reply,
            size,
            category=self.category,
            op_tag=self.op_tag,
        )


@dataclass
class _Pending:
    on_reply: Optional[ReplyCallback]
    on_error: Optional[ErrorCallback]
    timer: EventHandle
    dst: NodeAddress
    request: "_Request"
    size: int
    category: str
    op_tag: Optional[int]
    timeout_s: float
    attempt: int = 0


class RpcLayer:
    """One node's RPC endpoint."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: NodeAddress,
        default_timeout_s: float,
        max_retransmits: int = 0,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.0,
        jitter_rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.default_timeout_s = default_timeout_s
        self.max_retransmits = max_retransmits
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self._jitter_rng = jitter_rng
        self.detector = FailureDetectorStats()
        self._handlers: Dict[str, Callable[[dict, RpcContext], None]] = {}
        self._pending: Dict[int, _Pending] = {}
        self._req_ids = itertools.count()
        self._alive = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._alive:
            return
        self.network.register(self.address, self._on_message)
        self._alive = True

    def shutdown(self, notify_local_errors: bool = False) -> None:
        """Leave the network.

        By default pending calls die silently (fail-stop fidelity: a
        crashed node must not observe anything).  With
        ``notify_local_errors=True`` each pending call's ``on_error``
        fires synchronously with ``"shutdown"`` so higher layers can
        distinguish a local shutdown from a remote timeout; callbacks
        run after the layer is marked dead.
        """
        if not self._alive:
            return
        self.network.unregister(self.address)
        self._alive = False
        cancelled = list(self._pending.values())
        self._pending.clear()
        for pending in cancelled:
            pending.timer.cancel()
        if notify_local_errors:
            for pending in cancelled:
                if pending.on_error is not None:
                    pending.on_error("shutdown")

    @property
    def alive(self) -> bool:
        return self._alive

    def register(self, method: str, handler: Callable[[dict, RpcContext], None]) -> None:
        if method in self._handlers:
            raise ValueError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    # -- outbound ------------------------------------------------------------

    def call(
        self,
        dst: NodeAddress,
        method: str,
        params: dict,
        on_reply: Optional[ReplyCallback] = None,
        on_error: Optional[ErrorCallback] = None,
        timeout_s: Optional[float] = None,
        size: int = MIN_RPC_BYTES,
        category: str = "other",
        op_tag: Optional[int] = None,
    ) -> int:
        """Issue a request; exactly one of ``on_reply``/``on_error`` fires."""
        if not self._alive:
            raise RuntimeError("rpc layer is not started")
        req_id = next(self._req_ids)
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        timer = self.sim.schedule(timeout, self._on_timeout, req_id)
        request = _Request(req_id, method, params, self.address)
        self._pending[req_id] = _Pending(
            on_reply,
            on_error,
            timer,
            dst=dst,
            request=request,
            size=size,
            category=category,
            op_tag=op_tag,
            timeout_s=timeout,
        )
        self.detector.record_call()
        self.network.send(
            self.address, dst, request, size, category=category, op_tag=op_tag
        )
        return req_id

    def send_one_way(
        self,
        dst: NodeAddress,
        method: str,
        params: dict,
        size: int = MIN_RPC_BYTES,
        category: str = "other",
        op_tag: Optional[int] = None,
    ) -> None:
        """Fire-and-forget message dispatched to the same handler table."""
        if not self._alive:
            raise RuntimeError("rpc layer is not started")
        request = _Request(next(self._req_ids), method, params, None)
        self.network.send(
            self.address, dst, request, size, category=category, op_tag=op_tag
        )

    def cancel(self, req_id: int) -> None:
        pending = self._pending.pop(req_id, None)
        if pending is not None:
            pending.timer.cancel()

    # -- inbound -------------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        payload = msg.payload
        if isinstance(payload, _Request):
            handler = self._handlers.get(payload.method)
            ctx = RpcContext(self, payload, msg)
            if handler is None:
                ctx.fail(f"no handler for {payload.method!r}")
                return
            handler(payload.params, ctx)
        elif isinstance(payload, _Reply):
            pending = self._pending.pop(payload.req_id, None)
            if pending is None:
                return  # late or duplicate reply: ignore
            pending.timer.cancel()
            self.detector.record_reply(pending.dst, self.sim.now)
            if payload.ok:
                if pending.on_reply is not None:
                    pending.on_reply(payload.result)
            elif pending.on_error is not None:
                pending.on_error(str(payload.result))

    def _next_timeout(self, pending: _Pending) -> float:
        timeout = pending.timeout_s * (self.backoff_factor**pending.attempt)
        if self.backoff_jitter and self._jitter_rng is not None:
            timeout *= 1.0 + self.backoff_jitter * (
                2.0 * self._jitter_rng.random() - 1.0
            )
        return timeout

    def _on_timeout(self, req_id: int) -> None:
        pending = self._pending.get(req_id)
        if pending is None:
            return
        if pending.attempt < self.max_retransmits:
            # Retransmit the identical request and back off.
            pending.attempt += 1
            self.detector.record_retransmit(pending.dst)
            pending.timer = self.sim.schedule(
                self._next_timeout(pending), self._on_timeout, req_id
            )
            self.network.send(
                self.address,
                pending.dst,
                pending.request,
                pending.size,
                category=pending.category,
                op_tag=pending.op_tag,
            )
            return
        del self._pending[req_id]
        self.detector.record_timeout(pending.dst, self.sim.now)
        if pending.on_error is not None:
            pending.on_error("timeout")
