"""Request/response RPC with timeouts over the message fabric.

Protocol nodes speak three patterns:

* **call** — request plus matched reply, with a timeout that doubles as
  the failure detector ("every time a node tried to contact a node that
  had failed it chose another neighbor", paper §7.1.2);
* **one-way** — fire-and-forget messages (transitive lookup replies,
  recursive result propagation);
* **deferred replies** — a handler may answer later (e.g. after its own
  downstream RPC completes).

Handlers are registered by method name and receive ``(params, ctx)``;
they answer via ``ctx.respond(...)`` / ``ctx.fail(...)``.

Calls may opt into *retransmission with exponential backoff*
(``max_retransmits`` > 0): when a per-attempt timer expires with
retransmits left, the identical request (same ``req_id``) is resent and
the next timer is the previous one times ``backoff_factor``, +/- a
deterministic jitter drawn from the layer's jitter stream.  Duplicate
replies are ignored by the request-id match; receivers must tolerate
duplicate *requests* (protocol handlers are idempotent; recursive
forwarding dedups on the lookup token).  What the detector observed —
calls, retransmits, final timeouts, suspected peers and their recovery
times — accumulates in ``RpcLayer.detector``.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..faults.detector import FailureDetectorStats
from ..net.addressing import NodeAddress
from ..obs import OBS
from ..net.message import HEADER_BYTES, RPC_META_BYTES, Message
from ..net.network import Network
from ..sim import EventHandle, Simulator
from ..sim.engine import _MIN_COMPACT_SIZE

ReplyCallback = Callable[[Any], None]
ErrorCallback = Callable[[str], None]

MIN_RPC_BYTES = HEADER_BYTES + RPC_META_BYTES

#: Shared empty ack payload (read-only by convention: ack receivers
#: never mutate the result of an information-free reply).
_EMPTY_ACK: dict = {}


@dataclass(slots=True)
class _Request:
    req_id: int
    method: str
    params: dict
    reply_to: Optional[NodeAddress]  # None for one-way messages


@dataclass(slots=True)
class _Reply:
    req_id: int
    ok: bool
    result: Any


class RpcContext:
    """Handed to handlers; carries the caller and the reply channel."""

    __slots__ = ("_rpc", "_request", "src", "category", "op_tag", "responded")

    def __init__(self, rpc: "RpcLayer", request: _Request, msg: Message) -> None:
        self._rpc = rpc
        self._request = request
        self.src = msg.src
        self.category = msg.category
        self.op_tag = msg.op_tag
        self.responded = False

    @property
    def one_way(self) -> bool:
        return self._request.reply_to is None

    def respond(self, result: Any, size: int = MIN_RPC_BYTES) -> None:
        """Send a successful reply (no-op guards against double replies)."""
        self._send(True, result, size)

    def ack(self) -> None:
        """Minimum-size empty success reply (``respond({})``), single
        frame: this is the per-hop ack of recursive forwarding, sent
        once per routed message."""
        if self.responded:
            return
        self.responded = True
        request = self._request
        if request.reply_to is None:
            return
        reply = _Reply.__new__(_Reply)
        reply.req_id = request.req_id
        reply.ok = True
        reply.result = _EMPTY_ACK
        rpc = self._rpc
        rpc.network.send(
            rpc.address, request.reply_to, reply, MIN_RPC_BYTES, self.category, self.op_tag
        )

    def fail(self, reason: str) -> None:
        """Send an error reply; the caller's ``on_error`` receives it."""
        self._send(False, reason, MIN_RPC_BYTES)

    def _send(self, ok: bool, result: Any, size: int) -> None:
        if self.responded:
            return
        self.responded = True
        request = self._request
        if request.reply_to is None:
            return  # one-way: nowhere to reply to
        # Inlined _Reply construction: one reply per answered request
        # (per-hop acks make this a per-message cost).
        reply = _Reply.__new__(_Reply)
        reply.req_id = request.req_id
        reply.ok = ok
        reply.result = result
        rpc = self._rpc
        rpc.network.send(
            rpc.address, request.reply_to, reply, size, self.category, self.op_tag
        )


@dataclass(slots=True)
class _Pending:
    on_reply: Optional[ReplyCallback]
    on_error: Optional[ErrorCallback]
    timer: EventHandle
    dst: NodeAddress
    request: "_Request"
    size: int
    category: str
    op_tag: Optional[int]
    timeout_s: float
    attempt: int = 0


class RpcLayer:
    """One node's RPC endpoint."""

    __slots__ = (
        "sim",
        "network",
        "address",
        "default_timeout_s",
        "max_retransmits",
        "backoff_factor",
        "backoff_jitter",
        "_jitter_rng",
        "detector",
        "_handlers",
        "_fast_handlers",
        "_pending",
        "_req_ids",
        "_alive",
        "_on_timeout_cb",
    )

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: NodeAddress,
        default_timeout_s: float,
        max_retransmits: int = 0,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.0,
        jitter_rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.default_timeout_s = default_timeout_s
        self.max_retransmits = max_retransmits
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self._jitter_rng = jitter_rng
        self.detector = FailureDetectorStats()
        self._handlers: Dict[str, Callable[[dict, RpcContext], None]] = {}
        self._fast_handlers: Dict[str, Callable[[_Request, Message], None]] = {}
        self._pending: Dict[int, _Pending] = {}
        self._req_ids = itertools.count()
        self._alive = False
        # One bound method for every timeout timer (binding per call
        # would allocate a method object per request).
        self._on_timeout_cb = self._on_timeout

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._alive:
            return
        self.network.register(self.address, self._on_message)
        self._alive = True

    def shutdown(self, notify_local_errors: bool = False) -> None:
        """Leave the network.

        By default pending calls die silently (fail-stop fidelity: a
        crashed node must not observe anything).  With
        ``notify_local_errors=True`` each pending call's ``on_error``
        fires synchronously with ``"shutdown"`` so higher layers can
        distinguish a local shutdown from a remote timeout; callbacks
        run after the layer is marked dead.
        """
        if not self._alive:
            return
        self.network.unregister(self.address)
        self._alive = False
        cancelled = list(self._pending.values())
        self._pending.clear()
        for pending in cancelled:
            pending.timer.cancel()
        if notify_local_errors:
            for pending in cancelled:
                if pending.on_error is not None:
                    pending.on_error("shutdown")

    @property
    def alive(self) -> bool:
        return self._alive

    def register(self, method: str, handler: Callable[[dict, RpcContext], None]) -> None:
        if method in self._handlers or method in self._fast_handlers:
            raise ValueError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    def register_fast(
        self, method: str, handler: Callable[[_Request, Message], None]
    ) -> None:
        """Register an allocation-free request handler.

        A fast handler receives the raw ``(request, msg)`` pair and no
        :class:`RpcContext` is built for it.  It must answer a two-way
        request itself — for the information-free per-hop ack, via
        :meth:`ack_request` — and simply not reply to one-way messages.
        Reserved for the per-hop forwarding methods, which dominate
        message volume; everything else should use :meth:`register`.
        """
        if method in self._handlers or method in self._fast_handlers:
            raise ValueError(f"handler for {method!r} already registered")
        self._fast_handlers[method] = handler

    def ack_request(self, request: _Request, msg: Message) -> None:
        """Minimum-size empty success reply to ``request``, single frame
        (the fast-handler counterpart of :meth:`RpcContext.ack`)."""
        reply_to = request.reply_to
        if reply_to is None:
            return
        reply = _Reply.__new__(_Reply)
        reply.req_id = request.req_id
        reply.ok = True
        reply.result = _EMPTY_ACK
        self.network.send(
            self.address, reply_to, reply, MIN_RPC_BYTES, msg.category, msg.op_tag
        )

    # -- outbound ------------------------------------------------------------

    def call(
        self,
        dst: NodeAddress,
        method: str,
        params: dict,
        on_reply: Optional[ReplyCallback] = None,
        on_error: Optional[ErrorCallback] = None,
        timeout_s: Optional[float] = None,
        size: int = MIN_RPC_BYTES,
        category: str = "other",
        op_tag: Optional[int] = None,
    ) -> int:
        """Issue a request; exactly one of ``on_reply``/``on_error`` fires."""
        if not self._alive:
            raise RuntimeError("rpc layer is not started")
        req_id = next(self._req_ids)
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        # Inlined Simulator.schedule for the timeout timer (one per call;
        # the timer must keep its pre-send schedule order so its seq sorts
        # before the request's delivery).
        sim = self.sim
        fire_at = sim._now + timeout
        timer = EventHandle.__new__(EventHandle)
        timer.time = fire_at
        timer.callback = self._on_timeout_cb
        timer.args = (req_id,)
        timer._cancelled = False
        timer._fired = False
        timer._sim = sim
        seq = sim._next_seq
        sim._next_seq = seq + 1
        heapq.heappush(sim._queue, (fire_at, seq, timer))
        sim._live += 1
        # Inlined _Request/_Pending construction (one of each per call).
        request = _Request.__new__(_Request)
        request.req_id = req_id
        request.method = method
        request.params = params
        request.reply_to = self.address
        pending = _Pending.__new__(_Pending)
        pending.on_reply = on_reply
        pending.on_error = on_error
        pending.timer = timer
        pending.dst = dst
        pending.request = request
        pending.size = size
        pending.category = category
        pending.op_tag = op_tag
        pending.timeout_s = timeout
        pending.attempt = 0
        self._pending[req_id] = pending
        self.detector.calls += 1
        metrics = OBS.metrics
        if metrics is not None:
            metrics.counter("rpc.calls").inc()
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "rpc.call",
                sim._now,
                lane="rpc",
                args={
                    "method": method,
                    "src": self.address.host_slot,
                    "dst": dst.host_slot,
                    "req": req_id,
                },
            )
        self.network.send(self.address, dst, request, size, category, op_tag)
        return req_id

    def send_one_way(
        self,
        dst: NodeAddress,
        method: str,
        params: dict,
        size: int = MIN_RPC_BYTES,
        category: str = "other",
        op_tag: Optional[int] = None,
    ) -> None:
        """Fire-and-forget message dispatched to the same handler table."""
        if not self._alive:
            raise RuntimeError("rpc layer is not started")
        request = _Request.__new__(_Request)
        request.req_id = next(self._req_ids)
        request.method = method
        request.params = params
        request.reply_to = None
        self.network.send(self.address, dst, request, size, category, op_tag)

    def cancel(self, req_id: int) -> None:
        pending = self._pending.pop(req_id, None)
        if pending is not None:
            pending.timer.cancel()

    # -- inbound -------------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        payload = msg.payload
        # Exact-type dispatch: every payload on an RPC endpoint is a
        # _Request or _Reply (both final), and this runs once per
        # delivered message.
        cls = payload.__class__
        if cls is _Request:
            fast = self._fast_handlers.get(payload.method)
            if fast is not None:
                fast(payload, msg)
                return
            handler = self._handlers.get(payload.method)
            # Inlined RpcContext construction: one context per request.
            ctx = RpcContext.__new__(RpcContext)
            ctx._rpc = self
            ctx._request = payload
            ctx.src = msg.src
            ctx.category = msg.category
            ctx.op_tag = msg.op_tag
            ctx.responded = False
            if handler is None:
                ctx.fail(f"no handler for {payload.method!r}")
                return
            handler(payload.params, ctx)
        elif cls is _Reply:
            pending = self._pending.pop(payload.req_id, None)
            if pending is None:
                return  # late or duplicate reply: ignore
            # Inlined EventHandle.cancel for the timeout timer: every
            # answered call passes through here, and the timer can never
            # have fired already (a fired timer removes the pending).
            timer = pending.timer
            if not (timer._cancelled or timer._fired):
                timer._cancelled = True
                sim = self.sim
                if sim._live > 0:
                    sim._live -= 1
                sim._cancelled_in_queue += 1
                queue = sim._queue
                if len(queue) > _MIN_COMPACT_SIZE and (
                    2 * sim._cancelled_in_queue > len(queue)
                ):
                    sim._compact()
            metrics = OBS.metrics
            if metrics is not None:
                metrics.counter("rpc.replies").inc()
            trace = OBS.trace
            if trace is not None:
                trace.instant(
                    "rpc.reply",
                    self.sim.now,
                    lane="rpc",
                    args={
                        "method": pending.request.method,
                        "src": msg.src.host_slot,
                        "ok": payload.ok,
                        "req": payload.req_id,
                    },
                )
            # The failure detector only needs to hear about replies from
            # peers it has a record for (i.e. ones that timed out before).
            peers = self.detector.peers
            if peers and pending.dst in peers:
                self.detector.record_reply(pending.dst, self.sim.now)
            if payload.ok:
                if pending.on_reply is not None:
                    pending.on_reply(payload.result)
            elif pending.on_error is not None:
                pending.on_error(str(payload.result))

    def _next_timeout(self, pending: _Pending) -> float:
        timeout = pending.timeout_s * (self.backoff_factor**pending.attempt)
        if self.backoff_jitter and self._jitter_rng is not None:
            timeout *= 1.0 + self.backoff_jitter * (
                2.0 * self._jitter_rng.random() - 1.0
            )
        return timeout

    def _on_timeout(self, req_id: int) -> None:
        pending = self._pending.get(req_id)
        if pending is None:
            return
        if pending.attempt < self.max_retransmits:
            # Retransmit the identical request and back off.
            pending.attempt += 1
            self.detector.record_retransmit(pending.dst)
            metrics = OBS.metrics
            if metrics is not None:
                metrics.counter("rpc.retransmits").inc()
            trace = OBS.trace
            if trace is not None:
                trace.instant(
                    "rpc.retransmit",
                    self.sim.now,
                    lane="rpc",
                    args={
                        "method": pending.request.method,
                        "dst": pending.dst.host_slot,
                        "attempt": pending.attempt,
                    },
                )
            pending.timer = self.sim.schedule(
                self._next_timeout(pending), self._on_timeout, req_id
            )
            self.network.send(
                self.address,
                pending.dst,
                pending.request,
                pending.size,
                category=pending.category,
                op_tag=pending.op_tag,
            )
            return
        del self._pending[req_id]
        self.detector.record_timeout(pending.dst, self.sim.now)
        metrics = OBS.metrics
        if metrics is not None:
            metrics.counter("rpc.timeouts").inc()
        trace = OBS.trace
        if trace is not None:
            trace.instant(
                "rpc.timeout",
                self.sim.now,
                lane="rpc",
                args={
                    "method": pending.request.method,
                    "dst": pending.dst.host_slot,
                },
            )
        if pending.on_error is not None:
            pending.on_error("timeout")
