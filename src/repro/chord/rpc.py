"""Request/response RPC with timeouts over the message fabric.

Protocol nodes speak three patterns:

* **call** — request plus matched reply, with a timeout that doubles as
  the failure detector ("every time a node tried to contact a node that
  had failed it chose another neighbor", paper §7.1.2);
* **one-way** — fire-and-forget messages (transitive lookup replies,
  recursive result propagation);
* **deferred replies** — a handler may answer later (e.g. after its own
  downstream RPC completes).

Handlers are registered by method name and receive ``(params, ctx)``;
they answer via ``ctx.respond(...)`` / ``ctx.fail(...)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..net.addressing import NodeAddress
from ..net.message import HEADER_BYTES, RPC_META_BYTES, Message
from ..net.network import Network
from ..sim import EventHandle, Simulator

ReplyCallback = Callable[[Any], None]
ErrorCallback = Callable[[str], None]

MIN_RPC_BYTES = HEADER_BYTES + RPC_META_BYTES


@dataclass
class _Request:
    req_id: int
    method: str
    params: dict
    reply_to: Optional[NodeAddress]  # None for one-way messages


@dataclass
class _Reply:
    req_id: int
    ok: bool
    result: Any


class RpcContext:
    """Handed to handlers; carries the caller and the reply channel."""

    def __init__(self, rpc: "RpcLayer", request: _Request, msg: Message) -> None:
        self._rpc = rpc
        self._request = request
        self.src = msg.src
        self.category = msg.category
        self.op_tag = msg.op_tag
        self.responded = False

    @property
    def one_way(self) -> bool:
        return self._request.reply_to is None

    def respond(self, result: Any, size: int = MIN_RPC_BYTES) -> None:
        """Send a successful reply (no-op guards against double replies)."""
        self._send(_Reply(self._request.req_id, True, result), size)

    def fail(self, reason: str) -> None:
        """Send an error reply; the caller's ``on_error`` receives it."""
        self._send(_Reply(self._request.req_id, False, reason), MIN_RPC_BYTES)

    def _send(self, reply: _Reply, size: int) -> None:
        if self.responded:
            return
        self.responded = True
        if self._request.reply_to is None:
            return  # one-way: nowhere to reply to
        self._rpc.network.send(
            self._rpc.address,
            self._request.reply_to,
            reply,
            size,
            category=self.category,
            op_tag=self.op_tag,
        )


@dataclass
class _Pending:
    on_reply: Optional[ReplyCallback]
    on_error: Optional[ErrorCallback]
    timer: EventHandle


class RpcLayer:
    """One node's RPC endpoint."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: NodeAddress,
        default_timeout_s: float,
    ) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.default_timeout_s = default_timeout_s
        self._handlers: Dict[str, Callable[[dict, RpcContext], None]] = {}
        self._pending: Dict[int, _Pending] = {}
        self._req_ids = itertools.count()
        self._alive = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._alive:
            return
        self.network.register(self.address, self._on_message)
        self._alive = True

    def shutdown(self) -> None:
        """Leave the network; pending calls will simply time out remotely."""
        if not self._alive:
            return
        self.network.unregister(self.address)
        self._alive = False
        for pending in self._pending.values():
            pending.timer.cancel()
        self._pending.clear()

    @property
    def alive(self) -> bool:
        return self._alive

    def register(self, method: str, handler: Callable[[dict, RpcContext], None]) -> None:
        if method in self._handlers:
            raise ValueError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    # -- outbound ------------------------------------------------------------

    def call(
        self,
        dst: NodeAddress,
        method: str,
        params: dict,
        on_reply: Optional[ReplyCallback] = None,
        on_error: Optional[ErrorCallback] = None,
        timeout_s: Optional[float] = None,
        size: int = MIN_RPC_BYTES,
        category: str = "other",
        op_tag: Optional[int] = None,
    ) -> int:
        """Issue a request; exactly one of ``on_reply``/``on_error`` fires."""
        if not self._alive:
            raise RuntimeError("rpc layer is not started")
        req_id = next(self._req_ids)
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        timer = self.sim.schedule(timeout, self._on_timeout, req_id)
        self._pending[req_id] = _Pending(on_reply, on_error, timer)
        request = _Request(req_id, method, params, self.address)
        self.network.send(
            self.address, dst, request, size, category=category, op_tag=op_tag
        )
        return req_id

    def send_one_way(
        self,
        dst: NodeAddress,
        method: str,
        params: dict,
        size: int = MIN_RPC_BYTES,
        category: str = "other",
        op_tag: Optional[int] = None,
    ) -> None:
        """Fire-and-forget message dispatched to the same handler table."""
        if not self._alive:
            raise RuntimeError("rpc layer is not started")
        request = _Request(next(self._req_ids), method, params, None)
        self.network.send(
            self.address, dst, request, size, category=category, op_tag=op_tag
        )

    def cancel(self, req_id: int) -> None:
        pending = self._pending.pop(req_id, None)
        if pending is not None:
            pending.timer.cancel()

    # -- inbound -------------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        payload = msg.payload
        if isinstance(payload, _Request):
            handler = self._handlers.get(payload.method)
            ctx = RpcContext(self, payload, msg)
            if handler is None:
                ctx.fail(f"no handler for {payload.method!r}")
                return
            handler(payload.params, ctx)
        elif isinstance(payload, _Reply):
            pending = self._pending.pop(payload.req_id, None)
            if pending is None:
                return  # late reply after timeout: ignore
            pending.timer.cancel()
            if payload.ok:
                if pending.on_reply is not None:
                    pending.on_reply(payload.result)
            elif pending.on_error is not None:
                pending.on_error(str(payload.result))

    def _on_timeout(self, req_id: int) -> None:
        pending = self._pending.pop(req_id, None)
        if pending is not None and pending.on_error is not None:
            pending.on_error("timeout")
