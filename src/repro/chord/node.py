"""The Chord protocol node.

Implements the full node lifecycle the paper's §4.2 overview describes:
ring creation, joining via a lookup of the node's own id, successor
stabilization (every 30 s in the experiments), finger stabilization
(every 60 s), failure handling through RPC timeouts, and the three
lookup styles (iterative / recursive / transitive).

The routing engine is shared with :class:`repro.verme.node.VermeNode`,
which only overrides id-ownership, finger-target placement, result
packaging (sealing) and lookup verification — exactly the deltas the
paper introduces.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import bisect_right
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Set

from ..ids.idspace import IdSpace
from ..net.addressing import NodeAddress
from ..net.message import ADDR_BYTES, ID_BYTES, entry_bytes
from ..net.network import Network
from ..obs import OBS
from ..sim import EventHandle, PeriodicTimer, Simulator
from .config import OverlayConfig
from .lookup import LookupPurpose, LookupResult, LookupStyle
from .rpc import MIN_RPC_BYTES, RpcContext, RpcLayer
from .state import FingerTable, NeighborList, NodeInfo

LookupCallback = Callable[[LookupResult], None]

# A DHT layer may install this hook; it runs on the node that terminates
# a lookup, and must eventually call ``done(app_payload, extra_bytes)``.
ResponsibleHook = Callable[[int, dict, List[NodeInfo], Callable[[object, int], None]], None]


@dataclass(slots=True)
class _RouteDecision:
    done: bool
    owner_is_self: bool = False
    next_hop: Optional[NodeInfo] = None


# The three fieldwise-constant decisions, preallocated: routing makes
# one decision per hop and callers only ever *read* decisions, so the
# terminal/no-route cases can share these singletons.
_DECISION_OWNER_SELF = _RouteDecision(done=True, owner_is_self=True)
_DECISION_OWNER_SUCC = _RouteDecision(done=True, owner_is_self=False)
_DECISION_NO_ROUTE = _RouteDecision(done=False, next_hop=None)

#: Shared empty exclude set for hops with no failure history (the
#: common case); read-only by contract of ``_route_next``.
_NO_EXCLUDE: frozenset = frozenset()

#: Hop-count histogram buckets for the ``lookup.hops`` metric: one
#: bucket per hop up to twice the ~log2 N of the largest experiments.
_HOP_BUCKETS = tuple(float(i) for i in range(1, 33))

#: Sort key for the cached routing-candidate list: clockwise distance.
#: The sort is stable, so equal distances keep build order (fingers
#: before successors), matching the original scan's tie-break.
_cand_distance = itemgetter(0)


@dataclass(slots=True)
class _PendingLookup:
    key: int
    style: LookupStyle
    purpose: LookupPurpose
    on_done: LookupCallback
    category: str
    op_tag: Optional[int]
    request_meta: Optional[dict]
    extra_request_bytes: int
    started_at: float
    first_hop: Optional[NodeAddress]
    timer: Optional[EventHandle] = None
    attempts: int = 0
    token: Optional[tuple] = None
    failed_hops: Set[NodeAddress] = field(default_factory=set)
    iter_hops: int = 0


@dataclass(slots=True)
class _ForwardState:
    upstream: NodeAddress
    exclude: Set[NodeAddress]
    params: dict
    gc_handle: EventHandle


class ChordNode:
    """One overlay node; see module docstring."""

    #: style used for the node's own maintenance lookups (joins, fingers)
    maintenance_style = LookupStyle.RECURSIVE
    #: styles this overlay permits (Verme restricts this set)
    allowed_styles = frozenset(
        {LookupStyle.ITERATIVE, LookupStyle.RECURSIVE, LookupStyle.TRANSITIVE}
    )

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: OverlayConfig,
        node_id: int,
        address: NodeAddress,
        jitter_rng=None,
    ) -> None:
        config.space.validate(node_id)
        self.sim = sim
        self.network = network
        self.config = config
        self.node_id = node_id
        self.address = address
        self.rpc = RpcLayer(
            sim,
            network,
            address,
            config.rpc_timeout_s,
            max_retransmits=config.rpc_max_retransmits,
            backoff_factor=config.rpc_backoff_factor,
            backoff_jitter=config.rpc_backoff_jitter,
            jitter_rng=jitter_rng,
        )
        self.space: IdSpace = config.space
        self.successors = NeighborList(
            self.space, node_id, config.num_successors, clockwise=True
        )
        self.predecessors = NeighborList(
            self.space, node_id, self._predecessor_limit(), clockwise=False
        )
        self.fingers = FingerTable()
        self._alive = False
        self._jitter_rng = jitter_rng
        self._stabilize_timer = PeriodicTimer(
            sim, config.stabilize_interval_s, self._stabilize, jitter_rng
        )
        self._finger_timer = PeriodicTimer(
            sim, config.finger_interval_s, self._fix_fingers, jitter_rng
        )
        self._lookups: Dict[tuple, _PendingLookup] = {}
        self._forwards: Dict[tuple, _ForwardState] = {}
        # Bootstrap cache: recent successor addresses plus the join
        # bootstrap.  Never purged by the failure detector, so a node
        # stranded by a long partition can still re-enter the ring.
        self._rejoin_contacts: List[NodeAddress] = []
        self._rejoin_next = 0
        self._token_counter = itertools.count()
        self.dht_lookup_hook: Optional[ResponsibleHook] = None
        #: serving-layer admission control (repro.chord.admission);
        #: None = unlimited capacity, the paper's model.
        self.admission = None
        #: callbacks fired when the failure detector purges a peer
        #: (the DHT hot-key cache invalidates through this).
        self._down_hooks: List = []
        self.lookups_started = 0
        self.lookups_failed = 0
        # Per-hop constants, computed once: the forward path consults
        # these per routed message, and the subclass byte-cost hooks
        # (Verme's certificate / sealing overheads) are constants per
        # node, not per lookup.
        self._addr_str = str(address)
        self._self_info = NodeInfo(node_id, address)  # immutable, shared
        self._mask = config.space.mask
        self._rpc_timeout_s = config.rpc_timeout_s
        self._forward_base_bytes = (
            MIN_RPC_BYTES + ID_BYTES + self._lookup_request_extra_bytes()
        )
        # Routing-candidate cache: finger + successor entries with their
        # precomputed clockwise distance from this node, sorted farthest
        # first.  Rebuilt lazily when either table's version moves (see
        # _route_next); steady-state scans touch no allocation at all.
        self._cand_keys: List[int] = []
        self._cand_infos: List[NodeInfo] = []
        self._cand_fver = -1
        self._cand_sver = -1
        self._register_handlers()

    # -- identity ------------------------------------------------------------

    @property
    def info(self) -> NodeInfo:
        return self._self_info

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def predecessor(self) -> Optional[NodeInfo]:
        return self.predecessors.first

    def _predecessor_limit(self) -> int:
        """Chord keeps a single predecessor; Verme keeps a list."""
        return 1

    def routing_state(self):
        """Plain-ids view of the routing tables for auditing and
        invariant checking (:mod:`repro.invariants`):
        ``(successor ids, predecessor ids, ((k, target, entry id), ...))``.
        Reads the live entry lists without copying NodeInfo objects."""
        return (
            tuple(e.node_id for e in self.successors.entries_view),
            tuple(e.node_id for e in self.predecessors.entries_view),
            tuple(
                (k, self.finger_target(k), info.node_id)
                for k, info in self.fingers.items()
            ),
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.node_id:#x} at {self.address}>"

    # -- lifecycle -----------------------------------------------------------

    def create_ring(self) -> None:
        """Become the first node of a new ring."""
        self.rpc.start()
        self._alive = True
        self._start_timers()

    def join(
        self,
        bootstrap: NodeAddress,
        on_done: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Join an existing ring through ``bootstrap`` (paper §4.2/§4.5:
        joins are initiated by looking up the incoming node's own id)."""
        self.rpc.start()
        self._alive = True
        self._rejoin_contacts = [bootstrap]
        self.lookup(
            self.node_id,
            on_done=lambda res: self._join_done(res, on_done),
            style=self.maintenance_style,
            purpose=LookupPurpose.JOIN,
            category="maintenance",
            first_hop=bootstrap,
        )

    def _join_done(
        self, result: LookupResult, on_done: Optional[Callable[[bool], None]]
    ) -> None:
        if not self._alive:
            return
        if not result.success or not result.entries:
            self._alive = False
            self.rpc.shutdown()
            if on_done is not None:
                on_done(False)
            return
        self.successors.replace(result.entries)
        self._start_timers()
        self._stabilize()
        self._fix_fingers()
        if on_done is not None:
            on_done(True)

    def start_static(self) -> None:
        """Go live with pre-filled routing state (instant bootstrap)."""
        self.rpc.start()
        self._alive = True
        self._start_timers()

    def crash(self) -> None:
        """Fail-stop: leave the network without telling anyone."""
        self._alive = False
        self._stabilize_timer.stop()
        self._finger_timer.stop()
        for state in self._lookups.values():
            if state.timer is not None:
                state.timer.cancel()
        self._lookups.clear()
        for fwd in self._forwards.values():
            fwd.gc_handle.cancel()
        self._forwards.clear()
        self.rpc.shutdown()

    def _start_timers(self) -> None:
        self._stabilize_timer.start()
        self._finger_timer.start()

    # -- handler registration --------------------------------------------------

    def _register_handlers(self) -> None:
        self.rpc.register("ping", self._h_ping)
        self.rpc.register("get_neighbors", self._h_get_neighbors)
        self.rpc.register("notify", self._h_notify)
        self.rpc.register("route_step", self._h_route_step)
        # The two per-hop forwarding methods dominate message volume and
        # use the context-free fast dispatch (see RpcLayer.register_fast).
        self.rpc.register_fast("route_forward", self._h_route_forward)
        self.rpc.register_fast("route_result", self._h_route_result)

    # -- basic handlers ---------------------------------------------------------

    def _h_ping(self, params: dict, ctx: RpcContext) -> None:
        ctx.respond({})

    def _h_get_neighbors(self, params: dict, ctx: RpcContext) -> None:
        succs = self.successors.entries
        preds = self.predecessors.entries
        size = MIN_RPC_BYTES + (len(succs) + len(preds)) * entry_bytes()
        ctx.respond(
            {
                "predecessor": self.predecessor,
                "successors": succs,
                "predecessors": preds,
            },
            size=size,
        )

    def _h_notify(self, params: dict, ctx: RpcContext) -> None:
        candidate: NodeInfo = params["node"]
        if candidate.node_id != self.node_id:
            self.predecessors.merge([candidate])
        ctx.respond({})

    # -- stabilization ------------------------------------------------------------

    def _stabilize(self) -> None:
        if not self._alive:
            return
        succ = self.successors.first
        if succ is None:
            pred = self.predecessor
            if pred is not None:
                self.successors.merge([pred])
                return
            # Fully stranded: every successor and predecessor was purged
            # (a long partition can do this).  Re-enter the ring by
            # re-running the join lookup for our own id through a
            # surviving finger, or — once those are purged too — through
            # the bootstrap cache, which failed attempts never empty.
            contacts = [e.address for e in self.fingers.entries()]
            contacts += [a for a in self._rejoin_contacts if a not in contacts]
            if contacts:
                hop = contacts[self._rejoin_next % len(contacts)]
                self._rejoin_next += 1
                self.lookup(
                    self.node_id,
                    on_done=self._rejoin_done,
                    style=self.maintenance_style,
                    purpose=LookupPurpose.JOIN,
                    category="maintenance",
                    first_hop=hop,
                )
            return
        self._rejoin_contacts = [e.address for e in self.successors.entries]
        self.rpc.call(
            succ.address,
            "get_neighbors",
            {},
            on_reply=lambda res: self._stabilize_reply(succ, res),
            on_error=lambda err: self._neighbor_dead(succ),
            category="maintenance",
        )
        pred = self.predecessor
        if pred is not None:
            self.rpc.call(
                pred.address,
                "get_neighbors" if self.predecessors._limit > 1 else "ping",
                {},
                on_reply=lambda res: self._predecessor_reply(pred, res),
                on_error=lambda err: self._neighbor_dead(pred),
                category="maintenance",
            )

    def _rejoin_done(self, result: LookupResult) -> None:
        if not self._alive or self.successors.first is not None:
            return
        if result.success and result.entries:
            self.successors.merge(
                [e for e in result.entries if e.node_id != self.node_id]
            )

    def _stabilize_reply(self, succ: NodeInfo, res: dict) -> None:
        if not self._alive:
            return
        candidates = [succ] + list(res.get("successors", []))
        pred = res.get("predecessor")
        if pred is not None and self.space.in_open(
            pred.node_id, self.node_id, succ.node_id
        ):
            candidates.append(pred)
        self.successors.merge(candidates)
        new_succ = self.successors.first
        if new_succ is not None:
            self.rpc.call(
                new_succ.address,
                "notify",
                {"node": self.info},
                on_error=lambda err: self._neighbor_dead(new_succ),
                size=MIN_RPC_BYTES + entry_bytes(),
                category="maintenance",
            )

    def _predecessor_reply(self, pred: NodeInfo, res: dict) -> None:
        if not self._alive or not isinstance(res, dict):
            return
        more = res.get("predecessors")
        if more:
            self.predecessors.merge([pred] + list(more))

    def _neighbor_dead(self, info: NodeInfo) -> None:
        """RPC timeout: purge the node from all routing state."""
        self.successors.remove_address(info.address)
        self.predecessors.remove_address(info.address)
        self.fingers.remove_address(info.address)
        for hook in self._down_hooks:
            hook(info)

    # -- fingers ------------------------------------------------------------------

    def finger_target(self, k: int) -> int:
        """Where finger ``k`` should point (Verme overrides this)."""
        return self.space.power_of_two_target(self.node_id, k)

    def _maintained_finger_indices(self) -> List[int]:
        """Finger indices not already covered by the successor list."""
        succ = self.successors.first
        if succ is None:
            return []
        span = self.space.distance(self.node_id, succ.node_id)
        return [k for k in range(self.space.bits) if (1 << k) > span]

    def _fix_fingers(self) -> None:
        if not self._alive:
            return
        for k in self._maintained_finger_indices():
            target = self.finger_target(k)
            self.lookup(
                target,
                on_done=lambda res, k=k: self._finger_fixed(k, res),
                style=self.maintenance_style,
                purpose=LookupPurpose.FINGER,
                category="maintenance",
            )

    def _finger_fixed(self, k: int, result: LookupResult) -> None:
        if not self._alive:
            return
        if result.success and result.entries:
            entry = result.entries[0]
            if entry.node_id != self.node_id:
                self.fingers.set(k, entry)

    # -- routing core ---------------------------------------------------------------

    def _local_decision(
        self, key: int, exclude: Set[NodeAddress]
    ) -> Optional[_RouteDecision]:
        """Fast path: the key provably falls in ``(predecessor, self]``,
        so this node can decide ownership without routing."""
        preds = self.predecessors._entries
        if not preds:
            return None
        pred_id = preds[0].node_id
        node_id = self.node_id
        mask = self._mask
        # in_half_open(key, pred_id, node_id), inlined.
        if pred_id == node_id or (
            0 < (key - pred_id) & mask <= (node_id - pred_id) & mask
        ):
            return _DECISION_OWNER_SELF
        return None

    def _route_next(self, key: int, exclude: Set[NodeAddress]) -> _RouteDecision:
        """One routing decision: terminate here, or name the next hop.

        This is the protocol stack's hottest loop (one scan per routed
        message), so the interval predicates are inlined as mask
        arithmetic and the scan walks the live finger/successor views
        without copying or allocating.  Semantics are exactly the
        closest-preceding-finger rule the readable predicates in
        :mod:`repro.ids.idspace` express.
        """
        # Reads the neighbour lists' internal entry lists directly
        # (rebind-not-mutate contract of entries_view, minus the
        # property call).
        succs = self.successors._entries
        if not succs:
            return _DECISION_OWNER_SELF
        succ = succs[0]
        node_id = self.node_id
        mask = self._mask
        # in_half_open(key, node_id, succ.node_id), inlined.
        succ_id = succ.node_id
        if node_id == succ_id or (
            0 < (key - node_id) & mask <= (succ_id - node_id) & mask
        ):
            return self._terminal_decision(key, succ)
        local = self._local_decision(key, exclude)
        if local is not None:
            return local
        # Closest preceding candidate: the farthest entry strictly
        # inside (node_id, key).  ``dk`` bounds the open interval; a
        # key equal to node_id means the whole ring (Chord convention).
        #
        # The scan runs over a cached candidate list sorted farthest
        # first, so the first entry below ``dk`` (and not excluded) is
        # the winner.  Ties between a finger and a successor entry for
        # the same id resolve to the finger, exactly as the original
        # fingers-then-successors max scan with a strict ``>`` did:
        # the list is built fingers first and the sort is stable.
        fingers = self.fingers
        successors = self.successors
        if (
            fingers.version != self._cand_fver
            or successors.version != self._cand_sver
        ):
            # Keys are *negated* distances so the list sorts ascending
            # and the C-level bisect below can find the winner.  The
            # stable sort keeps build order (fingers before successors)
            # among equal distances, reproducing the original
            # fingers-then-successors strict-max tie-break.
            cands = []
            for cand in fingers.values():
                dc = (cand.node_id - node_id) & mask
                if dc:  # dc == 0 (an entry for self) can never route
                    cands.append((-dc, cand))
            for cand in succs:
                dc = (cand.node_id - node_id) & mask
                if dc:
                    cands.append((-dc, cand))
            cands.sort(key=_cand_distance)
            keys = [c[0] for c in cands]
            infos = [c[1] for c in cands]
            self._cand_keys = keys
            self._cand_infos = infos
            self._cand_fver = fingers.version
            self._cand_sver = successors.version
        else:
            keys = self._cand_keys
            infos = self._cand_infos
        dk = (key - node_id) & mask if key != node_id else mask + 1
        # First candidate with dc < dk  ⟺  first key > -dk in the
        # ascending keys list: one binary search instead of a scan.
        i = bisect_right(keys, -dk)
        best: Optional[NodeInfo] = None
        if exclude:
            for j in range(i, len(infos)):
                cand = infos[j]
                if cand.address not in exclude:
                    best = cand
                    break
        elif i < len(infos):
            best = infos[i]
        if best is None:
            if succ.address not in exclude:
                best = succ  # last resort: inch forward via the successor
            else:
                return _DECISION_NO_ROUTE
        return _RouteDecision(False, next_hop=best)

    def _terminal_decision(self, key: int, succ: NodeInfo) -> _RouteDecision:
        """The key lies in ``(self, successor]``: in Chord the successor
        always owns it.  Verme overrides this with the section rule."""
        return _DECISION_OWNER_SUCC

    def _entries_for_key(
        self, key: int, purpose: LookupPurpose, owner_is_self: bool
    ) -> List[NodeInfo]:
        """The node list a terminating lookup returns."""
        if owner_is_self:
            entries = [self._self_info]
            entries.extend(self.successors.entries_view)
        else:
            entries = list(self.successors.entries_view)
        return entries[: self.config.num_successors]

    # -- lookup verification / packaging (Verme overrides) ----------------------------

    def _verify_lookup(self, key: int, params: dict) -> Optional[str]:
        """Return an error string to reject the lookup, or None to allow."""
        return None

    def _package_result(self, entries: List[NodeInfo], params: dict) -> object:
        return entries

    def _unpackage_result(self, payload: object) -> List[NodeInfo]:
        return list(payload)  # type: ignore[arg-type]

    def _lookup_request_extra_bytes(self) -> int:
        """Extra per-request wire bytes (Verme adds the certificate)."""
        return 0

    def _result_extra_bytes(self) -> int:
        """Extra per-result wire bytes (Verme adds sealing overhead)."""
        return 0

    def _attach_credentials(self, params: dict) -> None:
        """Add certificates etc. to an outgoing lookup (Verme overrides)."""

    # -- lookup initiation ---------------------------------------------------------

    def lookup(
        self,
        key: int,
        on_done: LookupCallback,
        style: Optional[LookupStyle] = None,
        purpose: LookupPurpose = LookupPurpose.DHT,
        category: Optional[str] = None,
        op_tag: Optional[int] = None,
        request_meta: Optional[dict] = None,
        extra_request_bytes: int = 0,
        first_hop: Optional[NodeAddress] = None,
    ) -> None:
        """Find the nodes responsible for ``key``.

        ``on_done`` receives a :class:`LookupResult`.  ``request_meta``
        and ``extra_request_bytes`` support piggybacked DHT operations
        (Secure-VerDi); ``first_hop`` routes the first step through a
        specific node (used when joining).
        """
        style = style if style is not None else self.maintenance_style
        if style not in self.allowed_styles:
            raise ValueError(f"{type(self).__name__} does not allow {style}")
        if category is None:
            category = "lookup" if purpose is LookupPurpose.DHT else "maintenance"
        self.lookups_started += 1
        sim = self.sim
        # Inlined _PendingLookup construction and Simulator.schedule for
        # the attempt timer (one of each per lookup).
        state = _PendingLookup.__new__(_PendingLookup)
        state.key = key
        state.style = style
        state.purpose = purpose
        state.on_done = on_done
        state.category = category
        state.op_tag = op_tag
        state.request_meta = request_meta
        state.extra_request_bytes = extra_request_bytes
        state.started_at = sim._now
        state.first_hop = first_hop
        state.attempts = 0
        state.token = None
        state.failed_hops = set()
        state.iter_hops = 0
        fire_at = sim._now + self.config.lookup_timeout_s
        timer = EventHandle.__new__(EventHandle)
        timer.time = fire_at
        timer.callback = self._lookup_attempt_timeout
        timer.args = (state,)
        timer._cancelled = False
        timer._fired = False
        timer._sim = sim
        seq = sim._next_seq
        sim._next_seq = seq + 1
        heapq.heappush(sim._queue, (fire_at, seq, timer))
        sim._live += 1
        state.timer = timer
        self._attempt(state)

    def _new_token(self, state: _PendingLookup) -> tuple:
        token = (self._addr_str, next(self._token_counter))
        state.token = token
        self._lookups[token] = state
        return token

    def _attempt(self, state: _PendingLookup) -> None:
        if not self._alive:
            return
        state.attempts += 1
        if state.token is not None:
            self._lookups.pop(state.token, None)
        token = self._new_token(state)

        if state.first_hop is not None:
            # Joining: we have no routing state of our own, so every
            # attempt must enter the overlay through the bootstrap node.
            self._send_forward(state, token, state.first_hop, hops=1)
            return

        decision = self._route_next(state.key, state.failed_hops)
        if decision.done:
            self._complete_local(state, decision)
            return
        if decision.next_hop is None:
            self._finish(state, None, error="no route")
            return
        if state.style is LookupStyle.ITERATIVE:
            state.iter_hops = 0
            self._iterative_step(state, token, decision.next_hop)
        else:
            self._send_forward(state, token, decision.next_hop.address, hops=1)

    def _complete_local(self, state: _PendingLookup, decision: _RouteDecision) -> None:
        """The initiator itself terminates the lookup."""
        err = self._verify_lookup(state.key, self._request_params(state, None, 0))
        if err is not None:
            self._finish(state, None, error=err)
            return
        entries = self._entries_for_key(state.key, state.purpose, decision.owner_is_self)

        def done(app_payload: object, _extra: int) -> None:
            self._finish(state, entries, hops=0, app_payload=app_payload)

        if (
            state.purpose is LookupPurpose.DHT
            and state.request_meta is not None
            and self.dht_lookup_hook is not None
        ):
            self.dht_lookup_hook(state.key, state.request_meta, entries, done)
        else:
            done(None, 0)

    def _request_params(
        self, state: _PendingLookup, token: Optional[tuple], hops: int
    ) -> dict:
        params = {
            "key": state.key,
            "token": token,
            "style": state.style,
            "purpose": state.purpose,
            "hops": hops,
            "meta": state.request_meta,
            "extra_bytes": state.extra_request_bytes,
            "origin": self.address if state.style is LookupStyle.TRANSITIVE else None,
        }
        self._attach_credentials(params)
        return params

    def _forward_request_size(self, params: dict) -> int:
        # params always comes from _request_params, so the keys exist.
        size = self._forward_base_bytes + params["extra_bytes"]
        if params["origin"] is not None:
            size += ADDR_BYTES
        return size

    # Slowest plausible access uplink (bytes/s); used to keep the per-hop
    # failure-detection timeout above the serialization delay of lookups
    # that piggyback bulk data (Secure-VerDi puts).
    _WORST_CASE_BANDWIDTH = 1e4

    def _forward_timeout(self, params: dict) -> float:
        extra = params["extra_bytes"]
        if extra:
            return self._rpc_timeout_s + extra / self._WORST_CASE_BANDWIDTH
        return self._rpc_timeout_s

    def _send_forward(
        self, state: _PendingLookup, token: tuple, dst: NodeAddress, hops: int
    ) -> None:
        params = self._request_params(state, token, hops)
        extra = params["extra_bytes"]
        size = self._forward_base_bytes + extra
        if params["origin"] is not None:
            size += ADDR_BYTES
        if extra:
            timeout = self._rpc_timeout_s + extra / self._WORST_CASE_BANDWIDTH
        else:
            timeout = self._rpc_timeout_s
        self.rpc.call(
            dst,
            "route_forward",
            params,
            None,  # the ack carries no information
            lambda err: self._first_hop_failed(state, dst),
            timeout,
            size,
            state.category,
            state.op_tag,
        )

    def _first_hop_failed(self, state: _PendingLookup, dst: NodeAddress) -> None:
        if state.token is None or state.token not in self._lookups:
            return
        self.successors.remove_address(dst)
        self.fingers.remove_address(dst)
        self.predecessors.remove_address(dst)
        state.failed_hops.add(dst)
        self._retry(state)

    def _retry(self, state: _PendingLookup) -> None:
        if state.attempts > self.config.lookup_retries:
            self._finish(state, None, error="retries exhausted")
            return
        self._attempt(state)

    def _lookup_attempt_timeout(self, state: _PendingLookup) -> None:
        if state.token is None or state.token not in self._lookups:
            return
        if state.attempts > self.config.lookup_retries:
            self._finish(state, None, error="timeout")
            return
        state.timer = self.sim.schedule(
            self.config.lookup_timeout_s, self._lookup_attempt_timeout, state
        )
        self._attempt(state)

    def _finish(
        self,
        state: _PendingLookup,
        entries: Optional[List[NodeInfo]],
        hops: int = 0,
        error: Optional[str] = None,
        app_payload: object = None,
    ) -> None:
        if state.token is not None:
            self._lookups.pop(state.token, None)
        if state.timer is not None:
            state.timer.cancel()
        success = error is None and entries is not None
        if not success:
            self.lookups_failed += 1
        sim = self.sim
        # Inlined LookupResult construction and the zero-delay
        # call_after handing it to the caller (one per lookup).
        latency = sim._now - state.started_at
        result = LookupResult.__new__(LookupResult)
        result.key = state.key
        result.success = success
        result.entries = list(entries) if entries else []
        result.latency_s = latency
        result.hops = hops
        result.retries = state.attempts - 1
        result.error = error
        result.app_payload = app_payload
        metrics = OBS.metrics
        if metrics is not None:
            if success:
                metrics.counter("lookup.successes").inc()
                metrics.histogram("lookup.hops", _HOP_BUCKETS).observe(hops)
                metrics.histogram("lookup.latency_s").observe(latency)
            else:
                metrics.counter("lookup.failures").inc()
        trace = OBS.trace
        if trace is not None:
            trace.complete(
                "lookup",
                state.started_at,
                latency,
                lane="lookup",
                args={
                    "hops": hops,
                    "retries": result.retries,
                    "ok": success,
                    "error": error,
                },
            )
        seq = sim._next_seq
        sim._next_seq = seq + 1
        heapq.heappush(sim._queue, (sim._now, seq, state.on_done, (result,)))
        sim._live += 1

    # -- iterative lookups -------------------------------------------------------

    def _iterative_step(
        self, state: _PendingLookup, token: tuple, hop: NodeInfo
    ) -> None:
        if token not in self._lookups:
            return
        if state.iter_hops >= self.config.max_lookup_hops:
            self._finish(state, None, error="hop limit")
            return
        state.iter_hops += 1
        self.rpc.call(
            hop.address,
            "route_step",
            {"key": state.key, "purpose": state.purpose},
            on_reply=lambda res: self._iterative_reply(state, token, hop, res),
            on_error=lambda err: self._iterative_error(state, token, hop),
            size=MIN_RPC_BYTES + ID_BYTES,
            category=state.category,
            op_tag=state.op_tag,
        )

    def _iterative_reply(
        self, state: _PendingLookup, token: tuple, hop: NodeInfo, res: dict
    ) -> None:
        if token not in self._lookups:
            return
        if res.get("done"):
            self._finish(state, res.get("entries", []), hops=state.iter_hops)
        else:
            nxt: Optional[NodeInfo] = res.get("next")
            if nxt is None or nxt.address in state.failed_hops:
                self._finish(state, None, error="no route")
                return
            self._iterative_step(state, token, nxt)

    def _iterative_error(
        self, state: _PendingLookup, token: tuple, hop: NodeInfo
    ) -> None:
        if token not in self._lookups:
            return
        state.failed_hops.add(hop.address)
        self._neighbor_dead(hop)
        self._retry(state)

    def _h_route_step(self, params: dict, ctx: RpcContext) -> None:
        key = params["key"]
        purpose = params["purpose"]
        decision = self._route_next(key, _NO_EXCLUDE)
        if decision.done:
            entries = self._entries_for_key(key, purpose, decision.owner_is_self)
            ctx.respond(
                {"done": True, "entries": entries},
                size=MIN_RPC_BYTES + len(entries) * entry_bytes(),
            )
        else:
            ctx.respond(
                {"done": False, "next": decision.next_hop},
                size=MIN_RPC_BYTES + entry_bytes(),
            )

    # -- recursive / transitive forwarding ------------------------------------------

    def _h_route_forward(self, request, msg) -> None:
        # Fast handler: (request, msg), no RpcContext (one per routed
        # message — see _register_handlers).
        self.rpc.ack_request(request, msg)  # per-hop ack (failure detector)
        params = request.params
        src = msg.src
        token = params["token"]
        style: LookupStyle = params["style"]
        hops = params["hops"]
        if hops > self.config.max_lookup_hops:
            self._send_result_back(params, src, ok=False, error="hop limit")
            return
        adm = self.admission
        if (
            adm is not None
            and params["purpose"] is LookupPurpose.DHT
            and (hops == 1 or not adm.policy.ingress_only)
        ):
            verdict = adm.admit(self.sim._now)
            if type(verdict) is str:  # shed cause
                self._send_result_back(params, src, ok=False, error=verdict)
                return
            # Admitted: processing happens when the virtual service
            # queue reaches this request (one kernel event, mirrored
            # seq-for-seq by the columnar engine).
            self.sim.schedule(
                verdict, self._process_forward, params, src, msg.category, msg.op_tag
            )
            return
        if style is LookupStyle.RECURSIVE:
            if token in self._forwards:
                return  # duplicate
            # Inlined Simulator.schedule for the forward-state GC timer
            # (one per accepted forward; cancelled when the result
            # passes back through).
            sim = self.sim
            fire_at = sim._now + self.config.pending_route_gc_s
            gc_handle = EventHandle.__new__(EventHandle)
            gc_handle.time = fire_at
            gc_handle.callback = self._gc_forward
            gc_handle.args = (token,)
            gc_handle._cancelled = False
            gc_handle._fired = False
            gc_handle._sim = sim
            seq = sim._next_seq
            sim._next_seq = seq + 1
            heapq.heappush(sim._queue, (fire_at, seq, gc_handle))
            sim._live += 1
            fwd = _ForwardState.__new__(_ForwardState)
            fwd.upstream = src
            fwd.exclude = _NO_EXCLUDE
            fwd.params = params
            fwd.gc_handle = gc_handle
            self._forwards[token] = fwd
        self._continue_forward(params, src, _NO_EXCLUDE, msg.category, msg.op_tag)

    def _process_forward(
        self,
        params: dict,
        src: NodeAddress,
        category: str,
        op_tag: Optional[int],
    ) -> None:
        """An admitted forward reached its service time: the deferred
        second half of :meth:`_h_route_forward` (REC bookkeeping +
        routing), after the admission queue delay."""
        if not self._alive:
            return
        self.admission.release()
        if params["style"] is LookupStyle.RECURSIVE:
            token = params["token"]
            if token in self._forwards:
                return  # duplicate
            sim = self.sim
            fire_at = sim._now + self.config.pending_route_gc_s
            gc_handle = EventHandle.__new__(EventHandle)
            gc_handle.time = fire_at
            gc_handle.callback = self._gc_forward
            gc_handle.args = (token,)
            gc_handle._cancelled = False
            gc_handle._fired = False
            gc_handle._sim = sim
            seq = sim._next_seq
            sim._next_seq = seq + 1
            heapq.heappush(sim._queue, (fire_at, seq, gc_handle))
            sim._live += 1
            fwd = _ForwardState.__new__(_ForwardState)
            fwd.upstream = src
            fwd.exclude = _NO_EXCLUDE
            fwd.params = params
            fwd.gc_handle = gc_handle
            self._forwards[token] = fwd
        self._continue_forward(params, src, _NO_EXCLUDE, category, op_tag)

    def _continue_forward(
        self,
        params: dict,
        upstream: NodeAddress,
        exclude: Set[NodeAddress],
        category: str,
        op_tag: Optional[int],
    ) -> None:
        key = params["key"]
        decision = self._route_next(key, exclude)
        if decision.done:
            self._terminate_route(params, upstream, decision, category, op_tag)
            return
        if decision.next_hop is None:
            self._send_result_back(params, upstream, ok=False, error="no route")
            return
        nxt = decision.next_hop
        fwd_params = dict(params)
        fwd_params["hops"] = params["hops"] + 1
        # _forward_request_size/_forward_timeout inlined (one forward
        # per routed message).
        extra = fwd_params["extra_bytes"]
        size = self._forward_base_bytes + extra
        if fwd_params["origin"] is not None:
            size += ADDR_BYTES
        if extra:
            timeout = self._rpc_timeout_s + extra / self._WORST_CASE_BANDWIDTH
        else:
            timeout = self._rpc_timeout_s
        self.rpc.call(
            nxt.address,
            "route_forward",
            fwd_params,
            None,  # the ack carries no information
            lambda err: self._forward_hop_failed(
                params, upstream, exclude, nxt, category, op_tag
            ),
            timeout,
            size,
            category,
            op_tag,
        )

    def _forward_hop_failed(
        self,
        params: dict,
        upstream: NodeAddress,
        exclude: Set[NodeAddress],
        dead: NodeInfo,
        category: str,
        op_tag: Optional[int],
    ) -> None:
        if not self._alive:
            return
        self._neighbor_dead(dead)
        exclude = set(exclude)
        exclude.add(dead.address)
        if len(exclude) > 4:
            self._send_result_back(params, upstream, ok=False, error="no route")
            return
        self._continue_forward(params, upstream, exclude, category, op_tag)

    def _terminate_route(
        self,
        params: dict,
        upstream: NodeAddress,
        decision: _RouteDecision,
        category: str,
        op_tag: Optional[int],
    ) -> None:
        key = params["key"]
        err = self._verify_lookup(key, params)
        if err is not None:
            self._send_result_back(params, upstream, ok=False, error=err)
            return
        purpose: LookupPurpose = params["purpose"]
        entries = self._entries_for_key(key, purpose, decision.owner_is_self)
        meta = params.get("meta")

        def done(app_payload: object, extra_bytes: int) -> None:
            # Secure-VerDi piggybacked operations never disclose replica
            # addresses to the initiator (it has no use for them).
            returned = [] if (meta or {}).get("suppress_entries") else entries
            self._send_result_back(
                params,
                upstream,
                ok=True,
                entries=returned,
                app_payload=app_payload,
                extra_bytes=extra_bytes,
                category=category,
                op_tag=op_tag,
            )

        if purpose is LookupPurpose.DHT and meta is not None and self.dht_lookup_hook:
            self.dht_lookup_hook(key, meta, entries, done)
        else:
            done(None, 0)

    def _send_result_back(
        self,
        params: dict,
        upstream: NodeAddress,
        ok: bool,
        entries: Optional[List[NodeInfo]] = None,
        error: Optional[str] = None,
        app_payload: object = None,
        extra_bytes: int = 0,
        category: str = "lookup",
        op_tag: Optional[int] = None,
    ) -> None:
        size = MIN_RPC_BYTES + extra_bytes
        payload: object = None
        if ok and entries is not None:
            payload = self._package_result(list(entries), params)
            size += len(entries) * entry_bytes() + self._result_extra_bytes()
        result_params = {
            "token": params["token"],
            "ok": ok,
            "payload": payload,
            "app_payload": app_payload,
            "error": error,
            "hops": params["hops"],
            "size": size,
        }
        if params["style"] is LookupStyle.TRANSITIVE:
            dst = params.get("origin")
            if dst is None:
                return
        else:
            dst = upstream
        self.rpc.send_one_way(dst, "route_result", result_params, size, category, op_tag)

    def _h_route_result(self, request, msg) -> None:
        # Fast handler: (request, msg), no RpcContext; route_result is
        # always one-way, so there is nothing to ack.
        params = request.params
        token = params["token"]
        state = self._lookups.get(token)
        if state is not None:
            self._initiator_result(state, params)
            return
        fwd = self._forwards.pop(token, None)
        if fwd is None:
            return  # stale / GC'ed
        fwd.gc_handle.cancel()
        self.rpc.send_one_way(
            fwd.upstream,
            "route_result",
            params,
            params.get("size", MIN_RPC_BYTES),
            msg.category,
            msg.op_tag,
        )

    def _initiator_result(self, state: _PendingLookup, params: dict) -> None:
        if not params.get("ok"):
            error = params.get("error")
            if error is not None and error.startswith("shed:"):
                # Admission shed: a definitive rejection (backpressure),
                # not a transient failure — fail fast, never retry.
                self._finish(state, None, error=error)
                return
            if state.attempts > self.config.lookup_retries:
                self._finish(state, None, error=params.get("error") or "failed")
            else:
                self._retry(state)
            return
        try:
            entries = self._unpackage_result(params["payload"])
        except Exception:
            self._finish(state, None, error="unreadable result")
            return
        self._finish(
            state,
            entries,
            hops=params.get("hops", 0),
            app_payload=params.get("app_payload"),
        )

    def _gc_forward(self, token: tuple) -> None:
        self._forwards.pop(token, None)
