"""Lookup vocabulary shared by Chord, Verme and the DHT layers.

The paper compares three routing styles (§7.1.2):

* **iterative** — the initiator drives every hop itself (disallowed in
  Verme, §4.5, because intermediate hops would learn addresses);
* **recursive** — the request is forwarded hop by hop and the reply
  retraces the path in reverse (the only style Verme permits);
* **transitive** — the forward path is recursive but the final node
  answers the initiator directly (rejected by Verme because the request
  would have to carry the initiator's address).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .state import NodeInfo


class LookupStyle(enum.Enum):
    """How a lookup traverses the overlay (see module docstring)."""

    ITERATIVE = "iterative"
    RECURSIVE = "recursive"
    TRANSITIVE = "transitive"


class LookupPurpose(enum.Enum):
    """Why a lookup is being issued; Verme's responsible node verifies
    the initiator's legitimacy differently per purpose (§4.5)."""

    JOIN = "join"
    FINGER = "finger"
    DHT = "dht"


@dataclass(slots=True)
class LookupResult:
    """Outcome of one lookup as seen by the initiator.

    Slotted: one instance per completed lookup, allocated on the hot
    completion path of every workload and maintenance lookup.
    """

    key: int
    success: bool
    entries: List[NodeInfo] = field(default_factory=list)
    latency_s: float = 0.0
    hops: int = 0
    retries: int = 0
    error: Optional[str] = None
    app_payload: object = None  # piggybacked DHT data (Secure-VerDi)

    @property
    def responsible(self) -> Optional[NodeInfo]:
        return self.entries[0] if self.entries else None
